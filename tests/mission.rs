//! Full-mission integration: the complete Ocelot story in one test file —
//! auto-configure from a quality requirement, compress real bytes into
//! archives, simulate the WAN crossing (with contention and faults), restore
//! on the far side, and verify acceptance; plus the simulated control plane
//! (FaaS tasks, planner, run log) around it.

use ocelot::analysis::{summarize_field, RunLog};
use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::planner::TransferPlanner;
use ocelot::predictor::{AutoConfigurator, Requirement};
use ocelot::report::ExperimentRecord;
use ocelot::session::TransferSession;
use ocelot::verify::{verify, AcceptancePolicy};
use ocelot::workload::Workload;
use ocelot_datagen::{Application, FieldSpec};
use ocelot_faas::{FaasEndpoint, FaasFabric, WaitTimeModel};
use ocelot_netsim::{
    simulate_shared_link, simulate_transfer_with_faults, BatchSpec, FaultModel, GridFtpConfig, SimTime, SiteId,
    Topology,
};
use ocelot_qpred::{QualityModel, TrainingSample, TreeConfig};
use ocelot_sz::{Dataset, LossyConfig};

fn snapshot_files(n: u64) -> Vec<(String, Dataset<f32>)> {
    let fields = Application::Miranda.fields();
    (0..n)
        .map(|seed| {
            let field = fields[(seed as usize) % fields.len()];
            let data = FieldSpec::new(Application::Miranda, field).with_scale(24).with_seed(seed).generate();
            (format!("{field}_{seed:03}.bin"), data)
        })
        .collect()
}

#[test]
fn end_to_end_mission_with_quality_guarantee() {
    // 1. Train a quality model on profiled samples and pick a configuration
    //    meeting "PSNR >= 60 dB" without trial compression of the payload.
    let mut samples = Vec::new();
    for field in ["density", "pressure", "velocity-x"] {
        let data = FieldSpec::new(Application::Miranda, field).with_scale(24).generate();
        for exp in 1..=5 {
            samples.push(
                TrainingSample::measure(&data, &LossyConfig::sz3(10f64.powi(-exp)), 25, None)
                    .expect("measurement succeeds"),
            );
        }
    }
    let model = QualityModel::train(&samples, &TreeConfig::default());
    let probe = FieldSpec::new(Application::Miranda, "diffusivity").with_scale(24).generate();
    let (config, estimate) = AutoConfigurator::new(model)
        .with_sample_stride(25)
        .select(&probe, Requirement::MinPsnr(60.0))
        .expect("a configuration qualifies");
    assert!(estimate.psnr >= 60.0);

    // 2. Compress a 12-file batch into 4 self-describing archives.
    let files = snapshot_files(12);
    let session = TransferSession::new(4, config);
    let archives = session.build_archives(&files, 4).expect("archives build");
    assert!(archives.overall_ratio() > 1.5, "ratio {}", archives.overall_ratio());

    // 3. The archives cross a flaky, contended WAN as opaque bytes (the
    //    simulation times the crossing; the bytes themselves are untouched).
    let topology = Topology::paper();
    let link = topology.route(SiteId::Anvil, SiteId::Bebop).link;
    let sizes: Vec<u64> = archives.archives().iter().map(|a| a.len() as u64).collect();
    let crossing = simulate_transfer_with_faults(&sizes, &link, &GridFtpConfig::default(), &FaultModel::flaky(0.1), 42);
    assert!(crossing.failed_files.is_empty(), "retries must deliver all archives");
    assert_eq!(crossing.report.bytes_total, archives.compressed_bytes());
    // A competing batch on the same link slows us down but changes no bytes.
    let contended = simulate_shared_link(
        &[
            BatchSpec { files: sizes.clone(), start_s: 0.0, config: GridFtpConfig::default() },
            BatchSpec { files: vec![2_000_000_000; 20], start_s: 0.0, config: GridFtpConfig::default() },
        ],
        &link,
        42,
    );
    assert!(contended[0].duration_s > 0.0);

    // 4. Destination side: restore and verify acceptance per file.
    let restored = session.restore_archives(archives.archives()).expect("restore succeeds");
    assert_eq!(restored.len(), files.len());
    let policy = AcceptancePolicy::visual();
    for ((name, orig), (rname, rec)) in files.iter().zip(&restored) {
        assert_eq!(name, rname);
        let verdict = verify(orig, rec, &policy).expect("shapes match");
        assert!(verdict.accepted, "{name}: {:?}", verdict.violations);
    }
}

#[test]
fn control_plane_mission() {
    // FaaS fabric orchestrates the remote compression job; the planner tunes
    // the transfer; every outcome lands in the run log.
    let mut fabric = FaasFabric::new();
    fabric.add_endpoint("anvil", FaasEndpoint::new("anvil", WaitTimeModel::Immediate, 7));
    fabric.add_endpoint("bebop", FaasEndpoint::new("bebop", WaitTimeModel::idle_nodes(), 7));
    let compress_fn = fabric.register("parallel_compress", true, |bytes| bytes as f64 / 50.0e9);
    let decompress_fn = fabric.register("parallel_decompress", true, |bytes| bytes as f64 / 80.0e9);

    let workload = Workload::paper_default(Application::Miranda, 16).expect("workload");
    let planner = TransferPlanner::paper();
    let base = PipelineOptions::default();
    let plan = planner.plan(&workload, SiteId::Anvil, SiteId::Bebop, &base);

    // Submit the compute legs through the fabric.
    let c = fabric.submit(compress_fn, "anvil", workload.total_bytes(), SimTime::ZERO).expect("submit");
    let d =
        fabric.submit(decompress_fn, "bebop", workload.compressed_sizes().iter().sum(), SimTime::ZERO).expect("submit");
    let done = fabric.completion_time(&[c, d]).expect("both tracked");
    assert!(done > SimTime::ZERO);

    // Log and analyze.
    let dir = std::env::temp_dir().join("ocelot_mission_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log_path = dir.join("mission.jsonl");
    std::fs::remove_file(&log_path).ok();
    let log = RunLog::open(&log_path);
    let orch = Orchestrator::paper();
    for strategy in [Strategy::Direct, Strategy::Compressed, plan.strategy] {
        let b = orch.run(&workload, SiteId::Anvil, SiteId::Bebop, strategy, &base);
        log.append(&ExperimentRecord::new("mission", &b)).expect("append");
    }
    let records = log.load_experiment("mission").expect("load");
    assert_eq!(records.len(), 3);
    let transfer = summarize_field(&records, "transfer_s").expect("field present");
    assert_eq!(transfer.count, 3);
    // Direct is the slowest transfer; the planned strategy beats it.
    assert!(transfer.max > transfer.min);
    std::fs::remove_file(&log_path).ok();
}
