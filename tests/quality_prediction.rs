//! Integration: the quality-prediction loop across crates — train on
//! measured samples from the synthetic applications, auto-select
//! configurations from user requirements, and validate predictions against
//! real compression runs.

use ocelot::predictor::{AutoConfigurator, Requirement};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_qpred::{QualityModel, TrainingSample, TrainingSet, TreeConfig};
use ocelot_sz::config::PredictorKind;
use ocelot_sz::LossyConfig;

fn build_training(app: Application, fields: &[&str], scale: usize, seeds: std::ops::Range<u64>) -> Vec<TrainingSample> {
    let mut out = Vec::new();
    for &field in fields {
        for seed in seeds.clone() {
            let data = FieldSpec::new(app, field).with_scale(scale).with_seed(seed).generate();
            for exp in 1..=6 {
                let cfg = LossyConfig::sz3(10f64.powi(-exp));
                out.push(TrainingSample::measure(&data, &cfg, 25, None).expect("measurement succeeds"));
            }
        }
    }
    out
}

#[test]
fn trained_model_generalizes_to_unseen_snapshots() {
    let samples = build_training(Application::Miranda, &["density", "pressure", "velocity-x"], 24, 0..3);
    let set: TrainingSet = samples.into_iter().collect();
    let split = set.split(0.5, 99);
    let model = QualityModel::train(&split.train, &TreeConfig::default());

    let mut ratio_log_err = 0.0;
    for s in &split.test {
        let est = model.predict(&s.features);
        ratio_log_err += (est.ratio.log10() - s.ratio.log10()).powi(2);
    }
    let rmse = (ratio_log_err / split.test.len() as f64).sqrt();
    assert!(rmse < 0.35, "held-out log-ratio RMSE {rmse}");
}

#[test]
fn auto_configuration_meets_requirements_on_real_runs() {
    let samples = build_training(Application::Cesm, &["LHFLX", "TMQ", "FLDSC"], 16, 0..2);
    let model = QualityModel::train(&samples, &TreeConfig::default());
    let auto = AutoConfigurator::new(model).with_sample_stride(25);

    let fresh = FieldSpec::new(Application::Cesm, "TMQ").with_scale(16).with_seed(9).generate();
    let (config, estimate) = auto.select(&fresh, Requirement::MinPsnr(70.0)).expect("a config qualifies");
    assert!(estimate.psnr >= 70.0);

    // Run the real pipeline with the selected config: quality must land in
    // the right regime (predictions are estimates, so allow 15 dB slack).
    let truth = TrainingSample::measure(&fresh, &config, 25, None).expect("measurement succeeds");
    assert!(truth.psnr >= 55.0, "selected config delivered only {} dB", truth.psnr);
}

#[test]
fn ratio_requirement_prefers_aggressive_bounds() {
    let samples = build_training(Application::Miranda, &["density", "diffusivity"], 24, 0..2);
    let model = QualityModel::train(&samples, &TreeConfig::default());
    let auto = AutoConfigurator::new(model).with_sample_stride(25);
    let fresh = FieldSpec::new(Application::Miranda, "density").with_scale(24).with_seed(7).generate();

    let modest = auto.select(&fresh, Requirement::MinRatio(3.0));
    assert!(modest.is_some(), "a 3x ratio must be reachable");
    let (cfg, est) = modest.expect("checked");
    assert!(est.ratio >= 3.0);
    // The selected bound should be on the looser side of the sweep.
    assert!(cfg.error_bound.raw() >= 1e-5, "selected eb {:.0e}", cfg.error_bound.raw());
}

#[test]
fn predictor_type_is_a_usable_model_feature() {
    // Train with two predictor families; the model should distinguish them.
    let data = FieldSpec::new(Application::Rtm, "snapshot-1048").with_scale(16).generate();
    let mut samples = Vec::new();
    for predictor in [PredictorKind::Lorenzo, PredictorKind::InterpCubic] {
        for exp in 1..=5 {
            let cfg = LossyConfig::sz3(10f64.powi(-exp)).with_predictor(predictor);
            samples.push(TrainingSample::measure(&data, &cfg, 25, None).expect("measurement succeeds"));
        }
    }
    // Leaf size 1 permits in-sample memorization — the point here is that
    // the predictor-id feature lets the tree separate the two families.
    let cfg = TreeConfig { min_samples_leaf: 1, ..Default::default() };
    let model = QualityModel::train(&samples, &cfg);
    for s in &samples {
        let est = model.predict(&s.features);
        assert!((est.ratio.log10() - s.ratio.log10()).abs() < 0.1, "in-sample ratio {} vs {}", est.ratio, s.ratio);
    }
}
