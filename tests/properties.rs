//! Property-based tests on the core invariants: error-bounded round trips
//! for every pipeline over arbitrary data and shapes, lossless coder round
//! trips over arbitrary byte/symbol streams, grouping reassembly, and
//! simulator sanity properties.

use ocelot::grouping::{group_blobs, plan_groups, plan_groups_by_count, ungroup_blobs};
use ocelot::temporal::{TemporalCompressor, TemporalDecompressor};
use ocelot::ParallelExecutor;
use ocelot_netsim::{simulate_transfer, GridFtpConfig, LinkProfile};
use ocelot_sz::config::{LosslessBackend, PredictorKind};
use ocelot_sz::encode::{huffman_decode, huffman_encode, lz_compress, lz_decompress, rle_decode, rle_encode};
use ocelot_sz::{
    compress, decompress, decompress_with_threads, metrics, Codec, CodecConfig, Dataset, LossyConfig, ZfpConfig,
};
use proptest::prelude::*;

/// Arbitrary small-but-nontrivial shapes of rank 1–3.
fn shapes() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        (2usize..200).prop_map(|a| vec![a]),
        ((2usize..24), (2usize..24)).prop_map(|(a, b)| vec![a, b]),
        ((2usize..10), (2usize..10), (2usize..10)).prop_map(|(a, b, c)| vec![a, b, c]),
    ]
}

/// Data generators: smooth, rough, and adversarial values.
fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop_oneof![
        // Finite arbitrary floats in a wide range.
        prop::collection::vec(-1.0e6f32..1.0e6f32, n),
        // Smooth-ish: small increments around a walk.
        prop::collection::vec(-1.0f32..1.0f32, n).prop_map(|steps| {
            let mut acc = 0.0f32;
            steps
                .into_iter()
                .map(|s| {
                    acc += s * 0.1;
                    acc
                })
                .collect()
        }),
        // Mostly constant with spikes.
        prop::collection::vec(prop_oneof![9 => Just(1.0f32), 1 => -1.0e4f32..1.0e4f32], n),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_pipeline_round_trips_within_bound(
        dims in shapes(),
        predictor_idx in 0usize..4,
        backend_idx in 0usize..3,
        eb_exp in 1i32..6,
        seed in 0u64..1000,
    ) {
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let vals: Vec<f32> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 100.0
        }).collect();
        let data = Dataset::new(dims, vals).expect("valid shape");
        let backend = [LosslessBackend::Huffman, LosslessBackend::HuffmanLz, LosslessBackend::RleHuffman][backend_idx];
        let cfg = LossyConfig::sz3(10f64.powi(-eb_exp))
            .with_predictor(PredictorKind::ALL[predictor_idx])
            .with_backend(backend);
        let blob = compress(&data, &cfg).expect("compression succeeds").blob;
        let abs_eb = blob.header().expect("header parses").abs_eb;
        let out = decompress::<f32>(&blob).expect("decompression succeeds");
        let q = metrics::compare(&data, &out).expect("shapes match");
        prop_assert!(q.within_bound(abs_eb), "max err {} vs bound {}", q.max_abs_error, abs_eb);
    }

    #[test]
    fn chunked_container_round_trips_at_any_thread_count(
        dims in shapes(),
        threads_idx in 0usize..4,
        chunk_mode in 0usize..4,
        eb_exp in 1i32..5,
        seed in 0u64..200,
    ) {
        // Random dims × chunk sizes × thread counts, including chunks larger
        // than the dataset and 1-element edge chunks.
        let threads = [1usize, 2, 4, 8][threads_idx];
        let n: usize = dims.iter().product();
        let chunk_points = match chunk_mode {
            0 => Some(1),          // 1-point chunks (maximal chunk count)
            1 => Some(n / 3 + 1),  // a few chunks, ragged edge
            2 => Some(2 * n + 7),  // larger than the dataset → one chunk
            _ => None,             // derived from the thread count
        };
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let vals: Vec<f32> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 50.0
        }).collect();
        let data = Dataset::new(dims, vals).expect("valid shape");
        let cfg = LossyConfig::sz3(10f64.powi(-eb_exp))
            .with_threads(threads)
            .with_chunk_points(chunk_points);
        let outcome = compress(&data, &cfg).expect("chunked compression succeeds");
        let abs_eb = outcome.blob.header().expect("header parses").abs_eb;
        // Decode both serially and with a different worker count than the
        // encoder used: the container must not care.
        for decode_threads in [1usize, threads.max(2)] {
            let out = decompress_with_threads::<f32>(&outcome.blob, decode_threads)
                .expect("chunked decompression succeeds");
            let q = metrics::compare(&data, &out).expect("shapes match");
            prop_assert!(q.within_bound(abs_eb), "max err {} vs bound {}", q.max_abs_error, abs_eb);
        }
    }

    #[test]
    fn pinned_chunk_layout_is_deterministic_across_threads(
        dims in shapes(),
        eb_exp in 1i32..4,
        seed in 0u64..100,
    ) {
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let vals: Vec<f32> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 8.0
        }).collect();
        let data = Dataset::new(dims, vals).expect("valid shape");
        let base = LossyConfig::sz3(10f64.powi(-eb_exp)).with_chunk_points(Some(97));
        let serial = compress(&data, &base.with_threads(1)).expect("serial");
        for threads in [2usize, 4, 8] {
            let parallel = compress(&data, &base.with_threads(threads)).expect("parallel");
            prop_assert_eq!(
                serial.blob.as_bytes(), parallel.blob.as_bytes(),
                "bytes must not depend on the worker count ({} threads)", threads
            );
        }
    }

    #[test]
    fn streamed_pipeline_is_byte_identical_to_staged(
        dims in shapes(),
        threads_idx in 0usize..4,
        chunk_mode in 0usize..3,
        window in 1usize..9,
        eb_exp in 1i32..4,
        seed in 0u64..100,
    ) {
        // Random dims × chunk sizes × window sizes × thread counts: the
        // streamed pipeline (bounded in-flight chunks, decode on arrival)
        // must produce the same v3 container bytes and the same outcome
        // statistics as the staged compress-then-decompress path.
        let threads = [1usize, 2, 4, 8][threads_idx];
        let n: usize = dims.iter().product();
        let chunk_points = match chunk_mode {
            0 => Some(1),         // 1-point chunks (maximal chunk count)
            1 => Some(n / 3 + 1), // a few chunks, ragged edge
            _ => Some(2 * n + 7), // larger than the dataset → one chunk
        };
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let vals: Vec<f32> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 50.0
        }).collect();
        let data = Dataset::new(dims, vals).expect("valid shape");
        let cfg = LossyConfig::sz3(10f64.powi(-eb_exp)).with_chunk_points(chunk_points);
        let staged = compress(&data, &cfg.with_threads(threads)).expect("staged compression succeeds");
        let exec = ParallelExecutor::new(1).with_codec_threads(threads);
        let rt = exec.stream_round_trip(&data, &cfg, window).expect("streamed pipeline succeeds");
        prop_assert_eq!(
            staged.blob.as_bytes(), rt.outcome.blob.as_bytes(),
            "streamed bytes must match staged ({} threads, window {})", threads, window
        );
        prop_assert_eq!(staged.chunks, rt.outcome.chunks);
        prop_assert_eq!(staged.chunks, rt.chunks_shipped, "every chunk crosses the stream exactly once");
        prop_assert_eq!(staged.original_bytes, rt.outcome.original_bytes);
        prop_assert_eq!(staged.sections, rt.outcome.sections);
        prop_assert_eq!(&staged.bin_stats, &rt.outcome.bin_stats);
        prop_assert!((staged.ratio - rt.outcome.ratio).abs() < 1e-12);
        let staged_restored = decompress_with_threads::<f32>(&staged.blob, threads).expect("staged decode");
        prop_assert_eq!(staged_restored.values(), rt.restored.values());
    }

    #[test]
    fn structured_values_round_trip(dims in shapes(), eb_exp in 1i32..5) {
        // Deterministic structured data exercising the smooth path.
        let data = Dataset::from_fn(dims.clone(), |idx| {
            idx.iter().enumerate().map(|(d, &i)| ((i as f32) * 0.1 * (d + 1) as f32).sin()).sum::<f32>()
        });
        let cfg = LossyConfig::sz3(10f64.powi(-eb_exp));
        let blob = compress(&data, &cfg).expect("compression succeeds").blob;
        let abs_eb = blob.header().expect("header parses").abs_eb;
        let out = decompress::<f32>(&blob).expect("decompression succeeds");
        let q = metrics::compare(&data, &out).expect("shapes match");
        prop_assert!(q.within_bound(abs_eb));
    }

    #[test]
    fn adversarial_value_distributions_round_trip(vals in values(512), eb_exp in 1i32..5) {
        let data = Dataset::new(vec![512], vals).expect("valid shape");
        let cfg = LossyConfig::sz3(10f64.powi(-eb_exp));
        let blob = compress(&data, &cfg).expect("compression succeeds").blob;
        let abs_eb = blob.header().expect("header parses").abs_eb;
        let out = decompress::<f32>(&blob).expect("decompression succeeds");
        let q = metrics::compare(&data, &out).expect("shapes match");
        prop_assert!(q.within_bound(abs_eb), "max err {} vs bound {}", q.max_abs_error, abs_eb);
    }

    #[test]
    fn huffman_round_trips(symbols in prop::collection::vec(0u32..70000, 0..4000)) {
        let enc = huffman_encode(&symbols);
        prop_assert_eq!(huffman_decode(&enc).expect("valid stream"), symbols);
    }

    #[test]
    fn lz_round_trips(data in prop::collection::vec(any::<u8>(), 0..8000)) {
        let enc = lz_compress(&data);
        prop_assert_eq!(lz_decompress(&enc).expect("valid stream"), data);
    }

    #[test]
    fn lz_decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = lz_decompress(&data); // must return, never panic
    }

    #[test]
    fn huffman_decode_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = huffman_decode(&data);
    }

    #[test]
    fn rle_round_trips(symbols in prop::collection::vec(0u32..100, 0..4000), hot in 0u32..100) {
        let enc = rle_encode(&symbols, hot);
        prop_assert_eq!(rle_decode(&enc, hot).expect("own encoding decodes"), symbols);
    }

    #[test]
    fn grouping_reassembles_any_partition(
        sizes in prop::collection::vec(0usize..300, 1..40),
        target in 1u64..2000,
    ) {
        let blobs: Vec<(String, Vec<u8>)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("f{i}"), (0..s).map(|k| (k * 31 + i) as u8).collect()))
            .collect();
        let byte_sizes: Vec<u64> = blobs.iter().map(|(_, b)| b.len() as u64).collect();
        for plan in [plan_groups(&byte_sizes, target), plan_groups_by_count(blobs.len(), 3)] {
            let (groups, manifest) = group_blobs(&blobs, &plan);
            prop_assert_eq!(manifest.file_count(), blobs.len());
            let mut reassembled = Vec::new();
            for g in &groups {
                reassembled.extend(ungroup_blobs(g).expect("group parses"));
            }
            let original: Vec<Vec<u8>> = plan.iter().flatten().map(|&i| blobs[i].1.clone()).collect();
            prop_assert_eq!(reassembled, original);
        }
    }

    #[test]
    fn group_plans_partition_the_input(
        sizes in prop::collection::vec(0u64..500_000, 0..80),
        target in 1u64..1_000_000,
        group_count in 1usize..20,
    ) {
        // Both planners must produce an exact partition of 0..n: every file
        // index in exactly one group, no invented indices, no empty groups.
        for plan in [plan_groups(&sizes, target), plan_groups_by_count(sizes.len(), group_count)] {
            let mut seen = vec![0usize; sizes.len()];
            for group in &plan {
                prop_assert!(!group.is_empty(), "planner emitted an empty group");
                for &i in group {
                    prop_assert!(i < sizes.len(), "index {} out of range {}", i, sizes.len());
                    seen[i] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1), "not a partition: {:?}", seen);
            // ... so grouped bytes conserve the input bytes exactly.
            let grouped: u64 = plan.iter().flatten().map(|&i| sizes[i]).sum();
            prop_assert_eq!(grouped, sizes.iter().sum::<u64>());
        }
        prop_assert!(plan_groups_by_count(sizes.len(), group_count).len() <= group_count.max(1));
    }

    #[test]
    fn transfer_simulation_is_sane(
        sizes in prop::collection::vec(1u64..200_000_000, 1..60),
        concurrency in 1usize..40,
        seed in 0u64..50,
    ) {
        let link = LinkProfile::new(1.0e9, 0.05, 0.1, 0.03);
        let cfg = GridFtpConfig { concurrency, ..GridFtpConfig::default() };
        let report = simulate_transfer(&sizes, &link, &cfg, seed);
        let total: u64 = sizes.iter().sum();
        prop_assert_eq!(report.bytes_total, total);
        prop_assert!(report.duration_s > 0.0);
        // Cannot beat the raw bandwidth by more than the jitter margin.
        prop_assert!(report.effective_speed_bps <= 1.0e9 * 1.05, "speed {}", report.effective_speed_bps);
        // Cannot finish faster than the per-file cap permits for the biggest file.
        let biggest = *sizes.iter().max().expect("nonempty") as f64;
        prop_assert!(report.duration_s * cfg.per_file_cap_bps() * 1.05 >= biggest);
    }

    #[test]
    fn zfp_round_trips_within_bound(
        dims in shapes(),
        eb_exp in 1i32..5,
        seed in 0u64..100,
        threads_idx in 0usize..3,
    ) {
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let vals: Vec<f32> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 10.0
        }).collect();
        let data = Dataset::new(dims, vals).expect("valid shape");
        let abs_eb = 10f64.powi(-eb_exp) * data.value_range().max(1e-6);
        let config = CodecConfig::Zfp(ZfpConfig::abs(abs_eb).with_threads([1usize, 2, 4][threads_idx]));
        let codec = config.codec();
        let blob = codec.compress(&data, &config).expect("zfp compression succeeds").blob;
        let out = codec.decompress::<f32>(&blob).expect("zfp decompression succeeds");
        let q = metrics::compare(&data, &out).expect("shapes match");
        prop_assert!(q.within_bound(abs_eb), "max err {} vs bound {abs_eb}", q.max_abs_error);
    }

    #[test]
    fn f64_pipelines_round_trip(len in 8usize..400, eb_exp in 1i32..6, seed in 0u64..100) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let vals: Vec<f64> = (0..len).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e4
        }).collect();
        let data = Dataset::new(vec![len], vals).expect("valid shape");
        let cfg = LossyConfig::sz3(10f64.powi(-eb_exp));
        let blob = compress(&data, &cfg).expect("compression succeeds").blob;
        let abs_eb = blob.header().expect("header parses").abs_eb;
        let out = decompress::<f64>(&blob).expect("decompression succeeds");
        let q = metrics::compare(&data, &out).expect("shapes match");
        prop_assert!(q.within_bound(abs_eb));
    }

    #[test]
    fn temporal_streams_round_trip(
        frames in 2usize..6,
        eb_exp in 2i32..4,
        seed in 0u64..50,
    ) {
        // A drifting smooth field: each frame shifts by a small offset.
        let base = Dataset::from_fn(vec![24, 24], |i| ((i[0] + i[1]) as f32 * 0.2).sin() * 5.0);
        let series: Vec<Dataset<f32>> = (0..frames)
            .map(|t| {
                let drift = (seed as f32 * 0.01 + t as f32 * 0.3).sin();
                Dataset::new(
                    base.dims().to_vec(),
                    base.values().iter().map(|&v| v + drift).collect(),
                )
                .expect("same shape")
            })
            .collect();
        let eb = 10f64.powi(-eb_exp);
        let mut comp = TemporalCompressor::new(LossyConfig::sz3(eb));
        let mut decomp = TemporalDecompressor::new();
        for frame in &series {
            let bytes = comp.compress_next(frame).expect("frame compresses");
            let out = decomp.decompress_next(&bytes).expect("frame decompresses");
            let abs_eb = eb * frame.value_range().max(1e-9);
            let margin = frame.value_range().abs().max(1.0) * f32::EPSILON as f64 * 4.0;
            let q = metrics::compare(frame, &out).expect("shapes match");
            prop_assert!(q.within_bound(abs_eb + margin), "max {} vs {abs_eb}", q.max_abs_error);
        }
    }

    #[test]
    fn blob_corruption_never_decompresses_silently(
        byte_idx_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // Any single-bit flip anywhere in a blob must be rejected (checksum)
        // or produce an error — never a silently wrong dataset.
        let data = Dataset::from_fn(vec![32, 32], |i| (i[0] * 32 + i[1]) as f32 * 0.01);
        let blob = compress(&data, &LossyConfig::sz3(1e-3)).expect("compression succeeds").blob;
        let mut bytes = blob.into_bytes();
        let idx = ((bytes.len() - 1) as f64 * byte_idx_frac) as usize;
        bytes[idx] ^= 1 << bit;
        let outcome = ocelot_sz::CompressedBlob::from_bytes(bytes);
        prop_assert!(outcome.is_err(), "checksum must catch a flip at byte {idx} bit {bit}");
    }

    #[test]
    fn more_bandwidth_never_slows_a_transfer(
        sizes in prop::collection::vec(1_000_000u64..100_000_000, 1..30),
        seed in 0u64..20,
    ) {
        let cfg = GridFtpConfig::default();
        let slow = simulate_transfer(&sizes, &LinkProfile::new(0.5e9, 0.05, 0.1, 0.0), &cfg, seed);
        let fast = simulate_transfer(&sizes, &LinkProfile::new(2.0e9, 0.05, 0.1, 0.0), &cfg, seed);
        prop_assert!(fast.duration_s <= slow.duration_s * 1.0001);
    }
}
