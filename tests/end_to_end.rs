//! Integration: the full Ocelot byte path, with real data end to end —
//! generate → parallel compress → group → (byte-identical "transfer") →
//! ungroup → parallel decompress → verify error bounds and filenames.

use ocelot::executor::ParallelExecutor;
use ocelot::grouping::{group_blobs, plan_groups_by_count, ungroup_blobs};
use ocelot::loader::NcliteFile;
use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::workload::Workload;
use ocelot_datagen::{Application, FieldSpec};
use ocelot_netsim::SiteId;
use ocelot_sz::{metrics, CompressedBlob, Dataset, LossyConfig};

fn make_files(n: u64, scale: usize) -> Vec<(String, Dataset<f32>)> {
    let fields = Application::Miranda.fields();
    (0..n)
        .map(|seed| {
            let field = fields[(seed as usize) % fields.len()];
            let data = FieldSpec::new(Application::Miranda, field).with_scale(scale).with_seed(seed).generate();
            (format!("{field}_{seed:03}.bin"), data)
        })
        .collect()
}

#[test]
fn full_byte_path_respects_error_bounds_and_names() {
    let files = make_files(12, 24);
    let config = LossyConfig::sz3(1e-3);
    let executor = ParallelExecutor::new(4);

    // Source side: parallel compression, then grouping into 3 archives.
    let datasets: Vec<Dataset<f32>> = files.iter().map(|(_, d)| d.clone()).collect();
    let blobs = executor.compress_all(&datasets, &config).expect("compression succeeds");
    let named: Vec<(String, Vec<u8>)> =
        files.iter().zip(&blobs).map(|((name, _), b)| (name.clone(), b.as_bytes().to_vec())).collect();
    let plan = plan_groups_by_count(named.len(), 3);
    let (groups, manifest) = group_blobs(&named, &plan);
    assert_eq!(groups.len(), 3);
    assert_eq!(manifest.file_count(), 12);

    // "Transfer": group files cross the WAN as opaque bytes.
    let received: Vec<Vec<u8>> = groups.clone();

    // Destination side: ungroup, decompress in parallel, restore names.
    let mut restored_named = Vec::new();
    for (g, group_bytes) in received.iter().enumerate() {
        let members = ungroup_blobs(group_bytes).expect("group parses");
        assert_eq!(members.len(), manifest.groups[g].len());
        for (name, bytes) in manifest.groups[g].iter().zip(members) {
            restored_named.push((name.clone(), CompressedBlob::from_bytes(bytes).expect("blob parses")));
        }
    }
    let restored_blobs: Vec<CompressedBlob> = restored_named.iter().map(|(_, b)| b.clone()).collect();
    let restored = executor.decompress_all(&restored_blobs).expect("decompression succeeds");

    // Names survive in order and every file honours its bound.
    for ((orig_name, orig_data), ((restored_name, _), restored_data)) in
        files.iter().zip(restored_named.iter().zip(&restored))
    {
        assert_eq!(orig_name, restored_name);
        let abs_eb = 1e-3 * orig_data.value_range();
        let q = metrics::compare(orig_data, restored_data).expect("shapes match");
        assert!(q.within_bound(abs_eb), "{orig_name}: max err {} vs bound {abs_eb}", q.max_abs_error);
        assert!(q.psnr > 40.0, "{orig_name}: psnr {}", q.psnr);
    }
}

#[test]
fn executor_output_is_byte_identical_across_thread_counts() {
    // Work-stealing must never leak into the bytes: a 1-, 2-, and 8-thread
    // executor produce the same blobs in the same order, so archives built
    // on differently-sized clusters are interchangeable.
    let files = make_files(13, 20);
    let datasets: Vec<Dataset<f32>> = files.iter().map(|(_, d)| d.clone()).collect();
    let config = LossyConfig::sz3(1e-3);
    let reference: Vec<Vec<u8>> = ParallelExecutor::new(1)
        .compress_all(&datasets, &config)
        .expect("serial compression succeeds")
        .iter()
        .map(|b| b.as_bytes().to_vec())
        .collect();
    for threads in [2usize, 8] {
        let parallel: Vec<Vec<u8>> = ParallelExecutor::new(threads)
            .compress_all(&datasets, &config)
            .expect("parallel compression succeeds")
            .iter()
            .map(|b| b.as_bytes().to_vec())
            .collect();
        assert_eq!(parallel, reference, "{threads}-thread output diverged from serial");
    }
    // Decompression is equally order- and thread-stable.
    let blobs = ParallelExecutor::new(8).compress_all(&datasets, &config).unwrap();
    let a = ParallelExecutor::new(1).decompress_all(&blobs).unwrap();
    let b = ParallelExecutor::new(8).decompress_all(&blobs).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.values(), y.values());
    }
}

#[test]
fn nclite_containers_ride_the_same_path() {
    // Variables from a container compress individually and reassemble.
    let mut container = NcliteFile::new();
    for field in ["density", "pressure"] {
        container.insert(field, FieldSpec::new(Application::Miranda, field).with_scale(32).generate());
    }
    let config = LossyConfig::sz3(1e-3);
    let executor = ParallelExecutor::new(2);
    let names: Vec<String> = container.names().map(String::from).collect();
    let datasets: Vec<Dataset<f32>> = names.iter().map(|n| container.get(n).expect("present").clone()).collect();
    let blobs = executor.compress_all(&datasets, &config).expect("compression succeeds");
    let restored = executor.decompress_all(&blobs).expect("decompression succeeds");

    let mut out = NcliteFile::new();
    for (name, data) in names.iter().zip(restored) {
        out.insert(name.clone(), data);
    }
    let bytes = out.to_bytes();
    let reloaded = NcliteFile::from_bytes(&bytes).expect("container parses");
    for name in &names {
        let q = metrics::compare(container.get(name).expect("present"), reloaded.get(name).expect("present"))
            .expect("shapes match");
        assert!(q.psnr > 40.0, "{name}: psnr {}", q.psnr);
    }
}

#[test]
fn simulated_pipeline_agrees_with_workload_accounting() {
    let w = Workload::miranda(LossyConfig::sz3(1e-3), 24).expect("workload");
    let orch = Orchestrator::paper();
    let opts = PipelineOptions::default();
    let np = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Direct, &opts);
    let cp = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &opts);

    // Transferred bytes must match the workload's own accounting exactly.
    assert_eq!(np.bytes_transferred, w.total_bytes());
    assert_eq!(cp.bytes_transferred, w.compressed_sizes().iter().sum::<u64>());
    assert_eq!(np.files_transferred, w.file_count());
    assert_eq!(cp.files_transferred, w.file_count());
    // And compression must pay off on this slow route.
    assert!(cp.total_s() < np.total_s());
}

#[test]
fn grouped_pipeline_reduces_file_count_on_the_wire() {
    let w = Workload::miranda(LossyConfig::sz3(1e-3), 24).expect("workload");
    let orch = Orchestrator::paper();
    let opts = PipelineOptions::default();
    let op = orch.run(&w, SiteId::Bebop, SiteId::Cori, Strategy::grouped_by_count(8), &opts);
    assert_eq!(op.files_transferred, 8);
    let cp = orch.run(&w, SiteId::Bebop, SiteId::Cori, Strategy::Compressed, &opts);
    assert_eq!(op.bytes_transferred, cp.bytes_transferred, "grouping moves the same bytes in fewer files");
}
