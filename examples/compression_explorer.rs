//! Compression explorer: sweep every predictor pipeline and the transform
//! baseline across the paper's applications, printing the
//! ratio/PSNR/unpredictable-fraction landscape — the table the Ocelot UI
//! shows users when they pick a configuration (capability 1 of §V).
//!
//! ```text
//! cargo run --release --example compression_explorer [rel_error_bound]
//! ```

use ocelot_datagen::{Application, FieldSpec};
use ocelot_sz::config::PredictorKind;
use ocelot_sz::{compress, decompress, metrics, Codec, CodecConfig, LossyConfig, ZfpCodec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eb: f64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(1e-3);
    println!("relative error bound: {eb:.0e}\n");
    println!("{:<22} {:<14} {:>9} {:>10} {:>9}", "dataset", "pipeline", "ratio", "PSNR (dB)", "unpred");
    println!("{}", "-".repeat(70));

    let cases = [
        (Application::Cesm, "LHFLX", 12),
        (Application::Miranda, "velocity-x", 12),
        (Application::Nyx, "baryon_density", 16),
        (Application::Isabel, "Pf48", 8),
        (Application::Qmcpack, "einspine", 24),
    ];
    for (app, field, scale) in cases {
        let data = FieldSpec::new(app, field).with_scale(scale).generate();
        let label = format!("{}/{}", app.name(), field);
        for predictor in PredictorKind::ALL {
            let cfg = LossyConfig::sz3(eb).with_predictor(predictor);
            let out = compress(&data, &cfg)?;
            let restored = decompress::<f32>(&out.blob)?;
            let q = metrics::compare(&data, &restored)?;
            println!(
                "{:<22} {:<14} {:>8.1}x {:>10.1} {:>8.2}%",
                label,
                predictor.name(),
                out.ratio,
                q.psnr,
                out.bin_stats.unpredictable * 100.0
            );
        }
        // Transform-based baseline (ZFP-style) at the same absolute bound.
        let abs_eb = eb * data.value_range();
        let blob = ZfpCodec.compress(&data, &CodecConfig::zfp_abs(abs_eb))?.blob;
        let restored = decompress::<f32>(&blob)?;
        let q = metrics::compare(&data, &restored)?;
        println!(
            "{:<22} {:<14} {:>8.1}x {:>10.1} {:>8}",
            label,
            "zfp-transform",
            data.nbytes() as f64 / blob.len() as f64,
            q.psnr,
            "-"
        );
        println!();
    }
    println!("(prediction-based pipelines are SZ3-style; zfp-transform is the block-transform baseline)");
    Ok(())
}
