//! Climate-campaign transfer: move a CESM snapshot archive from Purdue
//! Anvil to NERSC Cori with Ocelot's full pipeline — direct vs compressed
//! vs compressed-and-grouped — on the simulated paper testbed.
//!
//! ```text
//! cargo run --release --example climate_campaign
//! ```

use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::workload::Workload;
use ocelot_netsim::SiteId;
use ocelot_sz::LossyConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("profiling CESM fields (real compression on scaled synthetic data)...");
    let workload = Workload::cesm(LossyConfig::sz3(1e-4), 8)?;
    println!(
        "workload: {} files, {:.2} TB raw, overall ratio {:.1}x, min PSNR {:.1} dB\n",
        workload.file_count(),
        workload.total_bytes() as f64 / 1e12,
        workload.overall_ratio(),
        workload.min_psnr(),
    );

    let orch = Orchestrator::paper();
    let opts = PipelineOptions::default();
    let (from, to) = (SiteId::Anvil, SiteId::Cori);

    let np = orch.run(&workload, from, to, Strategy::Direct, &opts);
    println!("direct (NP):       transfer {:>7.1} s at {:.2} GB/s", np.transfer_s, np.effective_speed_bps() / 1e9);

    let cp = orch.run(&workload, from, to, Strategy::Compressed, &opts);
    println!(
        "compressed (CP):   compress {:.1} s + transfer {:.1} s + decompress {:.1} s = {:.1} s",
        cp.compression_s,
        cp.transfer_s,
        cp.decompression_s,
        cp.total_s()
    );

    let op = orch.run(&workload, from, to, Strategy::grouped_by_count(2048), &opts);
    println!(
        "grouped (OP):      compress {:.1} s + group {:.1} s + transfer {:.1} s + decompress {:.1} s = {:.1} s",
        op.compression_s,
        op.grouping_s,
        op.transfer_s,
        op.decompression_s,
        op.total_s()
    );

    println!(
        "\nend-to-end reduction vs direct: {:.0}% (paper Table VIII: 60%)",
        op.reduction_vs(np.transfer_s) * 100.0
    );
    println!("WAN bytes: {:.2} TB -> {:.0} GB", np.bytes_transferred as f64 / 1e12, op.bytes_transferred as f64 / 1e9);
    Ok(())
}
