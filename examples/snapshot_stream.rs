//! Temporal delta compression of a snapshot stream (extension): compress a
//! correlated simulation time series frame by frame, comparing spatial
//! (per-frame) against temporal (key + delta) modes at the same error bound.
//!
//! ```text
//! cargo run --release --example snapshot_stream [frames] [rho]
//! ```

use ocelot::temporal::{TemporalCompressor, TemporalDecompressor};
use ocelot_datagen::series::{frame_correlation, snapshot_series};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_sz::{compress, metrics, LossyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames_n: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(12);
    let rho: f32 = std::env::args().nth(2).map(|s| s.parse()).transpose()?.unwrap_or(0.92);

    let spec = FieldSpec::new(Application::Miranda, "pressure").with_scale(8);
    let frames = snapshot_series(&spec, frames_n, rho, 2026);
    println!(
        "stream: {} frames of {:?}, frame-to-frame correlation {:.3}",
        frames.len(),
        frames[0].dims(),
        frame_correlation(&frames)
    );

    let abs_eb = 1e-3 * frames[0].value_range();
    let cfg = LossyConfig::sz3_abs(abs_eb);

    // Spatial baseline: every frame compressed independently.
    let spatial_bytes: usize = frames.iter().map(|f| compress(f, &cfg).map(|b| b.blob.len()).unwrap_or(0)).sum();

    // Temporal: key frame + deltas, verified end to end.
    let mut comp = TemporalCompressor::new(cfg);
    let mut decomp = TemporalDecompressor::new();
    let mut temporal_bytes = 0usize;
    let mut worst_err = 0.0f64;
    for (t, frame) in frames.iter().enumerate() {
        let bytes = comp.compress_next(frame)?;
        temporal_bytes += bytes.len();
        let restored = decomp.decompress_next(&bytes)?;
        let q = metrics::compare(frame, &restored)?;
        worst_err = worst_err.max(q.max_abs_error);
        println!(
            "  frame {t:>2}: {} -> {:>8} bytes, PSNR {:.1} dB",
            if t == 0 { "key  " } else { "delta" },
            bytes.len(),
            q.psnr
        );
    }

    let raw: usize = frames.iter().map(|f| f.nbytes()).sum();
    println!("\nraw {:.1} MB", raw as f64 / 1e6);
    println!("spatial  (per-frame): {:.2} MB ({:.1}x)", spatial_bytes as f64 / 1e6, raw as f64 / spatial_bytes as f64);
    println!(
        "temporal (key+delta): {:.2} MB ({:.1}x)",
        temporal_bytes as f64 / 1e6,
        raw as f64 / temporal_bytes as f64
    );
    println!("worst pointwise error {worst_err:.3e} (bound {abs_eb:.3e})");
    // The delta add contributes at most one f32 ULP on top of the bound.
    let ulp_margin = frames[0].value_range() * f32::EPSILON as f64 * 4.0;
    assert!(worst_err <= abs_eb + ulp_margin);
    Ok(())
}
