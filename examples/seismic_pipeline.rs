//! Seismic (RTM) pipeline with automatic quality configuration and the
//! sentinel: the user states "PSNR ≥ 80 dB", Ocelot's decision-tree model
//! picks the compressor setting without trial compression, and the transfer
//! survives a busy batch queue thanks to the sentinel.
//!
//! ```text
//! cargo run --release --example seismic_pipeline
//! ```

use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::predictor::{AutoConfigurator, Requirement};
use ocelot::sentinel::sentinel_total_s;
use ocelot::workload::Workload;
use ocelot_datagen::{Application, FieldSpec};
use ocelot_faas::WaitTimeModel;
use ocelot_netsim::SiteId;
use ocelot_qpred::{QualityModel, TrainingSample, TreeConfig};
use ocelot_sz::LossyConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the quality model on profiled RTM snapshots (step ① of the
    //    paper's Fig 1 — normally shipped pre-trained with the service).
    println!("training quality model on RTM snapshots...");
    let mut samples = Vec::new();
    for seed in 0..4u64 {
        let data = FieldSpec::new(Application::Rtm, "snapshot-1048").with_scale(12).with_seed(seed).generate();
        for exp in 1..=6 {
            let cfg = LossyConfig::sz3(10f64.powi(-exp));
            samples.push(TrainingSample::measure(&data, &cfg, 25, None)?);
        }
    }
    let model = QualityModel::train(&samples, &TreeConfig::default());

    // 2. The user requirement: distortion must stay above 80 dB PSNR.
    let fresh = FieldSpec::new(Application::Rtm, "snapshot-2200").with_scale(12).generate();
    let auto = AutoConfigurator::new(model).with_sample_stride(25);
    let (config, estimate) =
        auto.select(&fresh, Requirement::MinPsnr(80.0)).expect("some configuration satisfies 80 dB on RTM data");
    println!(
        "selected: {} at eb {:.0e} -> predicted ratio {:.1}x, PSNR {:.1} dB",
        config.predictor,
        config.error_bound.raw(),
        estimate.ratio,
        estimate.psnr,
    );

    // 3. Verify the prediction against a real compression pass.
    let truth = TrainingSample::measure(&fresh, &config, 25, None)?;
    println!("measured: ratio {:.1}x, PSNR {:.1} dB (prediction vs reality)", truth.ratio, truth.psnr);

    // 4. Ship 3601 snapshots Bebop -> Cori through a busy batch queue; the
    //    sentinel keeps data flowing while compression nodes wait.
    let workload = Workload::rtm(config, 12)?;
    let orch = Orchestrator::paper();
    let busy = PipelineOptions {
        wait_model: WaitTimeModel::Fixed(900.0), // 15 min in the queue
        sentinel: true,
        ..Default::default()
    };
    let with_sentinel = orch.run(&workload, SiteId::Bebop, SiteId::Cori, Strategy::Compressed, &busy);
    let blocking = PipelineOptions { sentinel: false, ..busy };
    let without = orch.run(&workload, SiteId::Bebop, SiteId::Cori, Strategy::Compressed, &blocking);
    let direct = orch.run(&workload, SiteId::Bebop, SiteId::Cori, Strategy::Direct, &PipelineOptions::default());
    println!("\ntransfer under a 900 s node wait (Bebop -> Cori, 682 GB):");
    println!("  direct, no compression:   {:>7.1} s", direct.total_s());
    println!("  blocking compression:     {:>7.1} s (wait wasted)", without.total_s());
    println!(
        "  sentinel + compression:   {:>7.1} s (wait overlapped with raw transfer)",
        sentinel_total_s(&with_sentinel)
    );
    Ok(())
}
