//! Quickstart: compress a scientific dataset with an error bound, verify
//! the guarantee, and see what the transfer saves.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ocelot::executor::ParallelExecutor;
use ocelot_datagen::{Application, FieldSpec};
use ocelot_sz::{decompress, metrics, LossyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Miranda-like 3-D turbulence field (synthetic stand-in for the
    //    paper's hydrodynamics data).
    let data = FieldSpec::new(Application::Miranda, "density").with_scale(8).generate();
    println!("dataset: miranda/density, dims {:?}, {:.1} MB raw", data.dims(), data.nbytes() as f64 / 1e6);

    // 2. Compress with SZ3 defaults at a 1e-3 value-range-relative bound.
    let config = LossyConfig::sz3(1e-3);
    let executor = ParallelExecutor::new(4);
    let outcomes = executor.compress_all_with_stats(std::slice::from_ref(&data), &config)?;
    let outcome = &outcomes[0];
    println!(
        "compressed: {:.1} MB -> {:.2} MB (ratio {:.1}x), p0 = {:.2}",
        outcome.original_bytes as f64 / 1e6,
        outcome.blob.len() as f64 / 1e6,
        outcome.ratio,
        outcome.bin_stats.p0,
    );

    // 3. Decompress and verify the pointwise error bound.
    let restored = decompress::<f32>(&outcome.blob)?;
    let report = metrics::compare(&data, &restored)?;
    let abs_eb = outcome.blob.header()?.abs_eb;
    println!(
        "quality: PSNR {:.1} dB, max error {:.2e} (bound {:.2e}) -> {}",
        report.psnr,
        report.max_abs_error,
        abs_eb,
        if report.within_bound(abs_eb) { "bound holds" } else { "BOUND VIOLATED" },
    );
    assert!(report.within_bound(abs_eb));

    // 4. What that means for a WAN transfer at 1 GB/s.
    let wan_gbps = 1.0e9;
    println!(
        "transfer at 1 GB/s: raw {:.2} s -> compressed {:.3} s",
        outcome.original_bytes as f64 / wan_gbps,
        outcome.blob.len() as f64 / wan_gbps,
    );
    Ok(())
}
