//! The JSON-shaped value tree both serde traits target.
//!
//! Numbers are split into unsigned/signed/float variants so 64-bit byte
//! counts round-trip exactly. Objects preserve insertion order (a `Vec` of
//! pairs), so a derive → emit → parse → derive round trip reproduces the
//! original tree bit-for-bit, which the repository's serialization tests
//! rely on.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (canonical form for every integer ≥ 0).
    UInt(u64),
    /// Negative integer (canonical form for integers < 0).
    Int(i64),
    /// Finite floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Default for Value {
    /// `null`, matching serde_json's `Value::default()`.
    fn default() -> Self {
        Value::Null
    }
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, accepting any numerically exact representation.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= 9.007_199_254_740_992e15 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `i64`, accepting any numerically exact representation.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Int(n) => Some(n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= 9.007_199_254_740_992e15 => Some(f as i64),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering (same text [`crate::Serialize`] emitters use).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_json(self, None, 0))
    }
}

/// Renders a value as JSON. `indent = Some(width)` pretty-prints.
pub fn to_json(value: &Value, indent: Option<usize>, depth: usize) -> String {
    let mut out = String::new();
    write_json(value, indent, depth, &mut out);
    out
}

fn write_json(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => out.push_str(&format_float(*x)),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(items.iter(), items.len(), indent, depth, out, ('[', ']'), |v, d, o| {
            write_json(v, indent, d, o);
        }),
        Value::Object(entries) => {
            write_seq(entries.iter(), entries.len(), indent, depth, out, ('{', '}'), |(k, v), d, o| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_json(v, indent, d, o);
            })
        }
    }
}

fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    brackets: (char, char),
    mut write_item: impl FnMut(I::Item, usize, &mut String),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(brackets.1);
}

/// Formats a finite float so that re-parsing classifies it as a float again
/// (guarantees a `.` or exponent marker in the text).
fn format_float(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse_json(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), position: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; compensate the
                            // unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| self.err("invalid utf-8"))?);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) });
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            // Integer overflow: fall back to float.
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-17", "3.5", "-0.25", "1e3"] {
            let v = parse_json(text).unwrap();
            let back = parse_json(&to_json(&v, None, 0)).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn integers_keep_64_bit_precision() {
        let v = parse_json("18446744073709551615").unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
        assert_eq!(to_json(&v, None, 0), "18446744073709551615");
    }

    #[test]
    fn whole_floats_stay_floats() {
        let v = Value::Float(1.0);
        let text = to_json(&v, None, 0);
        assert_eq!(text, "1.0");
        assert_eq!(parse_json(&text).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::String("a\"b\\c\nd\tε".to_string());
        let text = to_json(&v, None, 0);
        assert_eq!(parse_json(&text).unwrap(), v);
        assert_eq!(parse_json(r#""Aé😀""#).unwrap(), Value::String("Aé😀".to_string()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x", "d": {"e": [true, false]}}"#;
        let v = parse_json(text).unwrap();
        let compact = to_json(&v, None, 0);
        assert_eq!(parse_json(&compact).unwrap(), v);
        let pretty = to_json(&v, Some(2), 0);
        assert_eq!(parse_json(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse_json(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(to_json(&v, None, 0), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "tru", "\"abc", "1.2.3", "{1: 2}", "[1] x"] {
            assert!(parse_json(text).is_err(), "{text:?} should fail");
        }
    }
}
