//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! supplies the serialization machinery Ocelot uses: `#[derive(Serialize,
//! Deserialize)]` plus the `serde_json` functions. Instead of upstream's
//! visitor architecture, both traits go through a JSON-shaped [`Value`]
//! tree — dramatically simpler, and fully adequate for the repository's
//! usage (derived plain-data structs/enums round-tripped through JSON).
//!
//! Representation conventions match serde_json where it matters:
//! * structs serialize to objects with fields in declaration order;
//! * unit enum variants serialize to their name as a string;
//! * data-carrying variants serialize externally tagged:
//!   `{"Variant": <payload>}`;
//! * newtype structs are transparent;
//! * `Option::None` is `null`, and a missing object key deserializes to
//!   `None` (likewise `#[serde(default)]` falls back to `Default`).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Error for a type mismatch: `expected` description vs the value found.
    pub fn expected(expected: &str, found: &Value) -> Self {
        DeError(format!("expected {expected}, found {}", found.kind()))
    }

    /// Error for an object missing a required field.
    pub fn missing_field(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    /// Returns a [`DeError`] describing any shape or type mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called by derived struct impls when an object key is absent.
    /// Defaults to an error; `Option` overrides it to yield `None`.
    ///
    /// # Errors
    /// Returns a missing-field [`DeError`] unless overridden.
    fn from_missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_u64().ok_or_else(|| DeError::expected("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_i64().ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // serde_json rejects non-finite floats; emitting null keeps
            // serialization total (deserializing null back yields NaN).
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(f64::NAN),
            _ => value.as_f64().ok_or_else(|| DeError::expected("number", value)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::expected("boolean", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value.as_str().ok_or_else(|| DeError::expected("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", value)),
        }
    }
}

// ---------------------------------------------------------------------------
// Generic impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array().ok_or_else(|| DeError::expected("array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", value)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::expected("3-element array", value)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value(), self.3.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b, c, d]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?, D::from_value(d)?)),
            _ => Err(DeError::expected("4-element array", value)),
        }
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        // HashMap iteration order is unspecified; sort for stable output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for std::collections::HashMap<String, V, S> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_object().ok_or_else(|| DeError::expected("object", value))?;
        entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_object().ok_or_else(|| DeError::expected("object", value))?;
        entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_normalize_to_uint_when_non_negative() {
        assert_eq!(5i64.to_value(), Value::UInt(5));
        assert_eq!((-5i64).to_value(), Value::Int(-5));
        assert_eq!(7u32.to_value(), Value::UInt(7));
        assert_eq!(i64::from_value(&Value::UInt(9)).unwrap(), 9);
        assert_eq!(u64::from_value(&Value::Int(-1)).ok(), None);
    }

    #[test]
    fn options_handle_null_and_missing() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<f64>::from_value(&Value::Float(1.5)).unwrap(), Some(1.5));
        assert_eq!(Option::<f64>::from_missing_field("x").unwrap(), None);
        assert!(f64::from_missing_field("x").is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let t = ("a".to_string(), 2u32);
        assert_eq!(<(String, u32)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
