//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the crossbeam-shaped APIs Ocelot uses — [`thread::scope`] with
//! spawn closures that receive the scope, and [`channel`] bounded/unbounded
//! MPMC channels — implemented over `std::thread::scope` and
//! `std::sync::mpsc` (with a mutex-wrapped receiver for multi-consumer use).

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`.

    /// A scope handle; spawn closures receive a reference so workers can
    /// spawn further workers.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Errors
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// itself, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || {
                let reborrowed = Scope { inner };
                f(&reborrowed)
            }))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all threads are joined before returning.
    ///
    /// Unlike crossbeam (which catches child panics and returns them as
    /// `Err`), a panicking child re-panics at scope exit, so the `Ok` arm is
    /// the only one observable — fine for callers that `.expect()` the
    /// result, which is how Ocelot uses it.
    ///
    /// # Errors
    /// Never returns `Err` (see above).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! MPMC channels over `std::sync::mpsc`.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half; cloneable.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half; cloneable (consumers share one underlying receiver).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Error returned when all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned when all receivers disconnected.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full.
        ///
        /// # Errors
        /// Returns the value if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while the channel is empty.
        ///
        /// # Errors
        /// Errors once the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("receiver mutex").recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.0.lock().expect("receiver mutex").try_recv().ok()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u32, 2, 3, 4];
        let total = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    total.fetch_add(chunk.iter().sum::<u32>(), std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let hits = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        })
        .expect("no panics");
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn bounded_channel_round_trips() {
        let (tx, rx) = super::channel::bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
