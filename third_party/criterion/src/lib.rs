//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group/bench API surface the workspace's `benches/` targets
//! use, measuring plain wall-clock medians (no statistical analysis, plots,
//! or baselines). Good enough to run `cargo bench` offline and get
//! comparable relative numbers; not a replacement for real criterion rigor.

use std::time::{Duration, Instant};

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter label.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up call keeps cold-start effects out of the samples.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the stub has no target time budget.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        self.report(&id.to_string(), &mut bencher.samples);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        self.report(&id.to_string(), &mut bencher.samples);
        self
    }

    /// Ends the group (printing is per-benchmark; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &mut [Duration]) {
        if self.criterion.quiet || samples.is_empty() {
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let rate = self.throughput.map(|t| {
            let per_s = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", per_s(n) / (1024.0 * 1024.0)),
                Throughput::Elements(n) => format!(" ({:.0} elem/s)", per_s(n)),
            }
        });
        println!(
            "bench {}/{id}: median {median:?} over {} samples{}",
            self.name,
            samples.len(),
            rate.unwrap_or_default()
        );
    }
}

/// Entry point mirroring criterion's `Criterion` builder.
pub struct Criterion {
    quiet: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets once with `--test`; stay silent
        // there so test output is not flooded with timing lines.
        let quiet = std::env::args().any(|a| a == "--test");
        Criterion { quiet }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self {
        self.benchmark_group("standalone").bench_function(id, f);
        self
    }
}

/// Re-exported so generated code can defeat dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { quiet: true };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Bytes(8));
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("w", 1), &2u32, |b, &x| b.iter(|| ran += x));
            g.finish();
        }
        // 1 warm-up + 3 samples for each of the two benchmarks.
        assert_eq!(ran, 4 + 4 * 2);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("enc", "p0_5").to_string(), "enc/p0_5");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
