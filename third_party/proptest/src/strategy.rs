//! Strategy trait and combinators for the proptest stand-in.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A source of sampled values. Object-safe: combinators require
/// `Self: Sized` so `Box<dyn Strategy<Value = V>>` works.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    branches: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(branches: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! requires a positive total weight");
        Union { branches, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, branch) in &self.branches {
            let weight = u64::from(*weight);
            if pick < weight {
                return branch.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is below the total weight")
    }
}

/// Result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min_len: usize,
    pub(crate) max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_len - self.min_len).max(1) as u64;
        let len = self.min_len + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Uniform strategy over a type's full domain ([`crate::arbitrary::any`]).
pub struct Any<T>(pub(crate) PhantomData<T>);

/// Types with a canonical uniform sampling rule for `any::<T>()`.
pub trait ArbitrarySample {
    fn sample_any(rng: &mut TestRng) -> Self;
}

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_any(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn sample_any(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitrarySample for bool {
    fn sample_any(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitrarySample for f64 {
    fn sample_any(rng: &mut TestRng) -> Self {
        rng.uniform01() * 2.0 - 1.0
    }
}

impl ArbitrarySample for f32 {
    fn sample_any(rng: &mut TestRng) -> Self {
        (rng.uniform01() * 2.0 - 1.0) as f32
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_sint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i64::from(self.end) - i64::from(self.start)) as u64;
                (i64::from(self.start) + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_range_strategy_sint!(i8, i16, i32);

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start as f64 + rng.uniform01() * (self.end as f64 - self.start as f64);
                // Clamp below end so the half-open contract holds after rounding.
                let x = x as $t;
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
}
