//! Deterministic RNG and configuration for the proptest stand-in.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` sampled cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 generator seeded from the test name, so every run of a given
/// test explores the same sequence of cases (reproducible failures).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the deterministic generator for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test-data generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
