//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: `proptest!` test blocks with
//! `arg in strategy` bindings, range strategies, `Just`, `any::<T>()`,
//! `prop::collection::vec`, tuple strategies, `prop_map`, weighted and
//! unweighted `prop_oneof!`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Sampling is deterministic (seeded per test name) and there is no
//! shrinking: a failing case panics with the sampled inputs available via
//! the assertion message, like a plain `#[test]`.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::{Any, ArbitrarySample};

    /// Returns the canonical strategy for `T` (uniform over its domain).
    pub fn any<T: ArbitrarySample>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Lengths accepted by [`vec`](fn@vec): a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for vectors of `element` samples with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy { element, min_len, max_len }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Each case samples every bound argument from its strategy and runs the
/// body; any panic (including `prop_assert!`) fails the test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Picks one of several strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in -5i32..5, x in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn oneof_yields_only_listed_values(v in prop_oneof![1 => Just(1u32), 1 => Just(2u32), 3 => Just(7u32)]) {
            prop_assert!(v == 1 || v == 2 || v == 7);
        }

        #[test]
        fn prop_map_applies(v in (1usize..4, 1usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=9).contains(&v));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..20);
        let mut r1 = crate::test_runner::TestRng::for_test("fixed");
        let mut r2 = crate::test_runner::TestRng::for_test("fixed");
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
