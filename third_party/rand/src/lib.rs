//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides the (small) slice of the `rand 0.8` API that Ocelot uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`]. All generators are
//! deterministic SplitMix64 streams; statistical quality is more than
//! adequate for seeded simulations and bootstrap resampling, though the
//! streams differ from upstream `StdRng` (ChaCha12) — seeded outputs are
//! stable within this repository, not across rand versions.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the subset Ocelot uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(range, self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a `Range` for [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_uniform<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let u = f64::sample_standard(rng);
                (range.start as f64 + u * (range.end as f64 - range.start as f64)) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stands in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x6A09_E667_F3BC_C909 }
        }
    }
}

pub mod seq {
    //! Slice sampling and shuffling.

    use super::{Rng, SampleUniform};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_uniform(0..i + 1, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_uniform(0..self.len(), rng)])
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should not be identity for 50 elements");
    }
}
