//! Offline stand-in for `serde_json`, backed by the vendored `serde` stub's
//! [`Value`] tree. Provides the string/byte/value conversion functions the
//! workspace uses with serde_json-compatible output formatting.

pub use serde::Value;

use serde::value::{parse_json, to_json};
use serde::{DeError, Deserialize, Serialize};

/// JSON serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
/// Infallible for the value-tree model; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_json(&value.to_value(), None, 0))
}

/// Serializes a value to a pretty-printed JSON string (2-space indent).
///
/// # Errors
/// Infallible for the value-tree model; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_json(&value.to_value(), Some(2), 0))
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
/// Infallible for the value-tree model; the `Result` mirrors serde_json.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
/// Infallible for the value-tree model; the `Result` mirrors serde_json.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_json(s).map_err(|e| Error(e.to_string()))?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes (UTF-8) into any deserializable type.
///
/// # Errors
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Reconstructs a deserializable type from a [`Value`] tree.
///
/// # Errors
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_round_trip() {
        let v = vec!["a".to_string(), "b \"quoted\"".to_string()];
        let json = to_string(&v).unwrap();
        let back: Vec<String> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn bytes_round_trip() {
        let v = vec![1u64, 2, 3];
        let bytes = to_vec(&v).unwrap();
        let back: Vec<u64> = from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_round_trip() {
        let val = to_value(&3.5f64).unwrap();
        assert_eq!(val, Value::Float(3.5));
        let back: f64 = from_value(val).unwrap();
        assert_eq!(back, 3.5);
    }

    #[test]
    fn parse_error_reported() {
        assert!(from_str::<Vec<u64>>("[1, 2,").is_err());
    }
}
