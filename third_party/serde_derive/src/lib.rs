//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes Ocelot's types use — named-field structs, tuple structs, and enums
//! with unit / tuple / named-field variants — plus the `#[serde(skip)]`,
//! `#[serde(default)]`, and `#[serde(skip_serializing_if = "path")]` field
//! attributes. Generic type parameters are not supported (no deriving type
//! in this repository is generic).
//!
//! The macro parses the raw token stream directly (no `syn`/`quote`, which
//! are unavailable offline) and emits impls of the value-tree traits defined
//! by the sibling `serde` stub crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One field of a struct or struct-like variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`; the
    /// field is omitted from serialization when `path(&field)` is true.
    skip_if: Option<String>,
}

/// Parsed `#[serde(...)]` field attributes.
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    skip_if: Option<String>,
}

/// The field layout of a struct or enum variant.
enum Fields {
    Unit,
    /// Tuple layout with the given arity.
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct TypeDesc {
    name: String,
    body: Body,
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let desc = parse_type(input);
    gen_serialize(&desc).parse().expect("generated Serialize impl parses")
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let desc = parse_type(input);
    gen_deserialize(&desc).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes attributes at `*i`, returning any `#[serde(...)]` flags seen.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            parse_serde_args(args.stream(), &mut attrs);
                        }
                    }
                }
                *i += 1;
                continue;
            }
        }
        panic!("malformed attribute");
    }
    attrs
}

/// Parses the inside of one `#[serde(...)]` group.
fn parse_serde_args(stream: TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut j = 0;
    while j < tokens.len() {
        if let TokenTree::Ident(flag) = &tokens[j] {
            match flag.to_string().as_str() {
                "skip" => attrs.skip = true,
                "default" => attrs.default = true,
                "skip_serializing_if" => {
                    // Expect `= "some::path"`.
                    match (tokens.get(j + 1), tokens.get(j + 2)) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                            attrs.skip_if = Some(lit.to_string().trim_matches('"').to_string());
                            j += 2;
                        }
                        _ => panic!("skip_serializing_if expects = \"path\" (stub serde_derive)"),
                    }
                }
                other => panic!("unsupported #[serde({other})] attribute (stub serde_derive)"),
            }
        }
        j += 1;
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn parse_type(input: TokenStream) -> TypeDesc {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("stub serde_derive does not support generic types (deriving `{name}`)");
        }
    }
    let body = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_items(g.stream())))
            }
            _ => panic!("unsupported struct shape for `{name}` (unit structs not supported)"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Body::Enum(parse_variants(g.stream())),
            _ => panic!("malformed enum `{name}`"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    TypeDesc { name, body }
}

/// Counts top-level comma-separated items in a tuple field list, tracking
/// angle-bracket depth so `Foo<A, B>` counts as one item.
fn count_tuple_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut items = 1;
    let mut depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    items += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        items -= 1; // trailing comma
    }
    items
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':' after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, skip: attrs.skip, default: attrs.default, skip_if: attrs.skip_if });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else if p.as_char() == '=' {
                panic!("explicit discriminants are not supported (variant `{name}`)");
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(desc: &TypeDesc) -> String {
    let name = &desc.name;
    let body = match &desc.body {
        Body::Struct(Fields::Named(fields)) => named_fields_object(fields, |f| format!("&self.{f}")),
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Unit) => unreachable!("unit structs rejected during parsing"),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `("a".to_string(), to_value(&self.a)), …` for every non-skipped field.
fn named_field_entries(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| format!("(\"{0}\".to_string(), ::serde::Serialize::to_value({1}))", f.name, access(&f.name)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// A `Value::Object` expression over named fields, honoring skip and
/// skip_serializing_if. The simple all-unconditional case stays a `vec![]`
/// literal; any conditional field switches to an incremental build.
fn named_fields_object(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    if fields.iter().all(|f| f.skip_if.is_none()) {
        let entries = named_field_entries(fields, access);
        return format!("::serde::Value::Object(vec![{entries}])");
    }
    let mut stmts = String::from("let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        let push =
            format!("entries.push((\"{0}\".to_string(), ::serde::Serialize::to_value({1})));", f.name, access(&f.name));
        match &f.skip_if {
            Some(pred) => stmts.push_str(&format!("if !{pred}({}) {{ {push} }}\n", access(&f.name))),
            None => {
                stmts.push_str(&push);
                stmts.push('\n');
            }
        }
    }
    format!("{{ {stmts} ::serde::Value::Object(entries) }}")
}

fn serialize_variant_arm(type_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => {
            format!("{type_name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),")
        }
        Fields::Tuple(1) => format!(
            "{type_name}::{vname}(f0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
             ::serde::Serialize::to_value(f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let items: Vec<String> = binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
            format!(
                "{type_name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                 ::serde::Value::Array(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let payload = named_fields_object(fields, |f| f.to_string());
            format!(
                "{type_name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                 {payload})]),",
                binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(desc: &TypeDesc) -> String {
    let name = &desc.name;
    let body = match &desc.body {
        Body::Struct(Fields::Named(fields)) => {
            let inits = named_field_inits(name, fields, "value");
            format!(
                "if value.as_object().is_none() {{ return Err(::serde::DeError::expected(\"object\", value)); }}\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Body::Struct(Fields::Tuple(n)) => tuple_from_array(name, *n, "value"),
        Body::Struct(Fields::Unit) => unreachable!("unit structs rejected during parsing"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| deserialize_variant_arm(name, v))
                .collect();
            format!(
                "if let Some(s) = value.as_str() {{\n\
                     return match s {{\n\
                         {unit}\n\
                         _ => Err(::serde::DeError::custom(format!(\"unknown variant `{{s}}` of {name}\"))),\n\
                     }};\n\
                 }}\n\
                 if let Some(entries) = value.as_object() {{\n\
                     if entries.len() == 1 {{\n\
                         let payload = &entries[0].1;\n\
                         let _ = payload;\n\
                         return match entries[0].0.as_str() {{\n\
                             {data}\n\
                             tag => Err(::serde::DeError::custom(format!(\"unknown variant `{{tag}}` of {name}\"))),\n\
                         }};\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"variant name or single-key object\", value))",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// `a: match src.get("a") {…}, …` initializers honoring skip/default.
fn named_field_inits(_type_name: &str, fields: &[Field], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            if f.skip {
                format!("{fname}: Default::default()")
            } else if f.default {
                format!(
                    "{fname}: match {src}.get(\"{fname}\") {{ \
                         Some(v) => ::serde::Deserialize::from_value(v)?, \
                         None => Default::default() }}"
                )
            } else {
                format!(
                    "{fname}: match {src}.get(\"{fname}\") {{ \
                         Some(v) => ::serde::Deserialize::from_value(v)?, \
                         None => ::serde::Deserialize::from_missing_field(\"{fname}\")? }}"
                )
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// `match src.as_array() { Some(items) if len == n => Ok(Path(...)), … }`.
fn tuple_from_array(path: &str, n: usize, src: &str) -> String {
    let items: Vec<String> = (0..n).map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?")).collect();
    format!(
        "match {src}.as_array() {{\n\
             Some(items) if items.len() == {n} => Ok({path}({})),\n\
             _ => Err(::serde::DeError::expected(\"array of {n}\", {src})),\n\
         }}",
        items.join(", ")
    )
}

fn deserialize_variant_arm(type_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => unreachable!("unit variants handled separately"),
        Fields::Tuple(1) => {
            format!("\"{vname}\" => Ok({type_name}::{vname}(::serde::Deserialize::from_value(payload)?)),")
        }
        Fields::Tuple(n) => {
            format!("\"{vname}\" => {},", tuple_from_array(&format!("{type_name}::{vname}"), *n, "payload"))
        }
        Fields::Named(fields) => {
            let inits = named_field_inits(type_name, fields, "payload");
            format!(
                "\"{vname}\" => {{\n\
                     if payload.as_object().is_none() {{ return Err(::serde::DeError::expected(\"object\", payload)); }}\n\
                     Ok({type_name}::{vname} {{ {inits} }})\n\
                 }}"
            )
        }
    }
}
