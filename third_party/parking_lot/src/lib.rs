//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free API: `lock()`
//! returns the guard directly, recovering from poisoning (parking_lot has no
//! poisoning at all, so recovery matches its semantics).

use std::sync::PoisonError;

/// Mutual exclusion lock with a non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader–writer lock with a non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable usable with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks on the guard until notified, returning the reacquired guard
    /// (std-style consume-and-return rather than parking_lot's `&mut` —
    /// callers in this repository use this signature).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses; returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (g, res) = self.0.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner);
        (g, res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
