//! The paper's testbed topology: Purdue Anvil, NERSC Cori, Argonne Bebop,
//! with pairwise WAN links calibrated against Tables II and VIII.

use crate::link::LinkProfile;
use crate::storage::SharedFilesystem;
use serde::{Deserialize, Serialize};

/// Identifier for one of the three evaluation sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteId {
    /// Purdue Anvil (2×AMD Milan per node, 128 cores).
    Anvil,
    /// NERSC Cori (Haswell partition).
    Cori,
    /// Argonne Bebop (Broadwell/KNL partitions).
    Bebop,
}

impl SiteId {
    /// All sites.
    pub const ALL: [SiteId; 3] = [SiteId::Anvil, SiteId::Cori, SiteId::Bebop];

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SiteId::Anvil => "Anvil",
            SiteId::Cori => "Cori",
            SiteId::Bebop => "Bebop",
        }
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A compute site: cluster shape plus shared filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Which site this is.
    pub id: SiteId,
    /// Nodes available to batch jobs (Table III).
    pub nodes: usize,
    /// CPU cores per node (Table III).
    pub cores_per_node: usize,
    /// Core speed relative to the Bebop KNL reference core used by the
    /// compression cost model (Milan ≈ 3×, Haswell ≈ 2×, KNL = 1×).
    pub core_speed: f64,
    /// Shared parallel filesystem.
    pub fs: SharedFilesystem,
}

/// A directed WAN route between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Source site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Link characteristics.
    pub link: LinkProfile,
}

/// The full three-site testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    sites: Vec<Site>,
    routes: Vec<Route>,
}

impl Topology {
    /// The calibrated paper testbed.
    ///
    /// Link bandwidths/overheads are fitted to the uncompressed-transfer
    /// rows of Table VIII (Anvil→Cori ≈ 3.6 GB/s, Anvil→Bebop ≈ 0.9 GB/s,
    /// Bebop→Cori ≈ 1.1 GB/s) and the file-count sensitivity of Table II.
    pub fn paper() -> Self {
        let anvil_fs = SharedFilesystem::new(150.0e9, 500.0e6, 400.0);
        let cori_fs = SharedFilesystem::new(100.0e9, 400.0e6, 184.0);
        let bebop_fs = SharedFilesystem::new(40.0e9, 300.0e6, 150.0);
        let sites = vec![
            Site { id: SiteId::Anvil, nodes: 750, cores_per_node: 128, core_speed: 3.0, fs: anvil_fs },
            Site { id: SiteId::Cori, nodes: 2388, cores_per_node: 32, core_speed: 3.2, fs: cori_fs },
            Site { id: SiteId::Bebop, nodes: 664, cores_per_node: 36, core_speed: 3.0, fs: bebop_fs },
        ];
        // Per-file handling cost fitted to Table II's 300 000 × 1 MB row
        // (1235 s at concurrency 4 → ≈ 16.5 ms per file per control channel).
        let mk = |from, to, bw: f64| Route { from, to, link: LinkProfile::new(bw, 0.05, 0.0165, 0.03) };
        let routes = vec![
            mk(SiteId::Anvil, SiteId::Cori, 3.9e9),
            mk(SiteId::Cori, SiteId::Anvil, 3.9e9),
            mk(SiteId::Anvil, SiteId::Bebop, 0.95e9),
            mk(SiteId::Bebop, SiteId::Anvil, 0.95e9),
            mk(SiteId::Bebop, SiteId::Cori, 1.15e9),
            mk(SiteId::Cori, SiteId::Bebop, 1.15e9),
        ];
        Topology { sites, routes }
    }

    /// Looks up a site.
    ///
    /// # Panics
    /// Panics if the site is missing (cannot happen for [`Topology::paper`]).
    pub fn site(&self, id: SiteId) -> &Site {
        self.sites.iter().find(|s| s.id == id).expect("site present in topology")
    }

    /// Looks up a directed route.
    ///
    /// # Panics
    /// Panics if the route is missing or `from == to`.
    pub fn route(&self, from: SiteId, to: SiteId) -> &Route {
        assert_ne!(from, to, "no route from a site to itself");
        self.routes.iter().find(|r| r.from == from && r.to == to).expect("route present in topology")
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridftp::{simulate_transfer, GridFtpConfig};

    #[test]
    fn topology_is_complete() {
        let t = Topology::paper();
        for a in SiteId::ALL {
            let _ = t.site(a);
            for b in SiteId::ALL {
                if a != b {
                    let r = t.route(a, b);
                    assert_eq!((r.from, r.to), (a, b));
                }
            }
        }
    }

    #[test]
    fn np_speeds_match_table8_shape() {
        // Uncompressed CESM-like batch: 7182 files, 1.61 TB, tuned config.
        let t = Topology::paper();
        let files = vec![1_610_000_000_000u64 / 7182; 7182];
        let cfg = GridFtpConfig::default();
        let ac = simulate_transfer(&files, &t.route(SiteId::Anvil, SiteId::Cori).link, &cfg, 1);
        let ab = simulate_transfer(&files, &t.route(SiteId::Anvil, SiteId::Bebop).link, &cfg, 1);
        let bc = simulate_transfer(&files, &t.route(SiteId::Bebop, SiteId::Cori).link, &cfg, 1);
        // Paper: 446 s / 1685 s / 1484 s. Accept ±25 %.
        assert!((334.0..558.0).contains(&ac.duration_s), "anvil→cori {}", ac.duration_s);
        assert!((1264.0..2106.0).contains(&ab.duration_s), "anvil→bebop {}", ab.duration_s);
        assert!((1113.0..1855.0).contains(&bc.duration_s), "bebop→cori {}", bc.duration_s);
        // Ordering: Anvil→Cori is the fast route.
        assert!(ac.duration_s < bc.duration_s && bc.duration_s < ab.duration_s);
    }

    #[test]
    fn sites_have_table3_shapes() {
        let t = Topology::paper();
        assert_eq!(t.site(SiteId::Anvil).cores_per_node, 128);
        assert_eq!(t.site(SiteId::Anvil).nodes, 750);
        assert!(t.site(SiteId::Anvil).core_speed >= t.site(SiteId::Bebop).core_speed);
    }

    #[test]
    #[should_panic(expected = "no route from a site to itself")]
    fn self_route_panics() {
        Topology::paper().route(SiteId::Cori, SiteId::Cori);
    }
}
