//! Simulated time: integer nanoseconds since simulation start.
//!
//! Integer time keeps event ordering exact and runs reproducible across
//! platforms; conversions to `f64` seconds happen only at reporting edges.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from (non-negative, finite) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        let ns = secs * 1e9;
        assert!(ns <= u64::MAX as f64, "time overflow: {secs} s");
        SimTime(ns as u64)
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating difference in seconds (`self − earlier`, floored at 0).
    pub fn seconds_since(&self, earlier: SimTime) -> f64 {
        self.0.saturating_sub(earlier.0) as f64 * 1e-9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    /// Advances by `rhs` seconds.
    fn add(self, rhs: f64) -> SimTime {
        SimTime(self.0 + SimTime::from_secs_f64(rhs).0)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    /// Difference in seconds (saturating at zero).
    fn sub(self, rhs: SimTime) -> f64 {
        self.seconds_since(rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 2.0 + 0.5;
        assert_eq!(t.as_secs_f64(), 2.5);
        assert_eq!(t - SimTime::from_secs_f64(1.0), 1.5);
        // Saturating subtraction.
        assert_eq!(SimTime::ZERO - t, 0.0);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(11);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_panic() {
        SimTime::from_secs_f64(-1.0);
    }
}
