//! Discrete-event wide-area transfer simulator with GridFTP semantics.
//!
//! Stands in for the Globus transfer service between the paper's three
//! sites (Purdue Anvil, NERSC Cori, Argonne Bebop). The simulator models the
//! mechanisms that produce the paper's transfer phenomenology:
//!
//! * shared link bandwidth with max–min fair sharing across concurrent file
//!   transfers (GridFTP *concurrency*),
//! * a per-file throughput cap from TCP streams (*parallelism* × per-stream
//!   rate — a few large files cannot fill a fat link, Table VIII's Miranda
//!   grouping regression),
//! * per-file handling overhead, partly serialized on the control channel —
//!   many small files collapse effective throughput (Table II),
//! * a shared parallel-filesystem model with writer contention
//!   (the non-monotonic decompression scaling of Fig 9).
//!
//! All behaviour is deterministic given the seed.
//!
//! ```
//! use ocelot_netsim::{simulate_transfer, GridFtpConfig, LinkProfile};
//!
//! let link = LinkProfile::new(1.0e9, 0.05, 0.03, 0.01);
//! let files = vec![100_000_000u64; 30];
//! let report = simulate_transfer(&files, &link, &GridFtpConfig::default(), 7);
//! assert!(report.duration_s > 0.0);
//! ```

pub mod contention;
pub mod faults;
pub mod gridftp;
pub mod link;
pub mod site;
pub mod storage;
pub mod time;

pub use contention::{simulate_shared_link, BatchReport, BatchSpec};
pub use faults::{draw_faults, simulate_transfer_with_faults, FaultDraw, FaultModel, FaultyTransferReport};
pub use gridftp::{
    simulate_transfer, simulate_transfer_detailed, simulate_transfer_released, DetailedTransferReport, GridFtpConfig,
    TransferReport,
};
pub use link::LinkProfile;
pub use site::{Route, Site, SiteId, Topology};
pub use storage::SharedFilesystem;
pub use time::SimTime;
