//! Shared parallel-filesystem model with writer contention.
//!
//! Reproduces the paper's Fig 9 observation: parallel *decompression* slows
//! down as nodes are added because hundreds of concurrent writers contend on
//! the shared file system (lock traffic, metadata serialization), while
//! *compression* (read-heavy, small compressed output) keeps scaling.
//!
//! The model: each writer's effective bandwidth degrades superlinearly with
//! the writer count, `bw_eff(W) = per_writer / (1 + (W/W₀)²)`, so the write
//! time `bytes·(1+(W/W₀)²)/(W·per_writer)` is U-shaped in `W` with its
//! minimum at `W₀` — few writers are streaming-limited, many writers are
//! contention-limited, and the penalty scales with the bytes written (a tiny
//! compressed payload never pays minutes of contention).

use serde::{Deserialize, Serialize};

/// A site's shared parallel filesystem.
///
/// ```
/// use ocelot_netsim::SharedFilesystem;
///
/// let fs = SharedFilesystem::new(100.0e9, 400.0e6, 184.0);
/// // The write-time curve is U-shaped: its interior optimum beats both a
/// // single writer and an over-subscribed write storm.
/// let best = fs.optimal_writers(1_000_000_000_000, 2048);
/// assert!(fs.write_time_s(1_000_000_000_000, best) < fs.write_time_s(1_000_000_000_000, 1));
/// assert!(fs.write_time_s(1_000_000_000_000, best) < fs.write_time_s(1_000_000_000_000, 2048));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedFilesystem {
    /// Aggregate streaming bandwidth in bytes/second (striped across OSTs).
    pub aggregate_bps: f64,
    /// Per-client streaming bandwidth in bytes/second (uncontended).
    pub per_writer_bps: f64,
    /// Writer count at which contention doubles the per-writer cost (the
    /// sweet spot of the U-shaped write-time curve).
    pub contention_writers: f64,
    /// Fixed open/close latency per I/O batch, seconds.
    pub base_latency_s: f64,
}

impl SharedFilesystem {
    /// Creates a filesystem model.
    ///
    /// # Panics
    /// Panics on non-positive bandwidths or contention scale.
    pub fn new(aggregate_bps: f64, per_writer_bps: f64, contention_writers: f64) -> Self {
        assert!(aggregate_bps > 0.0 && per_writer_bps > 0.0, "bandwidths must be positive");
        assert!(contention_writers > 0.0, "contention scale must be positive");
        SharedFilesystem { aggregate_bps, per_writer_bps, contention_writers, base_latency_s: 0.05 }
    }

    /// Time to write `total_bytes` from `writers` concurrent clients.
    ///
    /// # Panics
    /// Panics if `writers == 0`.
    pub fn write_time_s(&self, total_bytes: u64, writers: usize) -> f64 {
        assert!(writers > 0, "at least one writer");
        let w = writers as f64;
        let degraded = self.per_writer_bps / (1.0 + (w / self.contention_writers).powi(2));
        let bw = (w * degraded).min(self.aggregate_bps);
        self.base_latency_s + total_bytes as f64 / bw
    }

    /// Time to read `total_bytes` from `readers` concurrent clients. Reads
    /// scale cleanly (no lock contention term).
    ///
    /// # Panics
    /// Panics if `readers == 0`.
    pub fn read_time_s(&self, total_bytes: u64, readers: usize) -> f64 {
        assert!(readers > 0, "at least one reader");
        let bw = (readers as f64 * self.per_writer_bps).min(self.aggregate_bps);
        self.base_latency_s + total_bytes as f64 / bw
    }

    /// The writer count minimizing [`SharedFilesystem::write_time_s`] for a
    /// payload — the "tune the number of cores to the parallel file system"
    /// guidance from §VII-A.
    pub fn optimal_writers(&self, total_bytes: u64, max_writers: usize) -> usize {
        (1..=max_writers.max(1))
            .min_by(|&a, &b| {
                self.write_time_s(total_bytes, a).partial_cmp(&self.write_time_s(total_bytes, b)).expect("finite times")
            })
            .expect("nonempty range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SharedFilesystem {
        // Cori-class: 100 GB/s aggregate, 400 MB/s per client, contention
        // knee near 184 writers (fitted to Fig 9 / Table VIII DPTime).
        SharedFilesystem::new(100.0e9, 400.0e6, 184.0)
    }

    #[test]
    fn write_time_is_u_shaped_in_writers() {
        let bytes = 1_610_000_000_000u64; // CESM 1.61 TB
        let t1 = fs().write_time_s(bytes, 1);
        let t184 = fs().write_time_s(bytes, 184);
        let t2048 = fs().write_time_s(bytes, 2048);
        assert!(t1 > t184, "t1={t1} t184={t184}");
        assert!(t2048 > t184, "t2048={t2048} t184={t184}");
    }

    #[test]
    fn calibration_matches_fig9_magnitudes() {
        // Paper: CESM decompression ≈ 68.7 s with 4 nodes × 128 cores
        // writing, > 5 min with 16 nodes.
        let bytes = 1_610_000_000_000u64;
        let t512 = fs().write_time_s(bytes, 512);
        let t2048 = fs().write_time_s(bytes, 2048);
        assert!((45.0..100.0).contains(&t512), "t512={t512}");
        assert!(t2048 > 200.0, "t2048={t2048}");
    }

    #[test]
    fn small_payloads_never_pay_huge_contention() {
        // 10 GB of compressed output from 2048 writers must stay cheap —
        // compression output writes were fast in the paper (CPTime ≈ 32 s
        // total for CESM).
        let t = fs().write_time_s(10_000_000_000, 2048);
        assert!(t < 20.0, "t={t}");
    }

    #[test]
    fn reads_scale_cleanly() {
        let bytes = 100_000_000_000u64;
        let t1 = fs().read_time_s(bytes, 1);
        let t64 = fs().read_time_s(bytes, 64);
        assert!(t64 < t1 / 30.0, "t1={t1} t64={t64}");
        // Beyond aggregate saturation, more readers don't help but don't hurt.
        let t512 = fs().read_time_s(bytes, 512);
        let t2048 = fs().read_time_s(bytes, 2048);
        assert!((t512 - t2048).abs() < 1e-9);
    }

    #[test]
    fn optimal_writers_sits_at_the_knee() {
        let w = fs().optimal_writers(1_610_000_000_000, 2048);
        assert!((150..=250).contains(&w), "optimal writers {w}");
    }

    #[test]
    #[should_panic(expected = "at least one writer")]
    fn zero_writers_panics() {
        fs().write_time_s(1, 0);
    }
}
