//! Fluid-flow simulation of a GridFTP/Globus batch transfer.
//!
//! The simulation advances through two kinds of events: *command releases*
//! (each of the `concurrency` control channels processes one file command
//! every `per_file_overhead` seconds, so commands release at a global spacing
//! of `overhead / concurrency`) and *file completions*. Between events, link
//! bandwidth is shared max–min fairly across active files, each capped at
//! `parallelism × stream_rate` (a single file cannot exceed its TCP streams'
//! aggregate rate).

use crate::link::LinkProfile;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// GridFTP transfer tuning (concurrency / parallelism / pipelining).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridFtpConfig {
    /// Number of concurrent file transfers (separate FTP sessions).
    pub concurrency: usize,
    /// TCP streams per file.
    pub parallelism: u32,
    /// Achievable rate per TCP stream, bytes/second.
    pub stream_rate_bps: f64,
    /// Whether command pipelining is enabled (without it every command also
    /// pays one RTT).
    pub pipelining: bool,
    /// Per-file in-slot setup before data flows (data-channel establishment
    /// and TCP ramp), seconds. Unlike the control-channel handling cost it
    /// occupies a concurrency slot, so it throttles mid-sized-file batches
    /// (Table II's 10 MB row).
    pub slot_setup_s: f64,
}

impl Default for GridFtpConfig {
    /// The tuned configuration used for the paper's Table VIII transfers.
    fn default() -> Self {
        GridFtpConfig {
            concurrency: 32,
            parallelism: 4,
            stream_rate_bps: 70.0e6,
            pipelining: true,
            slot_setup_s: 0.008,
        }
    }
}

impl GridFtpConfig {
    /// An untuned default-endpoint configuration (low concurrency), matching
    /// the conditions of the paper's Table II measurements.
    pub fn untuned() -> Self {
        GridFtpConfig { concurrency: 4, ..Self::default() }
    }

    /// Per-file throughput cap in bytes/second.
    pub fn per_file_cap_bps(&self) -> f64 {
        self.parallelism as f64 * self.stream_rate_bps
    }

    /// Replaces the concurrency.
    pub fn with_concurrency(mut self, c: usize) -> Self {
        self.concurrency = c;
        self
    }
}

/// Outcome of a simulated batch transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Wall-clock duration in (simulated) seconds.
    pub duration_s: f64,
    /// Total payload bytes moved.
    pub bytes_total: u64,
    /// Number of files.
    pub n_files: usize,
    /// Effective throughput `bytes_total / duration_s` in bytes/second.
    pub effective_speed_bps: f64,
}

/// Simulates transferring `files` (sizes in bytes) over `link`.
///
/// Zero-byte files cost only their handling overhead. An empty batch returns
/// a zero-duration report.
///
/// # Panics
/// Panics if `config.concurrency == 0` or `config.parallelism == 0`.
pub fn simulate_transfer(files: &[u64], link: &LinkProfile, config: &GridFtpConfig, seed: u64) -> TransferReport {
    simulate_transfer_released(files, None, link, config, seed)
}

/// Like [`simulate_transfer`], but each file only becomes *available* at
/// `release_s[i]` seconds (e.g. when its compression finishes) — the
/// pipelined mode of the paper's Fig 1, where transfer starts on files as
/// soon as they are ready instead of waiting for the whole batch.
///
/// A file's command can be processed no earlier than its release time; the
/// control channels otherwise behave as in the plain simulation. Pass
/// `None` to release everything at time zero.
///
/// # Panics
/// Panics if `release_s` is `Some` with a length different from `files`,
/// contains negative/non-finite times, or the config is invalid.
pub fn simulate_transfer_released(
    files: &[u64],
    release_s: Option<&[f64]>,
    link: &LinkProfile,
    config: &GridFtpConfig,
    seed: u64,
) -> TransferReport {
    simulate_transfer_detailed(files, release_s, link, config, seed).report
}

/// A [`TransferReport`] plus the simulated completion time of every file.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedTransferReport {
    /// The aggregate batch report (identical to what
    /// [`simulate_transfer_released`] returns for the same inputs).
    pub report: TransferReport,
    /// Per-file completion times in seconds, indexed like `files`. The
    /// streaming orchestrator uses these to start each item's decompression
    /// the moment it lands instead of waiting for the batch.
    pub completion_s: Vec<f64>,
    /// Per-file activation times in seconds (when the file claimed a
    /// concurrency slot and its transfer actually began), indexed like
    /// `files`. The chunk ledger records these as `in_flight` events.
    pub start_s: Vec<f64>,
}

/// Like [`simulate_transfer_released`], but also records when each file
/// finishes — the hook the streamed pipeline needs to overlap per-chunk
/// decompression with the remaining transfer.
///
/// # Panics
/// Panics under the same conditions as [`simulate_transfer_released`].
pub fn simulate_transfer_detailed(
    files: &[u64],
    release_s: Option<&[f64]>,
    link: &LinkProfile,
    config: &GridFtpConfig,
    seed: u64,
) -> DetailedTransferReport {
    assert!(config.concurrency > 0, "concurrency must be positive");
    assert!(config.parallelism > 0, "parallelism must be positive");
    if let Some(r) = release_s {
        assert_eq!(r.len(), files.len(), "one release time per file");
        assert!(r.iter().all(|t| t.is_finite() && *t >= 0.0), "release times must be non-negative");
    }
    let bytes_total: u64 = files.iter().sum();
    if files.is_empty() {
        return DetailedTransferReport {
            report: TransferReport { duration_s: 0.0, bytes_total: 0, n_files: 0, effective_speed_bps: 0.0 },
            completion_s: Vec::new(),
            start_s: Vec::new(),
        };
    }
    let mut completion_s = vec![0.0f64; files.len()];
    let mut start_s = vec![0.0f64; files.len()];

    // Command spacing: each of `concurrency` control channels handles one
    // file every `per_file_overhead` (+1 RTT without pipelining).
    let per_command = link.per_file_overhead_s + if config.pipelining { 0.0 } else { link.rtt_s };
    let release_spacing = per_command / config.concurrency as f64;
    // Availability: a command cannot be issued before its file exists.
    let available = |i: usize| release_s.map_or(0.0, |r| r[i]);

    let mut now = SimTime::ZERO;
    let mut next_file = 0usize; // next file awaiting command release
    let mut next_release = SimTime::from_secs_f64(release_spacing.max(available(0)));
    let mut ready: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut active: Vec<Active> = Vec::with_capacity(config.concurrency);
    let mut last_completion = SimTime::ZERO;

    let activate = |idx: usize, active: &mut Vec<Active>, link: &LinkProfile| {
        let jf = link.jitter_factor(seed, idx as u64);
        active.push(Active {
            index: idx,
            remaining: files[idx] as f64,
            cap: (config.per_file_cap_bps() * jf).max(1.0),
            setup_remaining: config.slot_setup_s,
        });
    };

    loop {
        // Fill free slots from the ready queue.
        while active.len() < config.concurrency {
            match ready.pop_front() {
                Some(idx) => {
                    start_s[idx] = now.as_secs_f64();
                    activate(idx, &mut active, link);
                }
                None => break,
            }
        }
        let commands_remain = next_file < files.len();
        if active.is_empty() && !commands_remain {
            break;
        }

        // Water-filling among files whose setup has completed; files still
        // in setup hold their slot but move no data.
        let flowing: Vec<Active> = active.iter().filter(|a| a.setup_remaining <= 0.0).copied().collect();
        let flow_rates = water_fill(link.bandwidth_bps, &flowing);
        let mut rates = Vec::with_capacity(active.len());
        let mut fi = 0usize;
        for a in &active {
            if a.setup_remaining <= 0.0 {
                rates.push(flow_rates[fi]);
                fi += 1;
            } else {
                rates.push(0.0);
            }
        }

        // Next event: file completion, setup completion, or command release.
        let mut dt_complete = f64::INFINITY;
        for (a, &r) in active.iter().zip(&rates) {
            if a.setup_remaining <= 0.0 {
                let dt = if a.remaining <= 0.0 { 0.0 } else { a.remaining / r.max(1e-9) };
                dt_complete = dt_complete.min(dt);
            } else {
                dt_complete = dt_complete.min(a.setup_remaining);
            }
        }
        let dt_release = if commands_remain { (next_release - now).max(0.0) } else { f64::INFINITY };
        let dt = dt_complete.min(dt_release);
        debug_assert!(dt.is_finite(), "no progress possible");

        // Advance time, setups, and bytes.
        now += dt;
        for (a, &r) in active.iter_mut().zip(&rates) {
            if a.setup_remaining > 0.0 {
                a.setup_remaining -= dt;
            } else {
                a.remaining -= r * dt;
            }
        }
        // Process completions (remaining ≤ epsilon bytes).
        let before = active.len();
        active.retain(|a| {
            if a.remaining > 1e-6 {
                true
            } else {
                completion_s[a.index] = now.as_secs_f64();
                false
            }
        });
        if active.len() < before {
            last_completion = now;
        }
        // Process command release.
        if commands_remain && now >= next_release {
            ready.push_back(next_file);
            next_file += 1;
            if next_file < files.len() {
                let earliest = next_release + release_spacing;
                next_release = earliest.max(SimTime::from_secs_f64(available(next_file)));
            }
        }
    }

    let duration_s = last_completion.max(now).as_secs_f64().max(release_spacing * files.len() as f64);
    let effective_speed_bps = if duration_s > 0.0 { bytes_total as f64 / duration_s } else { 0.0 };
    let obs = ocelot_obs::global();
    obs.inc("ocelot_netsim_transfers_total", "Simulated batch transfers");
    obs.add("ocelot_netsim_bytes_total", "Payload bytes moved across simulated links", bytes_total);
    obs.add("ocelot_netsim_files_total", "Files moved across simulated links", files.len() as u64);
    obs.observe("ocelot_netsim_transfer_seconds", "Simulated duration of a batch transfer", duration_s);
    obs.observe(
        "ocelot_netsim_effective_speed_bps",
        "Effective throughput of a batch transfer (bytes/second)",
        effective_speed_bps,
    );
    DetailedTransferReport {
        report: TransferReport { duration_s, bytes_total, n_files: files.len(), effective_speed_bps },
        completion_s,
        start_s,
    }
}

/// Max–min fair allocation of `capacity` among flows with per-flow caps.
fn water_fill(capacity: f64, active: &[impl CapHolder]) -> Vec<f64> {
    let n = active.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rates = vec![0.0f64; n];
    let mut remaining_capacity = capacity;
    let mut unfixed: Vec<usize> = (0..n).collect();
    // Iteratively pin flows whose cap is below the fair share.
    loop {
        if unfixed.is_empty() || remaining_capacity <= 0.0 {
            break;
        }
        let fair = remaining_capacity / unfixed.len() as f64;
        let mut pinned_any = false;
        unfixed.retain(|&i| {
            let cap = active[i].cap();
            if cap <= fair {
                rates[i] = cap;
                remaining_capacity -= cap;
                pinned_any = true;
                false
            } else {
                true
            }
        });
        if !pinned_any {
            let fair = remaining_capacity / unfixed.len() as f64;
            for &i in &unfixed {
                rates[i] = fair;
            }
            break;
        }
    }
    rates
}

/// Internal abstraction so `water_fill` is testable without `Active`.
trait CapHolder {
    fn cap(&self) -> f64;
}

impl CapHolder for f64 {
    fn cap(&self) -> f64 {
        *self
    }
}

/// One in-flight file transfer.
#[derive(Debug, Clone, Copy)]
struct Active {
    /// Position in the input `files` slice (for completion-time recording).
    index: usize,
    remaining: f64,
    cap: f64,
    /// In-slot setup time left before data flows.
    setup_remaining: f64,
}

impl CapHolder for Active {
    fn cap(&self) -> f64 {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_link() -> LinkProfile {
        LinkProfile::new(1.15e9, 0.05, 0.13, 0.0)
    }

    #[test]
    fn empty_batch_is_zero() {
        let r = simulate_transfer(&[], &test_link(), &GridFtpConfig::default(), 0);
        assert_eq!(r.duration_s, 0.0);
        assert_eq!(r.n_files, 0);
    }

    #[test]
    fn single_large_file_is_cap_limited() {
        let cfg = GridFtpConfig::default();
        let r = simulate_transfer(&[10_000_000_000], &test_link(), &cfg, 0);
        // One file cannot exceed parallelism × stream rate = 280 MB/s.
        let expected = 10_000_000_000.0 / cfg.per_file_cap_bps();
        assert!((r.duration_s - expected).abs() / expected < 0.05, "dur={} expected={expected}", r.duration_s);
    }

    #[test]
    fn many_large_files_are_bandwidth_limited() {
        let files = vec![1_000_000_000u64; 64];
        let r = simulate_transfer(&files, &test_link(), &GridFtpConfig::default(), 0);
        assert!(r.effective_speed_bps > 0.9 * 1.15e9, "speed {} should approach link bandwidth", r.effective_speed_bps);
    }

    #[test]
    fn many_tiny_files_are_command_limited() {
        // Table II regime: 1 MB files at untuned concurrency crawl because
        // command handling dominates.
        let files = vec![1_000_000u64; 2000];
        let r = simulate_transfer(&files, &test_link(), &GridFtpConfig::untuned(), 0);
        let command_floor = 2000.0 * 0.13 / 4.0;
        assert!(r.duration_s >= command_floor * 0.95, "dur={} floor={command_floor}", r.duration_s);
        assert!(r.effective_speed_bps < 0.3 * 1.15e9);
    }

    #[test]
    fn table2_speed_ordering() {
        // 300 GB moved as 1 MB / 10 MB / 100 MB files: effective speed must
        // increase with file size (paper Table II rows 1-3).
        let link = test_link();
        let cfg = GridFtpConfig::untuned();
        let total: u64 = 30_000_000_000; // scaled-down 30 GB for test speed
        let mut speeds = Vec::new();
        for size in [1_000_000u64, 10_000_000, 100_000_000] {
            let files = vec![size; (total / size) as usize];
            speeds.push(simulate_transfer(&files, &link, &cfg, 1).effective_speed_bps);
        }
        assert!(speeds[0] < speeds[1] && speeds[1] < speeds[2], "{speeds:?}");
    }

    #[test]
    fn higher_concurrency_helps_small_files() {
        let files = vec![1_000_000u64; 1000];
        let slow = simulate_transfer(&files, &test_link(), &GridFtpConfig::untuned(), 0);
        let fast = simulate_transfer(&files, &test_link(), &GridFtpConfig::default(), 0);
        assert!(fast.duration_s < slow.duration_s * 0.5, "fast={} slow={}", fast.duration_s, slow.duration_s);
    }

    #[test]
    fn too_few_files_underutilize_the_link() {
        // The Miranda-grouping regression: 4 big files can't fill a fat link.
        let fat = LinkProfile::new(3.9e9, 0.05, 0.13, 0.0);
        let grouped = vec![4_000_000_000u64; 4];
        let many = vec![125_000_000u64; 128];
        let cfg = GridFtpConfig::default();
        let rg = simulate_transfer(&grouped, &fat, &cfg, 0);
        let rm = simulate_transfer(&many, &fat, &cfg, 0);
        assert!(
            rg.effective_speed_bps < rm.effective_speed_bps,
            "grouped {} many {}",
            rg.effective_speed_bps,
            rm.effective_speed_bps
        );
    }

    #[test]
    fn pipelining_off_pays_rtt() {
        let files = vec![1_000_000u64; 500];
        let link = test_link();
        let with = simulate_transfer(&files, &link, &GridFtpConfig::default(), 0);
        let cfg = GridFtpConfig { pipelining: false, ..Default::default() };
        let without = simulate_transfer(&files, &link, &cfg, 0);
        assert!(without.duration_s > with.duration_s);
    }

    #[test]
    fn jitter_changes_duration_slightly() {
        let link = LinkProfile::new(1.15e9, 0.05, 0.13, 0.05);
        let files = vec![500_000_000u64; 40];
        let a = simulate_transfer(&files, &link, &GridFtpConfig::default(), 1);
        let b = simulate_transfer(&files, &link, &GridFtpConfig::default(), 2);
        assert_ne!(a.duration_s, b.duration_s);
        assert!((a.duration_s / b.duration_s - 1.0).abs() < 0.2);
    }

    #[test]
    fn water_fill_respects_caps_and_capacity() {
        let caps: Vec<f64> = vec![10.0, 50.0, 1000.0];
        let rates = water_fill(100.0, &caps);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 45.0).abs() < 1e-9);
        assert!((rates[2] - 45.0).abs() < 1e-9);
        assert!((rates.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_all_capped() {
        let caps: Vec<f64> = vec![10.0, 10.0];
        let rates = water_fill(100.0, &caps);
        assert_eq!(rates, vec![10.0, 10.0]);
    }

    #[test]
    fn release_times_delay_the_transfer() {
        let files = vec![100_000_000u64; 16];
        let cfg = GridFtpConfig::default();
        let immediate = simulate_transfer(&files, &test_link(), &cfg, 0);
        // All files become available only at t = 30 s.
        let releases = vec![30.0; 16];
        let delayed = simulate_transfer_released(&files, Some(&releases), &test_link(), &cfg, 0);
        assert!(delayed.duration_s >= 30.0, "duration {}", delayed.duration_s);
        assert!(delayed.duration_s <= immediate.duration_s + 30.0 + 1.0);
    }

    #[test]
    fn staggered_releases_pipeline_with_the_transfer() {
        // Files trickle out of compression at 0.2 s intervals: the transfer
        // overlaps with production, finishing well before sum(production) +
        // batch-transfer time.
        let files = vec![200_000_000u64; 50];
        let releases: Vec<f64> = (0..50).map(|i| i as f64 * 0.2).collect();
        let cfg = GridFtpConfig::default();
        let overlapped = simulate_transfer_released(&files, Some(&releases), &test_link(), &cfg, 0);
        let sequential = 50.0 * 0.2 + simulate_transfer(&files, &test_link(), &cfg, 0).duration_s;
        assert!(overlapped.duration_s < sequential, "{} vs {}", overlapped.duration_s, sequential);
        // And it can never beat the plain batch (files cannot start early).
        assert!(overlapped.duration_s >= simulate_transfer(&files, &test_link(), &cfg, 0).duration_s);
    }

    #[test]
    fn detailed_report_matches_and_orders_completions() {
        let files = vec![400_000_000u64, 100_000_000, 200_000_000];
        let cfg = GridFtpConfig::default();
        let d = simulate_transfer_detailed(&files, None, &test_link(), &cfg, 0);
        let plain = simulate_transfer(&files, &test_link(), &cfg, 0);
        assert_eq!(d.report, plain, "detailed variant must not change the aggregate report");
        assert_eq!(d.completion_s.len(), 3);
        // Every completion is positive and none exceeds the batch duration.
        for &c in &d.completion_s {
            assert!(c > 0.0 && c <= d.report.duration_s + 1e-9, "completion {c} vs {}", d.report.duration_s);
        }
        // The last completion IS the data phase's end.
        let last = d.completion_s.iter().cloned().fold(0.0, f64::max);
        assert!(last <= d.report.duration_s + 1e-9);
        // With equal share, the smallest file lands first.
        let min_idx =
            d.completion_s.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i).unwrap();
        assert_eq!(min_idx, 1, "completions {:?}", d.completion_s);
    }

    #[test]
    fn detailed_respects_release_times() {
        let files = vec![50_000_000u64; 4];
        let releases = vec![0.0, 5.0, 10.0, 15.0];
        let d = simulate_transfer_detailed(&files, Some(&releases), &test_link(), &GridFtpConfig::default(), 0);
        for (i, (&c, &r)) in d.completion_s.iter().zip(&releases).enumerate() {
            assert!(c >= r, "file {i} completed at {c} before its release {r}");
        }
    }

    #[test]
    fn detailed_start_times_bracket_release_and_completion() {
        let files = vec![50_000_000u64; 8];
        let releases: Vec<f64> = (0..8).map(|i| i as f64 * 2.0).collect();
        let d = simulate_transfer_detailed(&files, Some(&releases), &test_link(), &GridFtpConfig::default(), 0);
        assert_eq!(d.start_s.len(), 8);
        for (i, &s) in d.start_s.iter().enumerate() {
            assert!(s >= releases[i] - 1e-9, "file {i} started at {s} before its release {}", releases[i]);
            assert!(s <= d.completion_s[i] + 1e-9, "file {i} started at {s} after completing at {}", d.completion_s[i]);
        }
    }

    #[test]
    #[should_panic(expected = "one release time per file")]
    fn release_length_mismatch_panics() {
        simulate_transfer_released(&[1, 2], Some(&[0.0]), &test_link(), &GridFtpConfig::default(), 0);
    }

    #[test]
    fn zero_byte_files_finish() {
        let files = vec![0u64; 10];
        let r = simulate_transfer(&files, &test_link(), &GridFtpConfig::default(), 0);
        assert!(r.duration_s > 0.0); // still pays handling overhead
        assert_eq!(r.bytes_total, 0);
    }
}
