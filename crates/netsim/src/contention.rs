//! Multiple concurrent batch transfers sharing one WAN link.
//!
//! The paper anticipates a production deployment where "wait time would be
//! only dependent on other Ocelot transfers sharing those resources". This
//! module simulates several batches — each with its own control channels and
//! concurrency budget, possibly starting at different times — contending for
//! a single link's bandwidth, with max–min fair sharing across every active
//! file regardless of owner.

use crate::gridftp::GridFtpConfig;
use crate::link::LinkProfile;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One contending batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSpec {
    /// Per-file sizes in bytes.
    pub files: Vec<u64>,
    /// Simulated start time of the batch, seconds.
    pub start_s: f64,
    /// GridFTP tuning for this batch.
    pub config: GridFtpConfig,
}

/// Outcome of one batch under contention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Wall time from the batch's own start to its last byte, seconds.
    pub duration_s: f64,
    /// Completion instant on the shared clock, seconds.
    pub finished_at_s: f64,
    /// Bytes moved.
    pub bytes_total: u64,
    /// Effective speed over the batch's own duration.
    pub effective_speed_bps: f64,
}

struct BatchState {
    next_file: usize,
    next_release: f64,
    ready: VecDeque<usize>,
    active: Vec<(f64, f64, f64)>, // (remaining_bytes, cap, setup_remaining)
    last_completion: f64,
    started: bool,
}

/// Simulates `batches` sharing `link`. Returns one report per batch, in
/// input order.
///
/// # Panics
/// Panics if any batch has zero concurrency/parallelism or a negative start.
pub fn simulate_shared_link(batches: &[BatchSpec], link: &LinkProfile, seed: u64) -> Vec<BatchReport> {
    for b in batches {
        assert!(b.config.concurrency > 0 && b.config.parallelism > 0, "invalid batch config");
        assert!(b.start_s.is_finite() && b.start_s >= 0.0, "invalid batch start");
    }
    let release_spacing: Vec<f64> = batches
        .iter()
        .map(|b| {
            let per_command = link.per_file_overhead_s + if b.config.pipelining { 0.0 } else { link.rtt_s };
            per_command / b.config.concurrency as f64
        })
        .collect();
    let mut states: Vec<BatchState> = batches
        .iter()
        .zip(&release_spacing)
        .map(|(b, &sp)| BatchState {
            next_file: 0,
            next_release: b.start_s + sp,
            ready: VecDeque::new(),
            active: Vec::new(),
            last_completion: b.start_s,
            started: !b.files.is_empty(),
        })
        .collect();

    let mut now = 0.0f64;
    loop {
        // Activate ready files within each batch's concurrency budget.
        for (k, st) in states.iter_mut().enumerate() {
            while st.active.len() < batches[k].config.concurrency {
                match st.ready.pop_front() {
                    Some(i) => {
                        let jf = link.jitter_factor(seed ^ (k as u64) << 32, i as u64);
                        st.active.push((
                            batches[k].files[i] as f64,
                            (batches[k].config.per_file_cap_bps() * jf).max(1.0),
                            batches[k].config.slot_setup_s,
                        ));
                    }
                    None => break,
                }
            }
        }

        let work_remains =
            states.iter().enumerate().any(|(k, st)| !st.active.is_empty() || st.next_file < batches[k].files.len());
        if !work_remains {
            break;
        }

        // Fair share across every flowing file on the link.
        let caps: Vec<f64> =
            states.iter().flat_map(|st| st.active.iter().filter(|a| a.2 <= 0.0).map(|a| a.1)).collect();
        let rates = water_fill_caps(link.bandwidth_bps, &caps);

        // Next event across all batches.
        let mut dt = f64::INFINITY;
        let mut r = 0usize;
        for st in &states {
            for &(remaining, _, setup) in &st.active {
                if setup > 0.0 {
                    dt = dt.min(setup);
                } else {
                    let rate = rates[r].max(1e-9);
                    r += 1;
                    dt = dt.min(if remaining <= 0.0 { 0.0 } else { remaining / rate });
                }
            }
        }
        for (k, st) in states.iter().enumerate() {
            if st.next_file < batches[k].files.len() {
                dt = dt.min((st.next_release - now).max(0.0));
            }
        }
        debug_assert!(dt.is_finite(), "no progress possible");
        now += dt;

        // Advance flows, setups, completions, and command releases.
        let mut r = 0usize;
        for (k, st) in states.iter_mut().enumerate() {
            for a in &mut st.active {
                if a.2 > 0.0 {
                    a.2 -= dt;
                } else {
                    a.0 -= rates[r] * dt;
                    r += 1;
                }
            }
            let before = st.active.len();
            st.active.retain(|a| a.0 > 1e-6);
            if st.active.len() < before {
                st.last_completion = now;
            }
            if st.next_file < batches[k].files.len() && now >= st.next_release {
                st.ready.push_back(st.next_file);
                st.next_file += 1;
                st.next_release += release_spacing[k];
            }
        }
    }

    states
        .iter()
        .zip(batches)
        .map(|(st, b)| {
            let finished = if st.started { st.last_completion.max(b.start_s) } else { b.start_s };
            let duration = finished - b.start_s;
            let bytes: u64 = b.files.iter().sum();
            BatchReport {
                duration_s: duration,
                finished_at_s: finished,
                bytes_total: bytes,
                effective_speed_bps: if duration > 0.0 { bytes as f64 / duration } else { 0.0 },
            }
        })
        .collect()
}

/// Max–min fair allocation over plain caps (shared-link variant of the
/// single-batch water filling).
fn water_fill_caps(capacity: f64, caps: &[f64]) -> Vec<f64> {
    let n = caps.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rates = vec![0.0f64; n];
    let mut remaining = capacity;
    let mut unfixed: Vec<usize> = (0..n).collect();
    loop {
        if unfixed.is_empty() || remaining <= 0.0 {
            break;
        }
        let fair = remaining / unfixed.len() as f64;
        let mut pinned = false;
        unfixed.retain(|&i| {
            if caps[i] <= fair {
                rates[i] = caps[i];
                remaining -= caps[i];
                pinned = true;
                false
            } else {
                true
            }
        });
        if !pinned {
            let fair = remaining / unfixed.len() as f64;
            for &i in &unfixed {
                rates[i] = fair;
            }
            break;
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridftp::simulate_transfer;

    fn link() -> LinkProfile {
        LinkProfile::new(1.0e9, 0.05, 0.02, 0.0)
    }

    fn batch(files: Vec<u64>, start_s: f64) -> BatchSpec {
        BatchSpec { files, start_s, config: GridFtpConfig::default() }
    }

    #[test]
    fn single_batch_matches_plain_simulation() {
        let files = vec![200_000_000u64; 30];
        let plain = simulate_transfer(&files, &link(), &GridFtpConfig::default(), 0);
        let shared = simulate_shared_link(&[batch(files, 0.0)], &link(), 0);
        assert!(
            (shared[0].duration_s - plain.duration_s).abs() / plain.duration_s < 0.02,
            "shared {} vs plain {}",
            shared[0].duration_s,
            plain.duration_s
        );
    }

    #[test]
    fn contending_batches_slow_each_other() {
        let files = vec![500_000_000u64; 40]; // 20 GB each, bw-limited
        let alone = simulate_shared_link(&[batch(files.clone(), 0.0)], &link(), 0);
        let contended = simulate_shared_link(&[batch(files.clone(), 0.0), batch(files, 0.0)], &link(), 0);
        // Two equal batches on one link: each takes roughly twice as long.
        let slowdown = contended[0].duration_s / alone[0].duration_s;
        assert!((1.6..2.4).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn late_arrivals_share_fairly_from_their_start() {
        let files = vec![500_000_000u64; 40];
        let reports = simulate_shared_link(&[batch(files.clone(), 0.0), batch(files, 15.0)], &link(), 0);
        // The early batch finishes first; the late one finishes after it.
        assert!(reports[0].finished_at_s < reports[1].finished_at_s);
        // The early batch still pays contention for the overlap window.
        let alone = simulate_shared_link(&[batch(vec![500_000_000u64; 40], 0.0)], &link(), 0);
        assert!(reports[0].duration_s > alone[0].duration_s);
    }

    #[test]
    fn empty_batches_are_fine() {
        let reports = simulate_shared_link(&[batch(vec![], 5.0), batch(vec![1_000_000], 0.0)], &link(), 0);
        assert_eq!(reports[0].bytes_total, 0);
        assert_eq!(reports[0].duration_s, 0.0);
        assert!(reports[1].duration_s > 0.0);
    }

    #[test]
    fn total_throughput_respects_the_link() {
        let files = vec![250_000_000u64; 40];
        let reports = simulate_shared_link(
            &[batch(files.clone(), 0.0), batch(files.clone(), 0.0), batch(files, 0.0)],
            &link(),
            1,
        );
        let total_bytes: u64 = reports.iter().map(|r| r.bytes_total).sum();
        let window = reports.iter().map(|r| r.finished_at_s).fold(0.0f64, f64::max);
        assert!(total_bytes as f64 / window <= 1.0e9 * 1.05, "aggregate {} B/s", total_bytes as f64 / window);
    }
}
