//! Transfer-fault injection: Globus's headline feature is *reliable*
//! third-party transfer — failed files are automatically retried. This
//! module models per-file failure/retry so pipelines can be evaluated under
//! flaky WAN conditions (an extension beyond the paper's evaluation, which
//! ran on healthy links).

use crate::gridftp::{simulate_transfer, GridFtpConfig, TransferReport};
use crate::link::LinkProfile;
use serde::{Deserialize, Serialize};

/// Failure/retry behaviour for a batch transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that any single file-transfer attempt fails.
    pub per_attempt_failure_prob: f64,
    /// Retries per file before it is abandoned (Globus retries by default).
    pub max_retries: u32,
    /// Control-channel reconnect cost paid per failed attempt, seconds.
    pub reconnect_s: f64,
}

impl FaultModel {
    /// A healthy link: nothing fails.
    pub fn none() -> Self {
        FaultModel { per_attempt_failure_prob: 0.0, max_retries: 0, reconnect_s: 0.0 }
    }

    /// A flaky WAN: attempts fail with probability `p`, up to 5 retries,
    /// 2 s reconnects.
    pub fn flaky(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "failure probability must be in [0,1)");
        FaultModel { per_attempt_failure_prob: p, max_retries: 5, reconnect_s: 2.0 }
    }

    /// Human-readable cause string for fault attribution (chunk-ledger
    /// `fault` events and forensics dumps).
    pub fn describe(&self) -> String {
        format!("wan fault (p={:.2}, reconnect {:.1}s)", self.per_attempt_failure_prob, self.reconnect_s)
    }
}

/// One item's deterministic fault outcome under a [`FaultModel`]: the
/// partial-payload fraction of every failed attempt, in attempt order, and
/// whether retries were exhausted.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDraw {
    /// Fraction of the payload the link moved before each failed attempt
    /// died (one entry per failure).
    pub failed_fracs: Vec<f64>,
    /// True when the final attempt also failed (item abandoned).
    pub abandoned: bool,
}

impl FaultDraw {
    /// Attempts made: failures plus the final try (successful or not).
    pub fn attempts(&self) -> u32 {
        self.failed_fracs.len() as u32 + u32::from(!self.abandoned)
    }
}

/// Draws item `index`'s fault schedule for `seed` — the same deterministic
/// draws [`simulate_transfer_with_faults`] makes, exposed so the streamed
/// orchestrator can inject identical per-chunk faults and the chunk ledger
/// can attribute them.
pub fn draw_faults(faults: &FaultModel, seed: u64, index: usize) -> FaultDraw {
    let mut failed_fracs = Vec::new();
    let mut attempt = 0u32;
    loop {
        let u = uniform01(seed ^ 0xFAB7, (index as u64) << 8 | attempt as u64);
        if u >= faults.per_attempt_failure_prob {
            return FaultDraw { failed_fracs, abandoned: false };
        }
        failed_fracs.push(uniform01(seed ^ 0xDEAD, (index as u64) << 8 | attempt as u64));
        if attempt >= faults.max_retries {
            return FaultDraw { failed_fracs, abandoned: true };
        }
        attempt += 1;
    }
}

/// Report of a transfer under fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyTransferReport {
    /// The underlying transfer report (duration includes retry work; bytes
    /// count only the *successful* payload).
    pub report: TransferReport,
    /// Total failed attempts across all files.
    pub retries: usize,
    /// Indices of files abandoned after exhausting retries.
    pub failed_files: Vec<usize>,
    /// Wasted bytes (partial transfers of failed attempts).
    pub wasted_bytes: u64,
    /// Attempts made per file (1 = first try succeeded; abandoned files
    /// show `max_retries + 1`). Lets callers audit exactly which files were
    /// flaky rather than only the aggregate retry count.
    pub attempts: Vec<u32>,
}

/// SplitMix64-derived uniform in `[0, 1)`.
fn uniform01(seed: u64, k: u64) -> f64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x5851_F42D_4C95_7F2D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Simulates a batch transfer with per-attempt failures and retries.
///
/// Each failed attempt wastes a deterministic fraction of the file's bytes
/// (the link moved them before the failure) plus the reconnect cost; the
/// wasted work is injected into the fluid simulation as extra pseudo-files,
/// so retries compete for the same bandwidth and handling capacity as real
/// traffic.
pub fn simulate_transfer_with_faults(
    files: &[u64],
    link: &LinkProfile,
    config: &GridFtpConfig,
    faults: &FaultModel,
    seed: u64,
) -> FaultyTransferReport {
    let mut work: Vec<u64> = Vec::with_capacity(files.len());
    let mut retries = 0usize;
    let mut failed_files = Vec::new();
    let mut wasted_bytes = 0u64;
    let mut reconnect_total = 0.0f64;
    let mut successful_bytes = 0u64;
    let mut attempts = Vec::with_capacity(files.len());

    for (i, &size) in files.iter().enumerate() {
        let draw = draw_faults(faults, seed, i);
        // Each failed attempt moved a deterministic partial payload first.
        for &frac in &draw.failed_fracs {
            let partial = (size as f64 * frac) as u64;
            work.push(partial);
            wasted_bytes += partial;
            reconnect_total += faults.reconnect_s;
            retries += 1;
        }
        if draw.abandoned {
            failed_files.push(i);
        } else {
            work.push(size);
            successful_bytes += size;
        }
        attempts.push(draw.attempts());
    }

    let mut report = simulate_transfer(&work, link, config, seed);
    // Reconnects serialize on the control channels, like command handling.
    report.duration_s += reconnect_total / config.concurrency as f64;
    report.bytes_total = successful_bytes;
    report.n_files = files.len() - failed_files.len();
    report.effective_speed_bps =
        if report.duration_s > 0.0 { successful_bytes as f64 / report.duration_s } else { 0.0 };
    let obs = ocelot_obs::global();
    obs.add("ocelot_netsim_fault_retries_total", "Failed transfer attempts retried", retries as u64);
    obs.add("ocelot_netsim_wasted_bytes_total", "Partial bytes moved by failed attempts", wasted_bytes);
    obs.add(
        "ocelot_netsim_abandoned_files_total",
        "Files abandoned after exhausting retries",
        failed_files.len() as u64,
    );
    FaultyTransferReport { report, retries, failed_files, wasted_bytes, attempts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkProfile {
        LinkProfile::new(1.0e9, 0.05, 0.02, 0.0)
    }

    #[test]
    fn no_faults_matches_plain_simulation() {
        let files = vec![50_000_000u64; 40];
        let cfg = GridFtpConfig::default();
        let plain = simulate_transfer(&files, &link(), &cfg, 3);
        let faulty = simulate_transfer_with_faults(&files, &link(), &cfg, &FaultModel::none(), 3);
        assert_eq!(faulty.report, plain);
        assert_eq!(faulty.retries, 0);
        assert!(faulty.failed_files.is_empty());
        assert!(faulty.attempts.iter().all(|&a| a == 1));
    }

    #[test]
    fn flakier_links_take_longer() {
        let files = vec![50_000_000u64; 60];
        let cfg = GridFtpConfig::default();
        let mild = simulate_transfer_with_faults(&files, &link(), &cfg, &FaultModel::flaky(0.05), 3);
        let harsh = simulate_transfer_with_faults(&files, &link(), &cfg, &FaultModel::flaky(0.4), 3);
        assert!(harsh.report.duration_s > mild.report.duration_s);
        assert!(harsh.retries > mild.retries);
        assert!(harsh.wasted_bytes > mild.wasted_bytes);
    }

    #[test]
    fn retries_eventually_deliver_everything_at_moderate_rates() {
        let files = vec![10_000_000u64; 100];
        let r = simulate_transfer_with_faults(&files, &link(), &GridFtpConfig::default(), &FaultModel::flaky(0.2), 9);
        // P(6 consecutive failures) = 0.2^6 = 6.4e-5: all 100 files land.
        assert!(r.failed_files.is_empty(), "failed {:?}", r.failed_files);
        assert_eq!(r.report.bytes_total, 100 * 10_000_000);
        // Per-file attempt counts reconcile with the aggregate retry count.
        assert_eq!(r.attempts.len(), files.len());
        let total_tries: usize = r.attempts.iter().map(|&a| a as usize).sum();
        assert_eq!(total_tries - files.len(), r.retries);
    }

    #[test]
    fn hopeless_links_abandon_files() {
        let files = vec![1_000_000u64; 50];
        let faults = FaultModel { per_attempt_failure_prob: 0.95, max_retries: 1, reconnect_s: 1.0 };
        let r = simulate_transfer_with_faults(&files, &link(), &GridFtpConfig::default(), &faults, 5);
        assert!(!r.failed_files.is_empty());
        assert!(r.report.n_files < 50);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let files = vec![20_000_000u64; 30];
        let f = FaultModel::flaky(0.3);
        let a = simulate_transfer_with_faults(&files, &link(), &GridFtpConfig::default(), &f, 11);
        let b = simulate_transfer_with_faults(&files, &link(), &GridFtpConfig::default(), &f, 11);
        assert_eq!(a, b);
        let c = simulate_transfer_with_faults(&files, &link(), &GridFtpConfig::default(), &f, 12);
        // Different seeds draw different failure patterns (durations differ
        // even when retry *counts* coincide).
        assert_ne!(a.report.duration_s, c.report.duration_s);
    }
}
