//! WAN link profiles.

use serde::{Deserialize, Serialize};

/// A directed wide-area network path between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Aggregate achievable bandwidth in bytes/second (all streams).
    pub bandwidth_bps: f64,
    /// Round-trip time in seconds (drives control-channel costs).
    pub rtt_s: f64,
    /// Serialized per-file handling cost in seconds (control channel command
    /// processing, checksums, directory operations) — the term that makes
    /// many small files slow (Table II).
    pub per_file_overhead_s: f64,
    /// Deterministic multiplicative throughput jitter amplitude (0 = none,
    /// 0.05 = ±5 %).
    pub jitter: f64,
}

impl LinkProfile {
    /// Creates a link profile.
    ///
    /// # Panics
    /// Panics if any parameter is negative or bandwidth is non-positive.
    pub fn new(bandwidth_bps: f64, rtt_s: f64, per_file_overhead_s: f64, jitter: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(rtt_s >= 0.0 && per_file_overhead_s >= 0.0 && (0.0..1.0).contains(&jitter), "invalid link parameters");
        LinkProfile { bandwidth_bps, rtt_s, per_file_overhead_s, jitter }
    }

    /// Deterministic jitter factor for the `k`-th file under `seed`
    /// (in `[1 − jitter, 1 + jitter]`).
    pub fn jitter_factor(&self, seed: u64, k: u64) -> f64 {
        if self.jitter == 0.0 {
            return 1.0;
        }
        // SplitMix64 keeps jitter independent of rand crate versions.
        let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = z as f64 / u64::MAX as f64; // [0, 1]
        1.0 + self.jitter * (2.0 * u - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let link = LinkProfile::new(1e9, 0.05, 0.03, 0.05);
        for k in 0..100 {
            let f = link.jitter_factor(42, k);
            assert!((0.95..=1.05).contains(&f), "factor {f}");
            assert_eq!(f, link.jitter_factor(42, k));
        }
        assert_ne!(link.jitter_factor(42, 0), link.jitter_factor(43, 0));
    }

    #[test]
    fn zero_jitter_is_identity() {
        let link = LinkProfile::new(1e9, 0.05, 0.03, 0.0);
        assert_eq!(link.jitter_factor(1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        LinkProfile::new(0.0, 0.0, 0.0, 0.0);
    }
}
