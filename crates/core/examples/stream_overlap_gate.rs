//! CI gate for the streaming chunk pipeline: runs the staged
//! compress-then-decompress round trip and the streamed (bounded-window,
//! decode-on-arrival) round trip with 4 codec threads, and fails when the
//! streamed path is slower than staged *beyond the measured noise floor*.
//! The verdict comes from [`ocelot::perf::diff_records`] — the same
//! noise-aware comparison the perf gate uses — with the staged samples as
//! the baseline record and the streamed samples as the candidate, so a
//! scheduler wobble on a busy runner does not fail CI while a real
//! regression (streaming slower than not streaming at all) does. Also
//! asserts the container bytes and restored values are identical, so the
//! speed never comes at the cost of reproducibility. Run with
//! `--release`; debug-build timings are too noisy to gate on.
//!
//! On runners with fewer than [`ocelot::perf::MIN_GATE_CORES`] cores the
//! compress and decode sides serialize onto the same core and overlap
//! cannot manifest, so the gate skips (matching `chunk_scaling_gate`'s
//! policy).
//!
//! The dataset defaults to ~128 MiB (`OCELOT_STREAM_GATE_MB` overrides) —
//! large enough that per-chunk codec work dwarfs channel and thread
//! startup, which is the regime where overlap pays.
//!
//! Each (non-skipped) run also appends its staged/streamed timings and
//! margin to the `BENCH_stream.json` perf trajectory via the
//! `ocelot::perf` record machinery, so the overlap win is tracked run
//! over run alongside the bench's records.
//!
//! ```text
//! cargo run --release -p ocelot --example stream_overlap_gate
//! ```

use ocelot::executor::ParallelExecutor;
use ocelot::perf::{diff_records, PerfRecord, ScenarioResult, MIN_GATE_CORES};
use ocelot_sz::{Dataset, LossyConfig};
use std::time::Instant;

/// Timed samples over `runs` calls (one untimed warm-up).
fn sample_secs<T>(runs: usize, mut f: impl FnMut() -> T) -> Vec<f64> {
    std::hint::black_box(f());
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// Appends the gate's measurements to the stream-overlap trajectory
/// (non-fatal: the gate's verdict never depends on bookkeeping I/O).
fn append_trajectory(staged: Vec<f64>, streamed: Vec<f64>, bytes: u64) {
    use ocelot::perf::append_record;
    use serde_json::Value;
    // CI runs this from the workspace root; `cargo bench` writes the same
    // trajectory from inside crates/bench.
    let path = if std::path::Path::new("crates/bench").is_dir() {
        std::path::Path::new("crates/bench/BENCH_stream.json")
    } else {
        std::path::Path::new("BENCH_stream.json")
    };
    let mut record = PerfRecord::new("stream_overlap_gate");
    let staged = ScenarioResult::from_samples("gate_staged_4t", staged, bytes);
    let streamed = ScenarioResult::from_samples("gate_streamed_w4_4t", streamed, bytes);
    let margin = if streamed.median_s > 0.0 { staged.median_s / streamed.median_s } else { 0.0 };
    record.meta = Value::Object(vec![
        ("dataset_bytes".to_string(), Value::UInt(bytes)),
        ("staged_over_streamed_w4_4t".to_string(), Value::Float(margin)),
    ]);
    record.scenarios.push(staged);
    record.scenarios.push(streamed);
    match append_record(path, "stream_overlap", record) {
        Ok(traj) => println!("appended gate record #{} to {}", traj.records.len(), path.display()),
        Err(e) => eprintln!("could not append to {}: {e}", path.display()),
    }
}

/// Smooth + oscillatory mix sized to ~`mb` MiB of `f32`.
fn field(mb: usize) -> Dataset<f32> {
    let points = mb.max(1) * (1 << 20) / 4;
    let side = (points as f64).cbrt().round() as usize;
    Dataset::from_fn(vec![side, side, side], |i| {
        let (x, y, z) = (i[0] as f32, i[1] as f32, i[2] as f32);
        (x * 0.031).sin() * (y * 0.017).cos() + (z * 0.011).sin() * 0.5 + (x + y + z) * 1e-4
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores < MIN_GATE_CORES {
        println!("only {cores} core(s) available — stream overlap cannot manifest, skipping gate");
        return Ok(());
    }
    let mb = std::env::var("OCELOT_STREAM_GATE_MB").ok().and_then(|s| s.parse().ok()).unwrap_or(128);
    let data = field(mb);
    // Pinned chunk layout: same container bytes at any thread count.
    let cfg = LossyConfig::sz3(1e-3).with_chunk_points(Some(data.len() / 16 + 1));
    let ex = ParallelExecutor::new(1).with_codec_threads(4);

    let staged_rt = ex.stream_round_trip(&data, &cfg, 0)?;
    let streamed_rt = ex.stream_round_trip(&data, &cfg, 4)?;
    if staged_rt.outcome.blob != streamed_rt.outcome.blob {
        return Err("streamed container bytes differ from staged".into());
    }
    if staged_rt.restored.values() != streamed_rt.restored.values() {
        return Err("streamed restored data differs from staged".into());
    }

    let bytes = data.nbytes() as u64;
    let staged_samples = sample_secs(3, || ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip"));
    let streamed_samples = sample_secs(3, || ex.stream_round_trip(&data, &cfg, 4).expect("streamed round trip"));

    // Noise-aware verdict: both runs land in records under the same
    // scenario name, staged as baseline and streamed as candidate, so
    // `diff_records` flags the streamed side only when it is slower by
    // more than NOISE_SIGMA × the combined sample spread. Zero relative
    // threshold: the requirement is "streamed ≤ staged", with the noise
    // floor as the only slack.
    let mut baseline = PerfRecord::new("gate_staged");
    baseline.scenarios.push(ScenarioResult::from_samples("stream_round_trip_4t", staged_samples.clone(), bytes));
    let mut candidate = PerfRecord::new("gate_streamed_w4");
    candidate.scenarios.push(ScenarioResult::from_samples("stream_round_trip_4t", streamed_samples.clone(), bytes));
    let staged_med = baseline.scenarios[0].median_s;
    let streamed_med = candidate.scenarios[0].median_s;
    println!(
        "round trip over {:.0} MiB: staged {staged_med:.3}s ±{:.3}, streamed (window 4) {streamed_med:.3}s ±{:.3} ({:.2}x)",
        bytes as f64 / (1 << 20) as f64,
        baseline.scenarios[0].mad_s,
        candidate.scenarios[0].mad_s,
        staged_med / streamed_med
    );
    append_trajectory(staged_samples, streamed_samples, bytes);

    let report = diff_records(&baseline, &candidate, 0.0);
    if !report.regressions().is_empty() {
        let d = &report.scenarios[0];
        return Err(format!(
            "streamed round trip ({:.3}s) slower than staged ({:.3}s) beyond the noise floor ({:+.1}%)",
            d.new_median_s,
            d.old_median_s,
            d.delta_ratio * 100.0
        )
        .into());
    }
    Ok(())
}
