//! CI gate for the streaming chunk pipeline: runs the staged
//! compress-then-decompress round trip and the streamed (bounded-window,
//! decode-on-arrival) round trip with 4 codec threads, and exits nonzero
//! if streaming is slower than staging — the whole point of shipping
//! chunks early is to win wall-clock. Also asserts the container bytes are
//! identical, so the speed never comes at the cost of reproducibility.
//! Run with `--release`; debug-build timings are too noisy to gate on.
//!
//! On runners with fewer than 4 cores the compress and decode sides
//! serialize onto the same core and overlap cannot manifest, so the gate
//! skips (matching `chunk_scaling_gate`'s policy).
//!
//! ```text
//! cargo run --release -p ocelot --example stream_overlap_gate
//! ```

use ocelot::executor::ParallelExecutor;
use ocelot_sz::{Dataset, LossyConfig};
use std::time::Instant;

fn field() -> Dataset<f32> {
    // Smooth + oscillatory mix, large enough (~64 MB) that per-chunk work
    // dwarfs thread and channel startup.
    Dataset::from_fn(vec![256, 256, 256], |i| {
        let (x, y, z) = (i[0] as f32, i[1] as f32, i[2] as f32);
        (x * 0.031).sin() * (y * 0.017).cos() + (z * 0.011).sin() * 0.5 + (x + y + z) * 1e-4
    })
}

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores < 4 {
        println!("only {cores} core(s) available — stream overlap cannot manifest, skipping gate");
        return Ok(());
    }
    let data = field();
    // Pinned chunk layout: same container bytes at any thread count.
    let cfg = LossyConfig::sz3(1e-3).with_chunk_points(Some(data.len() / 16 + 1));
    let ex = ParallelExecutor::new(1).with_codec_threads(4);

    let staged_rt = ex.stream_round_trip(&data, &cfg, 0)?;
    let streamed_rt = ex.stream_round_trip(&data, &cfg, 4)?;
    if staged_rt.outcome.blob != streamed_rt.outcome.blob {
        return Err("streamed container bytes differ from staged".into());
    }
    if staged_rt.restored.values() != streamed_rt.restored.values() {
        return Err("streamed restored data differs from staged".into());
    }

    let staged = best_of(3, || ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip"));
    let streamed = best_of(3, || ex.stream_round_trip(&data, &cfg, 4).expect("streamed round trip"));
    println!("round trip: staged {staged:.3}s, streamed (window 4) {streamed:.3}s ({:.2}x)", staged / streamed);

    if streamed >= staged {
        return Err(format!("streamed round trip ({streamed:.3}s) not faster than staged ({staged:.3}s)").into());
    }
    Ok(())
}
