//! CI gate for the streaming chunk pipeline: runs the staged
//! compress-then-decompress round trip and the streamed (bounded-window,
//! decode-on-arrival) round trip with 4 codec threads, and exits nonzero
//! if streaming is slower than staging — the whole point of shipping
//! chunks early is to win wall-clock. Also asserts the container bytes are
//! identical, so the speed never comes at the cost of reproducibility.
//! Run with `--release`; debug-build timings are too noisy to gate on.
//!
//! On runners with fewer than 4 cores the compress and decode sides
//! serialize onto the same core and overlap cannot manifest, so the gate
//! skips (matching `chunk_scaling_gate`'s policy).
//!
//! Each (non-skipped) run also appends its staged/streamed timings and
//! margin to the `BENCH_stream.json` perf trajectory via the
//! `ocelot::perf` record machinery, so the overlap win is tracked run
//! over run alongside the bench's records.
//!
//! ```text
//! cargo run --release -p ocelot --example stream_overlap_gate
//! ```

use ocelot::executor::ParallelExecutor;
use ocelot_sz::{Dataset, LossyConfig};
use std::time::Instant;

/// Timed samples over `runs` calls.
fn sample_secs<T>(runs: usize, mut f: impl FnMut() -> T) -> Vec<f64> {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// Appends the gate's measurements to the stream-overlap trajectory
/// (non-fatal: the gate's verdict never depends on bookkeeping I/O).
fn append_trajectory(staged: Vec<f64>, streamed: Vec<f64>, bytes: u64) {
    use ocelot::perf::{append_record, PerfRecord, ScenarioResult};
    use serde_json::Value;
    // CI runs this from the workspace root; `cargo bench` writes the same
    // trajectory from inside crates/bench.
    let path = if std::path::Path::new("crates/bench").is_dir() {
        std::path::Path::new("crates/bench/BENCH_stream.json")
    } else {
        std::path::Path::new("BENCH_stream.json")
    };
    let mut record = PerfRecord::new("stream_overlap_gate");
    let staged = ScenarioResult::from_samples("gate_staged_4t", staged, bytes);
    let streamed = ScenarioResult::from_samples("gate_streamed_w4_4t", streamed, bytes);
    let margin = if streamed.median_s > 0.0 { staged.median_s / streamed.median_s } else { 0.0 };
    record.meta = Value::Object(vec![
        ("dataset_bytes".to_string(), Value::UInt(bytes)),
        ("staged_over_streamed_w4_4t".to_string(), Value::Float(margin)),
    ]);
    record.scenarios.push(staged);
    record.scenarios.push(streamed);
    match append_record(path, "stream_overlap", record) {
        Ok(traj) => println!("appended gate record #{} to {}", traj.records.len(), path.display()),
        Err(e) => eprintln!("could not append to {}: {e}", path.display()),
    }
}

fn field() -> Dataset<f32> {
    // Smooth + oscillatory mix, large enough (~64 MB) that per-chunk work
    // dwarfs thread and channel startup.
    Dataset::from_fn(vec![256, 256, 256], |i| {
        let (x, y, z) = (i[0] as f32, i[1] as f32, i[2] as f32);
        (x * 0.031).sin() * (y * 0.017).cos() + (z * 0.011).sin() * 0.5 + (x + y + z) * 1e-4
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores < 4 {
        println!("only {cores} core(s) available — stream overlap cannot manifest, skipping gate");
        return Ok(());
    }
    let data = field();
    // Pinned chunk layout: same container bytes at any thread count.
    let cfg = LossyConfig::sz3(1e-3).with_chunk_points(Some(data.len() / 16 + 1));
    let ex = ParallelExecutor::new(1).with_codec_threads(4);

    let staged_rt = ex.stream_round_trip(&data, &cfg, 0)?;
    let streamed_rt = ex.stream_round_trip(&data, &cfg, 4)?;
    if staged_rt.outcome.blob != streamed_rt.outcome.blob {
        return Err("streamed container bytes differ from staged".into());
    }
    if staged_rt.restored.values() != streamed_rt.restored.values() {
        return Err("streamed restored data differs from staged".into());
    }

    let staged_samples = sample_secs(3, || ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip"));
    let streamed_samples = sample_secs(3, || ex.stream_round_trip(&data, &cfg, 4).expect("streamed round trip"));
    // Gate on best-of (least scheduler noise); record the full samples.
    let staged = staged_samples.iter().copied().fold(f64::INFINITY, f64::min);
    let streamed = streamed_samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!("round trip: staged {staged:.3}s, streamed (window 4) {streamed:.3}s ({:.2}x)", staged / streamed);
    append_trajectory(staged_samples, streamed_samples, data.nbytes() as u64);

    if streamed >= staged {
        return Err(format!("streamed round trip ({streamed:.3}s) not faster than staged ({staged:.3}s)").into());
    }
    Ok(())
}
