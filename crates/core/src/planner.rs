//! Transfer planning: choose the grouping and decompression parallelism
//! that minimize end-to-end time for a given workload and route.
//!
//! The paper sets these by rule of thumb ("group by world_size", "use fewer
//! cores for decompression"); the planner searches the simulated pipeline
//! instead, using the same models the orchestrator runs.

use ocelot_netsim::{simulate_transfer, GridFtpConfig, SiteId};
use ocelot_sz::{Codec, CodecConfig, Dataset, ScalarValue, SzError};

use crate::grouping::plan_groups_by_count;
use crate::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use crate::report::TimeBreakdown;
use crate::workload::Workload;

/// A codec candidate ranked by [`select_codec`].
#[derive(Debug, Clone, PartialEq)]
pub struct CodecChoice {
    /// The winning configuration (pass its `codec()` to compress).
    pub config: CodecConfig,
    /// Estimated compression ratio from sampled encoding.
    pub estimated_ratio: f64,
}

/// Ranks codec candidates on a representative dataset by sampled-encoding
/// ratio estimates and returns the best one.
///
/// Every candidate — prediction-based or transform-based — goes through the
/// same [`Codec`] trait calls; there is no per-codec branching here, which is
/// the point of the unified configuration enum.
///
/// # Errors
/// Returns [`SzError::InvalidConfig`] when `candidates` is empty, and
/// propagates estimation failures.
pub fn select_codec<T: ScalarValue>(
    sample: &Dataset<T>,
    candidates: &[CodecConfig],
    stride: usize,
) -> Result<CodecChoice, SzError> {
    let mut best: Option<CodecChoice> = None;
    for &config in candidates {
        let estimated_ratio = config.codec().estimate_ratio_sampled(sample, &config, stride)?;
        if best.as_ref().is_none_or(|b| estimated_ratio > b.estimated_ratio) {
            best = Some(CodecChoice { config, estimated_ratio });
        }
    }
    best.ok_or_else(|| SzError::InvalidConfig("no codec candidates supplied".into()))
}

/// A tuned transfer plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPlan {
    /// Chosen strategy (grouped with the optimal group count, or plain
    /// compressed when grouping does not pay).
    pub strategy: Strategy,
    /// Chosen decompression cores per node.
    pub decompress_cores_per_node: usize,
    /// Expected phase breakdown under the plan.
    pub expected: TimeBreakdown,
}

/// Plans transfers over a topology.
#[derive(Debug, Clone)]
pub struct TransferPlanner {
    orchestrator: Orchestrator,
}

impl TransferPlanner {
    /// Creates a planner over the paper testbed.
    pub fn paper() -> Self {
        TransferPlanner { orchestrator: Orchestrator::paper() }
    }

    /// Creates a planner over an existing orchestrator.
    pub fn new(orchestrator: Orchestrator) -> Self {
        TransferPlanner { orchestrator }
    }

    /// Finds the group count minimizing the simulated transfer time of the
    /// workload's compressed files over the route's link (powers of two up
    /// to the file count, plus the ungrouped option).
    pub fn optimal_group_count(
        &self,
        workload: &Workload,
        from: SiteId,
        to: SiteId,
        gridftp: &GridFtpConfig,
    ) -> Option<usize> {
        let link = self.orchestrator.topology().route(from, to).link;
        let comp_sizes = workload.compressed_sizes();
        let ungrouped = simulate_transfer(&comp_sizes, &link, gridftp, 0).duration_s;
        let mut best: Option<(usize, f64)> = None;
        let mut groups = 1usize;
        while groups <= comp_sizes.len() {
            let plan = plan_groups_by_count(comp_sizes.len(), groups);
            let grouped: Vec<u64> = plan.iter().map(|g| g.iter().map(|&i| comp_sizes[i]).sum()).collect();
            let t = simulate_transfer(&grouped, &link, gridftp, 0).duration_s;
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((groups, t));
            }
            groups *= 2;
        }
        match best {
            Some((g, t)) if t < ungrouped => Some(g),
            _ => None, // grouping does not pay on this route
        }
    }

    /// Chooses decompression cores per node: the per-node writer count that
    /// minimizes the destination write time for the restored bytes, capped
    /// by the node's cores.
    pub fn optimal_decompress_cores(&self, workload: &Workload, to: SiteId, nodes: usize) -> usize {
        let dst = self.orchestrator.topology().site(to);
        let max_writers = nodes * dst.cores_per_node;
        let writers = dst.fs.optimal_writers(workload.total_bytes(), max_writers);
        (writers / nodes.max(1)).clamp(1, dst.cores_per_node)
    }

    /// Produces a full tuned plan and its expected breakdown.
    ///
    /// Candidates are evaluated end to end (grouping overhead, transfer,
    /// and decompression all interact), so the plan minimizes *total* time,
    /// not any single phase.
    pub fn plan(&self, workload: &Workload, from: SiteId, to: SiteId, base: &PipelineOptions) -> TransferPlan {
        let dst = self.orchestrator.topology().site(to);
        let mut strategies = vec![Strategy::Compressed];
        if let Some(groups) = self.optimal_group_count(workload, from, to, &base.gridftp) {
            strategies.push(Strategy::grouped_by_count(groups));
        }
        let fs_cores = self.optimal_decompress_cores(workload, to, base.decompress_nodes);
        let mut core_options = vec![fs_cores, dst.cores_per_node, dst.cores_per_node.div_ceil(2)];
        if let Some(c) = base.decompress_cores_per_node {
            core_options.push(c.min(dst.cores_per_node));
        }
        core_options.sort_unstable();
        core_options.dedup();

        let mut best: Option<TransferPlan> = None;
        for &strategy in &strategies {
            for &dcores in &core_options {
                let opts = PipelineOptions { decompress_cores_per_node: Some(dcores), ..*base };
                let expected = self.orchestrator.run(workload, from, to, strategy, &opts);
                if best.as_ref().is_none_or(|b| expected.total_s() < b.expected.total_s()) {
                    best = Some(TransferPlan { strategy, decompress_cores_per_node: dcores, expected });
                }
            }
        }
        best.expect("at least one candidate evaluated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::LossyConfig;

    fn miranda() -> Workload {
        Workload::miranda(LossyConfig::sz3(1e-3), 24).expect("workload")
    }

    #[test]
    fn planned_transfer_is_no_worse_than_defaults() {
        let planner = TransferPlanner::paper();
        let w = miranda();
        let base = PipelineOptions::default();
        let plan = planner.plan(&w, SiteId::Anvil, SiteId::Cori, &base);
        let default_run = planner.orchestrator.run(&w, SiteId::Anvil, SiteId::Cori, Strategy::Compressed, &base);
        assert!(
            plan.expected.total_s() <= default_run.total_s() * 1.02,
            "planned {} vs default {}",
            plan.expected.total_s(),
            default_run.total_s()
        );
    }

    #[test]
    fn group_count_avoids_both_extremes_on_the_fast_route() {
        let planner = TransferPlanner::paper();
        let w = miranda();
        if let Some(groups) = planner.optimal_group_count(&w, SiteId::Anvil, SiteId::Cori, &GridFtpConfig::default()) {
            assert!(groups > 8, "too few groups cannot fill the fast link: {groups}");
            assert!(groups <= w.file_count());
        }
    }

    #[test]
    fn decompress_cores_respect_node_limits() {
        let planner = TransferPlanner::paper();
        let w = miranda();
        for nodes in [1usize, 8, 64] {
            let cores = planner.optimal_decompress_cores(&w, SiteId::Cori, nodes);
            assert!((1..=32).contains(&cores), "nodes {nodes}: cores {cores}");
        }
    }

    #[test]
    fn select_codec_ranks_both_families_uniformly() {
        let data = Dataset::from_fn(vec![48, 48], |i| ((i[0] + 2 * i[1]) as f32 * 0.04).sin());
        let candidates = [CodecConfig::Sz(ocelot_sz::LossyConfig::sz3_abs(1e-3)), CodecConfig::zfp_abs(1e-3)];
        let choice = select_codec(&data, &candidates, 4).unwrap();
        assert!(choice.estimated_ratio > 1.0);
        assert!(candidates.contains(&choice.config));
        // The winner really compresses better than (or as well as) the loser.
        let ratios: Vec<f64> = candidates.iter().map(|c| c.codec().compress(&data, c).unwrap().ratio).collect();
        let winner_idx = candidates.iter().position(|c| *c == choice.config).unwrap();
        assert!(
            ratios[winner_idx] >= ratios[1 - winner_idx] * 0.8,
            "sampled estimate picked a much worse codec: {ratios:?}"
        );
        assert!(select_codec::<f32>(&data, &[], 4).is_err());
    }

    #[test]
    fn plan_is_deterministic() {
        let planner = TransferPlanner::paper();
        let w = miranda();
        let base = PipelineOptions::default();
        let a = planner.plan(&w, SiteId::Bebop, SiteId::Cori, &base);
        let b = planner.plan(&w, SiteId::Bebop, SiteId::Cori, &base);
        assert_eq!(a, b);
    }
}
