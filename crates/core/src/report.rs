//! Experiment records: time breakdowns and serializable result rows.

use serde::{Deserialize, Serialize};

/// Phase-by-phase timing of one end-to-end transfer (Table VIII columns).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Batch-queue waiting before compression nodes were granted.
    pub queue_wait_s: f64,
    /// Parallel compression (including source-side I/O), `CPTime`.
    pub compression_s: f64,
    /// File-grouping overhead (zero when grouping is off).
    pub grouping_s: f64,
    /// WAN transfer time `T`.
    pub transfer_s: f64,
    /// Parallel decompression (including destination-side I/O), `DPTime`.
    pub decompression_s: f64,
    /// Bytes that crossed the WAN.
    pub bytes_transferred: u64,
    /// Number of files that crossed the WAN.
    pub files_transferred: usize,
}

impl TimeBreakdown {
    /// Total end-to-end time (the paper's `Total T`).
    pub fn total_s(&self) -> f64 {
        self.queue_wait_s + self.compression_s + self.grouping_s + self.transfer_s + self.decompression_s
    }

    /// Effective WAN speed in bytes/second.
    pub fn effective_speed_bps(&self) -> f64 {
        if self.transfer_s > 0.0 {
            self.bytes_transferred as f64 / self.transfer_s
        } else {
            0.0
        }
    }

    /// The paper's `Reduced` column: `(T(NP) − Total T) / T(NP)`.
    pub fn reduction_vs(&self, baseline_total_s: f64) -> f64 {
        if baseline_total_s > 0.0 {
            (baseline_total_s - self.total_s()) / baseline_total_s
        } else {
            0.0
        }
    }
}

/// One serializable experiment result row (written to `EXPERIMENTS.md`
/// artifacts and consumed by analysis tooling).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id (e.g. `"table8"`, `"fig9"`).
    pub experiment: String,
    /// Arbitrary row payload.
    pub data: serde_json::Value,
}

impl ExperimentRecord {
    /// Creates a record from any serializable row.
    ///
    /// # Panics
    /// Panics if `row` fails to serialize (programming error: rows are plain
    /// data structures).
    pub fn new(experiment: impl Into<String>, row: &impl Serialize) -> Self {
        ExperimentRecord {
            experiment: experiment.into(),
            data: serde_json::to_value(row).expect("experiment rows serialize"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_phases() {
        let b = TimeBreakdown {
            queue_wait_s: 1.0,
            compression_s: 2.0,
            grouping_s: 0.5,
            transfer_s: 3.0,
            decompression_s: 1.5,
            bytes_transferred: 100,
            files_transferred: 2,
        };
        assert!((b.total_s() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_matches_paper_definition() {
        let b = TimeBreakdown { transfer_s: 40.0, ..Default::default() };
        assert!((b.reduction_vs(100.0) - 0.6).abs() < 1e-12);
        assert_eq!(b.reduction_vs(0.0), 0.0);
    }

    #[test]
    fn effective_speed() {
        let b = TimeBreakdown { transfer_s: 2.0, bytes_transferred: 10, ..Default::default() };
        assert_eq!(b.effective_speed_bps(), 5.0);
        let z = TimeBreakdown::default();
        assert_eq!(z.effective_speed_bps(), 0.0);
    }

    #[test]
    fn record_round_trips() {
        let b = TimeBreakdown { transfer_s: 1.0, ..Default::default() };
        let r = ExperimentRecord::new("table8", &b);
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.experiment, "table8");
    }
}
