//! Parallel (de)compression executor — the worker the paper runs as an MPI
//! program on compute nodes. Here it is a thread pool over crossbeam scoped
//! threads: each worker repeatedly claims the next file and compresses or
//! decompresses it with the real codec.

use ocelot_sz::format::{BlobHeader, ChunkEntry};
use ocelot_sz::{
    compress, compress_streamed, decode_chunk, decompress_with_threads, CompressedBlob, CompressionOutcome, Dataset,
    HuffmanTable, LossyConfig, SzError,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One compressed chunk crossing the in-process "transfer lane" between the
/// compress workers and the decode drainer. Job-wide metadata (header, chunk
/// shape, shared Huffman table) is `Arc`-shared across messages — the only
/// per-chunk copy is the payload itself, the bytes that would really cross a
/// network.
struct ChunkMsg {
    index: usize,
    header: Arc<BlobHeader>,
    dims: Arc<Vec<usize>>,
    entry: ChunkEntry,
    payload: Vec<u8>,
    shared: Arc<Option<HuffmanTable>>,
}

/// Result of a streamed compress → ship → decode round trip for one file.
#[derive(Debug, Clone)]
pub struct StreamedRoundTrip {
    /// The compression outcome — blob and stats are byte-identical to the
    /// staged path at any window or thread count.
    pub outcome: CompressionOutcome,
    /// The dataset reconstructed chunk-by-chunk as chunks arrived.
    pub restored: Dataset<f32>,
    /// Number of chunks that crossed the stream.
    pub chunks_shipped: usize,
}

/// A fixed-size pool of compression workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExecutor {
    threads: usize,
    codec_threads: usize,
}

impl ParallelExecutor {
    /// Creates an executor with `threads` workers, each compressing one file
    /// at a time on a single codec thread.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread");
        ParallelExecutor { threads, codec_threads: 1 }
    }

    /// Sets how many chunk-parallel codec threads each file-level worker
    /// drives (total concurrency is `threads × codec_threads`). This is the
    /// knob the orchestrator's simulated `codec_threads` option mirrors, so
    /// simulated lane counts and real wall-clock compression threads agree.
    ///
    /// # Panics
    /// Panics if `codec_threads == 0`.
    pub fn with_codec_threads(mut self, codec_threads: usize) -> Self {
        assert!(codec_threads > 0, "at least one codec thread");
        self.codec_threads = codec_threads;
        self
    }

    /// Number of file-level worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunk-parallel codec threads per file.
    pub fn codec_threads(&self) -> usize {
        self.codec_threads
    }

    /// Compresses every dataset, preserving order. Each file is handled by
    /// exactly one worker (the paper's per-core file assignment).
    ///
    /// # Errors
    /// Returns the first compression error encountered (remaining work is
    /// abandoned).
    pub fn compress_all(&self, files: &[Dataset<f32>], config: &LossyConfig) -> Result<Vec<CompressedBlob>, SzError> {
        Ok(self.compress_all_with_stats(files, config)?.into_iter().map(|o| o.blob).collect())
    }

    /// Compresses every dataset, returning full outcomes (ratios, bin
    /// statistics) in input order.
    ///
    /// # Errors
    /// Returns the first compression error encountered.
    pub fn compress_all_with_stats(
        &self,
        files: &[Dataset<f32>],
        config: &LossyConfig,
    ) -> Result<Vec<CompressionOutcome>, SzError> {
        let config = config.with_threads(self.codec_threads);
        self.run(files.len(), |i| compress(&files[i], &config))
    }

    /// Decompresses every blob, preserving order. Each blob's chunks are
    /// decoded on the executor's codec threads.
    ///
    /// # Errors
    /// Returns the first decompression error encountered.
    pub fn decompress_all(&self, blobs: &[CompressedBlob]) -> Result<Vec<Dataset<f32>>, SzError> {
        self.run(blobs.len(), |i| decompress_with_threads::<f32>(&blobs[i], self.codec_threads))
    }

    /// Streamed compress → ship → decode round trip for one dataset: chunks
    /// enter a bounded in-process lane (capacity `window`) as soon as they are
    /// encoded, and a drainer thread decodes each on arrival — the real-thread
    /// analogue of the orchestrator's simulated compress/transfer overlap. At
    /// most O(window) chunks are in flight between the codec and the drainer.
    ///
    /// `window == 0` is the staged degenerate case: full compress, then full
    /// decompress, no overlap. Either way the blob and outcome are
    /// byte-identical to [`compress`] and the restored dataset matches
    /// [`decompress_with_threads`].
    ///
    /// # Errors
    /// Returns the first codec error from either side of the stream.
    pub fn stream_round_trip(
        &self,
        data: &Dataset<f32>,
        config: &LossyConfig,
        window: usize,
    ) -> Result<StreamedRoundTrip, SzError> {
        let config = config.with_threads(self.codec_threads);
        if window == 0 {
            let outcome = compress(data, &config)?;
            let restored = decompress_with_threads::<f32>(&outcome.blob, self.codec_threads)?;
            let chunks_shipped = outcome.chunks;
            return Ok(StreamedRoundTrip { outcome, restored, chunks_shipped });
        }
        let (tx, rx) = std::sync::mpsc::sync_channel::<ChunkMsg>(window);
        let dims = data.dims().to_vec();
        let mut drain_result: Result<(Vec<f32>, usize), SzError> = Ok((Vec::new(), 0));
        let mut outcome_result: Result<CompressionOutcome, SzError> =
            Err(SzError::CorruptStream("stream never ran".into()));
        crossbeam::thread::scope(|scope| {
            let drainer = scope.spawn(move |_| {
                let mut values = Vec::with_capacity(dims.iter().product());
                let mut shipped = 0usize;
                // Chunks arrive in index order (the engine's reorder buffer
                // guarantees it), so appending reassembles the dataset.
                while let Ok(msg) = rx.recv() {
                    // Per-chunk profiling scope: decode-on-arrival kernels
                    // drain from this thread's accumulator chunk by chunk.
                    let _pscope = ocelot_obs::prof::scope(ocelot_obs::prof::ScopeId::DECOMPRESS);
                    let arrived = ocelot_obs::ledger::emit(
                        ocelot_obs::ledger::EventKind::Arrived,
                        ocelot_obs::ledger::Draft {
                            chunk: Some(msg.index as u32),
                            bytes: msg.payload.len() as u64,
                            ..ocelot_obs::ledger::Draft::default()
                        },
                    );
                    let decoded = decode_chunk::<f32>(
                        &msg.header,
                        &msg.dims,
                        msg.index,
                        &msg.entry,
                        &msg.payload,
                        msg.shared.as_ref().as_ref(),
                    )?;
                    ocelot_obs::ledger::emit(
                        ocelot_obs::ledger::EventKind::DecodeEnd,
                        ocelot_obs::ledger::Draft {
                            parent: arrived,
                            chunk: Some(msg.index as u32),
                            ..ocelot_obs::ledger::Draft::default()
                        },
                    );
                    values.extend_from_slice(&decoded);
                    shipped += 1;
                }
                Ok((values, shipped))
            });
            // Job-wide metadata is identical for every chunk: build the Arcs
            // on the first chunk and share them across messages.
            let mut job: Option<(Arc<BlobHeader>, Arc<Option<HuffmanTable>>)> = None;
            let mut dims_cache: Vec<Arc<Vec<usize>>> = Vec::new();
            outcome_result = compress_streamed(data, &config, window, |chunk| {
                if job.is_none() {
                    let shared = if chunk.shared_table.is_empty() {
                        None
                    } else {
                        Some(HuffmanTable::deserialize(chunk.shared_table)?)
                    };
                    job = Some((Arc::new(chunk.header.clone()), Arc::new(shared)));
                }
                let (header, shared) = job.as_ref().expect("job metadata initialized above");
                let dims = match dims_cache.iter().find(|d| d.as_slice() == chunk.dims) {
                    Some(d) => Arc::clone(d),
                    None => {
                        let d = Arc::new(chunk.dims.to_vec());
                        dims_cache.push(Arc::clone(&d));
                        d
                    }
                };
                let msg = ChunkMsg {
                    index: chunk.index,
                    header: Arc::clone(header),
                    dims,
                    entry: chunk.entry,
                    payload: chunk.payload.to_vec(),
                    shared: Arc::clone(shared),
                };
                tx.send(msg).map_err(|_| SzError::CorruptStream("stream drainer hung up".into()))
            });
            drop(tx);
            drain_result = drainer.join().expect("drainer does not panic");
        })
        .expect("stream threads do not panic");
        // A drainer decode error causes the sink send to fail; prefer the
        // root-cause decode error over the secondary hang-up error.
        let (values, chunks_shipped) = drain_result?;
        let outcome = outcome_result?;
        let restored = Dataset::new(data.dims().to_vec(), values)?;
        Ok(StreamedRoundTrip { outcome, restored, chunks_shipped })
    }

    /// Generic indexed parallel map with first-error propagation.
    fn run<R, F>(&self, n: usize, work: F) -> Result<Vec<R>, SzError>
    where
        R: Send,
        F: Fn(usize) -> Result<R, SzError> + Sync,
    {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        let failure: Mutex<Option<SzError>> = Mutex::new(None);
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.threads.min(n.max(1)) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n || failure.lock().is_some() {
                        return;
                    }
                    match work(i) {
                        Ok(r) => results.lock()[i] = Some(r),
                        Err(e) => {
                            let mut f = failure.lock();
                            if f.is_none() {
                                *f = Some(e);
                            }
                            return;
                        }
                    }
                });
            }
        })
        .expect("worker threads do not panic");
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        Ok(results.into_inner().into_iter().map(|r| r.expect("all indices completed without error")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::metrics;

    fn files(n: usize) -> Vec<Dataset<f32>> {
        (0..n)
            .map(|k| Dataset::from_fn(vec![24, 24], move |i| ((i[0] + k) as f32 * 0.2).sin() + i[1] as f32 * 0.01))
            .collect()
    }

    #[test]
    fn parallel_round_trip_preserves_order_and_bounds() {
        let data = files(17);
        let ex = ParallelExecutor::new(4);
        let cfg = LossyConfig::sz3_abs(1e-3);
        let blobs = ex.compress_all(&data, &cfg).unwrap();
        assert_eq!(blobs.len(), 17);
        let back = ex.decompress_all(&blobs).unwrap();
        for (orig, rec) in data.iter().zip(&back) {
            let q = metrics::compare(orig, rec).unwrap();
            assert!(q.within_bound(1e-3), "max={}", q.max_abs_error);
        }
    }

    #[test]
    fn results_match_serial_execution() {
        let data = files(9);
        let cfg = LossyConfig::sz3(1e-3);
        let parallel = ParallelExecutor::new(3).compress_all(&data, &cfg).unwrap();
        let serial = ParallelExecutor::new(1).compress_all(&data, &cfg).unwrap();
        assert_eq!(parallel, serial, "compression must be deterministic regardless of thread count");
    }

    #[test]
    fn codec_threads_round_trip_and_stay_deterministic() {
        let data = files(6);
        // Pinning chunk_points keeps the chunk layout — and therefore the
        // blobs — identical whatever the codec thread count.
        let cfg = LossyConfig::sz3_abs(1e-3).with_chunk_points(Some(128));
        let serial = ParallelExecutor::new(2).compress_all(&data, &cfg).unwrap();
        let chunked = ParallelExecutor::new(2).with_codec_threads(4).compress_all(&data, &cfg).unwrap();
        assert_eq!(serial, chunked, "pinned chunk layout makes blobs thread-count independent");
        let ex = ParallelExecutor::new(2).with_codec_threads(4);
        assert_eq!(ex.codec_threads(), 4);
        let back = ex.decompress_all(&chunked).unwrap();
        for (orig, rec) in data.iter().zip(&back) {
            assert!(metrics::compare(orig, rec).unwrap().within_bound(1e-3));
        }
    }

    #[test]
    fn errors_propagate() {
        let data = files(4);
        let bad = LossyConfig::sz3_abs(0.0); // invalid bound
        assert!(ParallelExecutor::new(2).compress_all(&data, &bad).is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        let ex = ParallelExecutor::new(8);
        assert!(ex.compress_all(&[], &LossyConfig::sz3(1e-3)).unwrap().is_empty());
        assert!(ex.decompress_all(&[]).unwrap().is_empty());
    }

    #[test]
    fn more_threads_than_files() {
        let data = files(2);
        let blobs = ParallelExecutor::new(16).compress_all(&data, &LossyConfig::sz3(1e-2)).unwrap();
        assert_eq!(blobs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        ParallelExecutor::new(0);
    }

    #[test]
    fn streamed_round_trip_matches_staged_at_every_window() {
        let data = Dataset::from_fn(vec![48, 48], |i| (i[0] as f32 * 0.1).sin() * (i[1] as f32 * 0.07).cos());
        let cfg = LossyConfig::sz3_abs(1e-3).with_chunk_points(Some(256));
        let staged = ParallelExecutor::new(1).stream_round_trip(&data, &cfg, 0).unwrap();
        assert!(staged.chunks_shipped > 1, "test needs a multi-chunk layout");
        for threads in [1usize, 4] {
            for window in [1usize, 2, 8] {
                let ex = ParallelExecutor::new(1).with_codec_threads(threads);
                let streamed = ex.stream_round_trip(&data, &cfg, window).unwrap();
                assert_eq!(
                    streamed.outcome.blob, staged.outcome.blob,
                    "streamed blob must be byte-identical (threads={threads}, window={window})"
                );
                assert_eq!(streamed.outcome.bin_stats, staged.outcome.bin_stats);
                assert_eq!(streamed.chunks_shipped, staged.chunks_shipped);
                assert_eq!(streamed.restored.values(), staged.restored.values());
            }
        }
        let q = metrics::compare(&data, &staged.restored).unwrap();
        assert!(q.within_bound(1e-3));
    }

    #[test]
    fn streamed_round_trip_propagates_codec_errors() {
        let data = files(1).pop().unwrap();
        let bad = LossyConfig::sz3_abs(0.0);
        assert!(ParallelExecutor::new(1).stream_round_trip(&data, &bad, 2).is_err());
    }
}
