//! Automatic compressor configuration from user requirements (§V capability
//! 1): sweep candidate configurations through the quality-prediction model
//! and pick the best one satisfying the user's constraint.

use ocelot_qpred::{QualityEstimate, QualityModel};
use ocelot_sz::config::{LossyConfig, PredictorKind};
use ocelot_sz::{Dataset, ScalarValue};

/// A user requirement on the lossy transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Requirement {
    /// Reconstructed data must reach at least this PSNR (dB).
    MinPsnr(f64),
    /// Compression must achieve at least this ratio.
    MinRatio(f64),
    /// Compression must finish within this single-core-seconds budget.
    MaxTime(f64),
}

impl Requirement {
    /// Whether an estimate satisfies the requirement.
    pub fn satisfied_by(&self, est: &QualityEstimate) -> bool {
        match *self {
            Requirement::MinPsnr(db) => est.psnr >= db,
            Requirement::MinRatio(r) => est.ratio >= r,
            Requirement::MaxTime(s) => est.time_seconds <= s,
        }
    }
}

/// Selects compressor configurations with a trained quality model.
#[derive(Debug, Clone)]
pub struct AutoConfigurator {
    model: QualityModel,
    candidates: Vec<LossyConfig>,
    sample_stride: usize,
}

impl AutoConfigurator {
    /// Creates a configurator over the default candidate grid: every
    /// predictor × error bounds `1e-6 … 1e-1` (the sweep of §VIII-B).
    pub fn new(model: QualityModel) -> Self {
        let mut candidates = Vec::new();
        for predictor in PredictorKind::ALL {
            for exp in 1..=6 {
                let eb = 10f64.powi(-exp);
                candidates.push(LossyConfig::sz3(eb).with_predictor(predictor));
            }
        }
        AutoConfigurator { model, candidates, sample_stride: 100 }
    }

    /// Replaces the candidate set.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn with_candidates(mut self, candidates: Vec<LossyConfig>) -> Self {
        assert!(!candidates.is_empty(), "candidate set must be non-empty");
        self.candidates = candidates;
        self
    }

    /// Sets the feature sampling stride (default 100 = the paper's 1 %).
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn with_sample_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.sample_stride = stride;
        self
    }

    /// The candidate configurations.
    pub fn candidates(&self) -> &[LossyConfig] {
        &self.candidates
    }

    /// Estimates quality for every candidate (the table the paper's UI shows
    /// the user).
    pub fn estimate_all<T: ScalarValue>(&self, data: &Dataset<T>) -> Vec<(LossyConfig, QualityEstimate)> {
        self.candidates.iter().map(|cfg| (*cfg, self.model.predict_for(data, cfg, self.sample_stride))).collect()
    }

    /// Picks the candidate maximizing predicted ratio among those satisfying
    /// `requirement` (for [`Requirement::MaxTime`], ties favour the faster
    /// configuration). Returns `None` if no candidate qualifies.
    pub fn select<T: ScalarValue>(
        &self,
        data: &Dataset<T>,
        requirement: Requirement,
    ) -> Option<(LossyConfig, QualityEstimate)> {
        self.estimate_all(data)
            .into_iter()
            .filter(|(_, est)| requirement.satisfied_by(est))
            .max_by(|a, b| a.1.ratio.partial_cmp(&b.1.ratio).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_qpred::{TrainingSample, TreeConfig};

    fn field(seed: usize) -> Dataset<f32> {
        Dataset::from_fn(vec![48, 48], move |i| {
            ((i[0] + 5 * seed) as f32 * 0.13).sin() * 2.0 + (i[1] as f32 * 0.07).cos()
        })
    }

    fn trained_model() -> QualityModel {
        let mut samples = Vec::new();
        for seed in 0..5 {
            let d = field(seed);
            for exp in 1..=6 {
                let cfg = LossyConfig::sz3(10f64.powi(-exp));
                samples.push(TrainingSample::measure(&d, &cfg, 10, None).unwrap());
            }
        }
        QualityModel::train(&samples, &TreeConfig::default())
    }

    #[test]
    fn select_respects_psnr_floor() {
        let ac = AutoConfigurator::new(trained_model()).with_sample_stride(10);
        let d = field(7);
        let (cfg, est) = ac.select(&d, Requirement::MinPsnr(80.0)).expect("some config qualifies");
        assert!(est.psnr >= 80.0, "psnr {}", est.psnr);
        // Verify against the real pipeline: reconstruction should be good.
        let s = TrainingSample::measure(&d, &cfg, 10, None).unwrap();
        assert!(s.psnr > 50.0, "actual psnr {}", s.psnr);
    }

    #[test]
    fn impossible_requirement_returns_none() {
        let ac = AutoConfigurator::new(trained_model());
        assert!(ac.select(&field(1), Requirement::MinRatio(1e9)).is_none());
    }

    #[test]
    fn estimate_all_covers_candidates() {
        let ac = AutoConfigurator::new(trained_model());
        let ests = ac.estimate_all(&field(2));
        assert_eq!(ests.len(), ac.candidates().len());
        assert_eq!(ests.len(), PredictorKind::ALL.len() * 6);
    }

    #[test]
    fn ratio_selection_prefers_looser_bounds() {
        let ac = AutoConfigurator::new(trained_model()).with_sample_stride(10);
        let d = field(3);
        let relaxed = ac.select(&d, Requirement::MinPsnr(40.0)).unwrap();
        let strict = ac.select(&d, Requirement::MinPsnr(120.0));
        if let Some(strict) = strict {
            assert!(relaxed.1.ratio >= strict.1.ratio, "relaxed {} strict {}", relaxed.1.ratio, strict.1.ratio);
        }
    }

    #[test]
    fn requirement_predicates() {
        let est = QualityEstimate { ratio: 10.0, time_seconds: 5.0, psnr: 80.0 };
        assert!(Requirement::MinPsnr(70.0).satisfied_by(&est));
        assert!(!Requirement::MinPsnr(90.0).satisfied_by(&est));
        assert!(Requirement::MinRatio(10.0).satisfied_by(&est));
        assert!(Requirement::MaxTime(5.0).satisfied_by(&est));
        assert!(!Requirement::MaxTime(4.9).satisfied_by(&est));
    }
}
