//! Data loading: raw binary files and the "nclite" container format.
//!
//! The paper's data loader accepts NetCDF, HDF5, and raw binary. Real NetCDF
//! and HDF5 require C libraries unavailable here; `nclite` is a minimal
//! self-describing container with the same role — several named,
//! shape-annotated variables per file — so the loader exercises the same
//! code path (open container → enumerate variables → read each as an
//! N-dimensional float array).

use ocelot_sz::{Dataset, SzError};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"NCL1";

/// An in-memory nclite container: named f32 variables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NcliteFile {
    variables: BTreeMap<String, Dataset<f32>>,
}

impl NcliteFile {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a variable.
    ///
    /// # Panics
    /// Panics if `name` is empty or longer than 255 bytes.
    pub fn insert(&mut self, name: impl Into<String>, data: Dataset<f32>) {
        let name = name.into();
        assert!(!name.is_empty() && name.len() <= 255, "variable name must be 1-255 bytes");
        self.variables.insert(name, data);
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&Dataset<f32>> {
        self.variables.get(name)
    }

    /// Variable names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.variables.keys().map(String::as_str)
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.variables.len()
    }

    /// Whether the container has no variables.
    pub fn is_empty(&self) -> bool {
        self.variables.is_empty()
    }

    /// Iterates over `(name, data)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Dataset<f32>)> {
        self.variables.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes the container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(self.variables.len() as u32).to_le_bytes());
        for (name, data) in &self.variables {
            out.push(name.len() as u8);
            out.extend_from_slice(name.as_bytes());
            out.push(data.ndim() as u8);
            for &d in data.dims() {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            let payload = data.to_le_bytes();
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Parses a container.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] on framing errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SzError> {
        let err = |m: &str| SzError::CorruptStream(format!("nclite: {m}"));
        if bytes.len() < 8 || bytes[..4] != MAGIC {
            return Err(err("missing magic"));
        }
        let n = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        let mut pos = 8usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SzError> {
            if *pos + n > bytes.len() {
                return Err(SzError::CorruptStream("nclite: truncated".into()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let mut out = NcliteFile::new();
        for _ in 0..n {
            let name_len = take(&mut pos, 1)?[0] as usize;
            if name_len == 0 {
                return Err(err("empty variable name"));
            }
            let name =
                String::from_utf8(take(&mut pos, name_len)?.to_vec()).map_err(|_| err("variable name is not UTF-8"))?;
            let ndim = take(&mut pos, 1)?[0] as usize;
            if ndim == 0 || ndim > 8 {
                return Err(err("invalid rank"));
            }
            let mut dims = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                dims.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize);
            }
            let payload_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
            let payload = take(&mut pos, payload_len)?;
            let data = Dataset::<f32>::from_le_bytes(dims, payload)?;
            out.insert(name, data);
        }
        if pos != bytes.len() {
            return Err(err("trailing bytes"));
        }
        Ok(out)
    }

    /// Writes the container to a file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())
    }

    /// Reads a container from a file.
    ///
    /// # Errors
    /// Propagates I/O errors; corrupt files surface as
    /// `io::ErrorKind::InvalidData`.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Loads a raw little-endian f32 binary file with an externally known shape
/// (the format of the paper's RTM/Nyx/ISABEL `.dat`/`.bin` files).
///
/// # Errors
/// Propagates I/O errors; shape mismatches surface as
/// `io::ErrorKind::InvalidData`.
pub fn load_raw_f32(path: impl AsRef<Path>, dims: Vec<usize>) -> std::io::Result<Dataset<f32>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    Dataset::from_le_bytes(dims, &bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Saves a dataset as raw little-endian f32.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_raw_f32(path: impl AsRef<Path>, data: &Dataset<f32>) -> std::io::Result<()> {
    std::fs::File::create(path)?.write_all(&data.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NcliteFile {
        let mut f = NcliteFile::new();
        f.insert("temperature", Dataset::from_fn(vec![4, 5], |i| (i[0] * 5 + i[1]) as f32));
        f.insert("pressure", Dataset::from_fn(vec![10], |i| i[0] as f32 * 0.5));
        f
    }

    #[test]
    fn container_round_trip() {
        let f = sample();
        let bytes = f.to_bytes();
        let back = NcliteFile::from_bytes(&bytes).unwrap();
        assert_eq!(f, back);
        assert_eq!(back.names().collect::<Vec<_>>(), vec!["pressure", "temperature"]);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        assert!(NcliteFile::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(NcliteFile::from_bytes(&bytes[..6]).is_err());
        assert!(NcliteFile::from_bytes(b"XXXX").is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(NcliteFile::from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ocelot_nclite_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ncl");
        let f = sample();
        f.save(&path).unwrap();
        let back = NcliteFile::load(&path).unwrap();
        assert_eq!(f, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_round_trip() {
        let dir = std::env::temp_dir().join("ocelot_raw_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("field.f32");
        let d = Dataset::from_fn(vec![6, 7], |i| (i[0] as f32).powi(2) - i[1] as f32);
        save_raw_f32(&path, &d).unwrap();
        let back = load_raw_f32(&path, vec![6, 7]).unwrap();
        assert_eq!(d, back);
        // Wrong shape is rejected.
        assert!(load_raw_f32(&path, vec![5, 7]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn get_and_iter() {
        let f = sample();
        assert!(f.get("temperature").is_some());
        assert!(f.get("missing").is_none());
        assert_eq!(f.iter().count(), 2);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }
}
