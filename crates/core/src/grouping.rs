//! File grouping for high transfer throughput (§VII-C, Fig 11).
//!
//! Many small compressed files transfer slowly (per-file handling costs —
//! Table II), so Ocelot concatenates compressed blobs into a few large
//! *group files*. Each group carries a binary header (count, offset and size
//! of every member) and the batch is described by a human-readable JSON
//! manifest (original filenames, grouping strategy) used on the destination
//! to decompress and restore names.

use serde::{Deserialize, Serialize};

const MAGIC: [u8; 4] = *b"OCGP";

/// Human-readable description of a grouped batch (the paper's "metadata
/// text file").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupManifest {
    /// Strategy note (e.g. `"by-world-size:2048"` or `"target-bytes:4GiB"`).
    pub strategy: String,
    /// Original member filenames, one list per group, in group order.
    pub groups: Vec<Vec<String>>,
}

impl GroupManifest {
    /// Total number of member files across all groups.
    pub fn file_count(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

/// Plans groups by a target group size: files are packed in order until a
/// group reaches `target_bytes` (at least one file per group).
///
/// # Panics
/// Panics if `target_bytes == 0`.
pub fn plan_groups(sizes: &[u64], target_bytes: u64) -> Vec<Vec<usize>> {
    assert!(target_bytes > 0, "target group size must be positive");
    let mut groups = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut current_bytes = 0u64;
    for (i, &s) in sizes.iter().enumerate() {
        if !current.is_empty() && current_bytes + s > target_bytes {
            groups.push(std::mem::take(&mut current));
            current_bytes = 0;
        }
        current.push(i);
        current_bytes += s;
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// Plans exactly `group_count` groups of near-equal file counts, preserving
/// order — the paper's default "group by world_size" strategy (cores that
/// compressed together finish together and write one group).
///
/// # Panics
/// Panics if `group_count == 0`.
pub fn plan_groups_by_count(n_files: usize, group_count: usize) -> Vec<Vec<usize>> {
    assert!(group_count > 0, "group count must be positive");
    if n_files == 0 {
        return Vec::new();
    }
    let group_count = group_count.min(n_files);
    let mut groups = Vec::with_capacity(group_count);
    let base = n_files / group_count;
    let extra = n_files % group_count;
    let mut next = 0usize;
    for g in 0..group_count {
        let len = base + usize::from(g < extra);
        groups.push((next..next + len).collect());
        next += len;
    }
    groups
}

/// Builds group files from named blobs according to a plan.
///
/// ```
/// use ocelot::grouping::{group_blobs, plan_groups_by_count, ungroup_blobs};
///
/// let blobs = vec![("a".to_string(), vec![1u8, 2]), ("b".to_string(), vec![3u8])];
/// let plan = plan_groups_by_count(blobs.len(), 1);
/// let (groups, manifest) = group_blobs(&blobs, &plan);
/// assert_eq!(manifest.groups[0], vec!["a", "b"]);
/// let members = ungroup_blobs(&groups[0]).unwrap();
/// assert_eq!(members, vec![vec![1u8, 2], vec![3u8]]);
/// ```
///
/// Returns the serialized group files and the manifest.
///
/// # Panics
/// Panics if the plan references out-of-range files, repeats a file, or
/// omits one.
pub fn group_blobs(blobs: &[(String, Vec<u8>)], plan: &[Vec<usize>]) -> (Vec<Vec<u8>>, GroupManifest) {
    let mut seen = vec![false; blobs.len()];
    for idx in plan.iter().flatten() {
        assert!(*idx < blobs.len(), "plan references file {idx} of {}", blobs.len());
        assert!(!seen[*idx], "plan repeats file {idx}");
        seen[*idx] = true;
    }
    assert!(seen.iter().all(|&s| s), "plan omits files");

    let mut group_files = Vec::with_capacity(plan.len());
    let mut names = Vec::with_capacity(plan.len());
    for group in plan {
        // Header: magic, count, then (offset, size) per member. Offsets are
        // relative to the start of the body.
        let mut header = Vec::with_capacity(8 + group.len() * 16);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&(group.len() as u32).to_le_bytes());
        let mut body = Vec::new();
        for &idx in group {
            header.extend_from_slice(&(body.len() as u64).to_le_bytes());
            header.extend_from_slice(&(blobs[idx].1.len() as u64).to_le_bytes());
            body.extend_from_slice(&blobs[idx].1);
        }
        let mut file = header;
        file.extend_from_slice(&body);
        group_files.push(file);
        names.push(group.iter().map(|&i| blobs[i].0.clone()).collect());
    }
    let manifest = GroupManifest { strategy: format!("groups:{}", plan.len()), groups: names };
    (group_files, manifest)
}

/// Splits a group file back into its member blobs.
///
/// # Errors
/// Returns a message describing the framing violation.
pub fn ungroup_blobs(group_file: &[u8]) -> Result<Vec<Vec<u8>>, String> {
    if group_file.len() < 8 || group_file[..4] != MAGIC {
        return Err("missing OCGP magic".into());
    }
    let count = u32::from_le_bytes(group_file[4..8].try_into().expect("4 bytes")) as usize;
    let header_len = 8 + count * 16;
    if group_file.len() < header_len {
        return Err(format!("truncated header: {count} members"));
    }
    let body = &group_file[header_len..];
    let mut out = Vec::with_capacity(count);
    for m in 0..count {
        let at = 8 + m * 16;
        let offset = u64::from_le_bytes(group_file[at..at + 8].try_into().expect("8 bytes")) as usize;
        let size = u64::from_le_bytes(group_file[at + 8..at + 16].try_into().expect("8 bytes")) as usize;
        let end = offset.checked_add(size).ok_or("offset overflow")?;
        if end > body.len() {
            return Err(format!("member {m} spans past the body ({end} > {})", body.len()));
        }
        out.push(body[offset..end].to_vec());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(blobs: &[&[u8]]) -> Vec<(String, Vec<u8>)> {
        blobs.iter().enumerate().map(|(i, b)| (format!("file{i}.sz"), b.to_vec())).collect()
    }

    #[test]
    fn group_and_ungroup_round_trip() {
        let blobs = named(&[b"alpha", b"", b"gamma-longer-content", b"d"]);
        let plan = vec![vec![0, 1], vec![2, 3]];
        let (groups, manifest) = group_blobs(&blobs, &plan);
        assert_eq!(groups.len(), 2);
        assert_eq!(manifest.file_count(), 4);
        assert_eq!(manifest.groups[0], vec!["file0.sz", "file1.sz"]);
        let g0 = ungroup_blobs(&groups[0]).unwrap();
        assert_eq!(g0, vec![b"alpha".to_vec(), b"".to_vec()]);
        let g1 = ungroup_blobs(&groups[1]).unwrap();
        assert_eq!(g1[0], b"gamma-longer-content".to_vec());
    }

    #[test]
    fn plan_by_target_bytes_packs_in_order() {
        let sizes = vec![4, 4, 4, 10, 1, 1];
        let plan = plan_groups(&sizes, 8);
        assert_eq!(plan, vec![vec![0, 1], vec![2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn plan_by_target_allows_oversized_single_files() {
        let plan = plan_groups(&[100, 1], 8);
        assert_eq!(plan, vec![vec![0], vec![1]]);
    }

    #[test]
    fn plan_by_count_balances() {
        let plan = plan_groups_by_count(10, 3);
        assert_eq!(plan.len(), 3);
        let lens: Vec<usize> = plan.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        let all: Vec<usize> = plan.into_iter().flatten().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn plan_by_count_caps_at_file_count() {
        let plan = plan_groups_by_count(3, 8);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn corrupt_group_is_rejected() {
        let blobs = named(&[b"hello", b"world"]);
        let (groups, _) = group_blobs(&blobs, &[vec![0, 1]]);
        assert!(ungroup_blobs(&groups[0][..10]).is_err());
        assert!(ungroup_blobs(b"XXXX").is_err());
        // Size pointing past the body.
        let mut bad = groups[0].clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ungroup_blobs(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "plan omits files")]
    fn incomplete_plan_panics() {
        let blobs = named(&[b"a", b"b"]);
        group_blobs(&blobs, &[vec![0]]);
    }

    #[test]
    fn manifest_serializes_to_json() {
        let blobs = named(&[b"a", b"b", b"c"]);
        let (_, manifest) = group_blobs(&blobs, &[vec![0, 1, 2]]);
        let json = serde_json::to_string_pretty(&manifest).unwrap();
        let back: GroupManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(manifest, back);
        assert!(json.contains("file2.sz"));
    }
}
