//! The sentinel: transfer uncompressed data while compression nodes wait in
//! the batch queue (§VII-B, Fig 10).
//!
//! When the user requests a compressed transfer but the scheduler has not
//! granted nodes yet, the sentinel starts a plain transfer immediately.
//! Completed files are recorded in a meta file so the compression job skips
//! them; when nodes arrive, the plain transfer stops and the remaining files
//! go through compress → transfer → decompress. The worst case (nodes never
//! arrive) degenerates to a plain transfer — compression can delay but never
//! block the data movement.

use ocelot_faas::Cluster;
use ocelot_netsim::{simulate_transfer, SiteId};

use crate::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use crate::report::TimeBreakdown;
use crate::workload::Workload;

/// Runs the sentinel-augmented pipeline for a known queue wait.
///
/// Called by [`Orchestrator::run`] when the sentinel option is on and the
/// sampled wait is positive.
pub(crate) fn run_with_wait(
    orch: &Orchestrator,
    workload: &Workload,
    from: SiteId,
    to: SiteId,
    strategy: Strategy,
    opts: &PipelineOptions,
    wait_s: f64,
) -> TimeBreakdown {
    let route = orch.topology().route(from, to);
    let raw_sizes = workload.raw_sizes();

    // How many files does the plain transfer complete before nodes arrive?
    let done = files_done_by(&raw_sizes, &route.link, &opts.gridftp, opts.seed, wait_s);
    if done >= raw_sizes.len() {
        // Worst case: everything went uncompressed; total time is just the
        // plain transfer (the compression job is cancelled).
        let report = simulate_transfer(&raw_sizes, &route.link, &opts.gridftp, opts.seed);
        return TimeBreakdown {
            transfer_s: report.duration_s,
            bytes_transferred: report.bytes_total,
            files_transferred: report.n_files,
            ..Default::default()
        };
    }

    // Remaining files go through the compression pipeline.
    let remaining = workload_suffix(workload, done);
    let src = orch.topology().site(from);
    let dst = orch.topology().site(to);
    let comp_cluster = Cluster::new(opts.compress_nodes, src.cores_per_node, src.core_speed);
    let compression_s = orch.compression_time(&remaining, src, &comp_cluster, strategy, opts.codec_threads);

    let comp_sizes = remaining.compressed_sizes();
    let sizes: Vec<u64> = match strategy {
        Strategy::CompressedGrouped { group_count, target_bytes } => {
            let plan = match (group_count, target_bytes) {
                (Some(n), _) => crate::grouping::plan_groups_by_count(comp_sizes.len(), n),
                (None, Some(b)) => crate::grouping::plan_groups(&comp_sizes, b),
                (None, None) => crate::grouping::plan_groups_by_count(comp_sizes.len(), comp_cluster.total_cores()),
            };
            plan.iter().map(|g| g.iter().map(|&i| comp_sizes[i]).sum()).collect()
        }
        _ => comp_sizes,
    };
    let report = simulate_transfer(&sizes, &route.link, &opts.gridftp, opts.seed ^ 1);

    let dcores = opts.decompress_cores_per_node.unwrap_or(dst.cores_per_node).min(dst.cores_per_node);
    let decomp_cluster = Cluster::new(opts.decompress_nodes, dcores, dst.core_speed);
    let decompression_s = orch.decompression_time(&remaining, dst, &decomp_cluster, opts.codec_threads);

    let raw_bytes_done: u64 = raw_sizes[..done].iter().sum();
    TimeBreakdown {
        // The wait is fully overlapped with useful (uncompressed) transfer,
        // so it is not added on top; it appears as the sentinel window.
        queue_wait_s: wait_s,
        compression_s,
        grouping_s: 0.0,
        transfer_s: report.duration_s,
        decompression_s,
        bytes_transferred: raw_bytes_done + report.bytes_total,
        files_transferred: raw_sizes.len(),
    }
}

/// Total time of the sentinel pipeline: the queue wait window (spent
/// transferring raw data) runs first, then the compressed pipeline for the
/// remainder.
pub fn sentinel_total_s(b: &TimeBreakdown) -> f64 {
    b.queue_wait_s + b.compression_s + b.grouping_s + b.transfer_s + b.decompression_s
}

/// Number of files completed within `deadline` seconds (binary search over
/// prefix transfers — transfers complete in submission order under the
/// fluid model).
fn files_done_by(
    sizes: &[u64],
    link: &ocelot_netsim::LinkProfile,
    cfg: &ocelot_netsim::GridFtpConfig,
    seed: u64,
    deadline: f64,
) -> usize {
    if sizes.is_empty() || deadline <= 0.0 {
        return 0;
    }
    let full = simulate_transfer(sizes, link, cfg, seed);
    if full.duration_s <= deadline {
        return sizes.len();
    }
    let (mut lo, mut hi) = (0usize, sizes.len()); // invariant: prefix lo fits, hi does not
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let r = simulate_transfer(&sizes[..mid], link, cfg, seed);
        if r.duration_s <= deadline {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A workload restricted to files `skip..`.
fn workload_suffix(workload: &Workload, skip: usize) -> Workload {
    Workload {
        app: workload.app,
        config: workload.config,
        files: workload.files[skip.min(workload.files.len())..].to_vec(),
        profiles: workload.profiles.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_faas::WaitTimeModel;
    use ocelot_sz::LossyConfig;

    fn miranda() -> Workload {
        Workload::miranda(LossyConfig::sz3(1e-2), 32).unwrap()
    }

    fn opts_with_wait(wait: f64) -> PipelineOptions {
        PipelineOptions { wait_model: WaitTimeModel::Fixed(wait), sentinel: true, ..Default::default() }
    }

    #[test]
    fn short_wait_still_compresses_most_files() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let b = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &opts_with_wait(10.0));
        assert_eq!(b.queue_wait_s, 10.0);
        // Most bytes still cross compressed: well under the raw total.
        assert!(b.bytes_transferred < w.total_bytes() / 2, "bytes {}", b.bytes_transferred);
    }

    #[test]
    fn infinite_wait_degenerates_to_plain_transfer() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let plain = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Direct, &PipelineOptions::default());
        let sent = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &opts_with_wait(1e7));
        assert_eq!(sent.compression_s, 0.0);
        assert!((sent.transfer_s - plain.transfer_s).abs() < 1.0);
        assert_eq!(sent.bytes_transferred, w.total_bytes());
    }

    #[test]
    fn sentinel_beats_blocking_on_long_waits() {
        // Without the sentinel a 600 s wait is pure loss; with it, data
        // flows during the window.
        let orch = Orchestrator::paper();
        let w = miranda();
        let blocking =
            PipelineOptions { wait_model: WaitTimeModel::Fixed(600.0), sentinel: false, ..Default::default() };
        let b_block = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &blocking);
        let b_sent = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &opts_with_wait(600.0));
        assert!(
            sentinel_total_s(&b_sent) <= b_block.total_s() + 1.0,
            "sentinel {} vs blocking {}",
            sentinel_total_s(&b_sent),
            b_block.total_s()
        );
        // The sentinel window moved real bytes.
        assert!(b_sent.bytes_transferred > 0);
    }

    #[test]
    fn files_done_by_is_monotone() {
        let link = ocelot_netsim::LinkProfile::new(1e9, 0.05, 0.1, 0.0);
        let cfg = ocelot_netsim::GridFtpConfig::default();
        let sizes = vec![100_000_000u64; 50];
        let a = files_done_by(&sizes, &link, &cfg, 0, 1.0);
        let b = files_done_by(&sizes, &link, &cfg, 0, 3.0);
        let c = files_done_by(&sizes, &link, &cfg, 0, 1e6);
        assert!(a <= b, "{a} <= {b}");
        assert_eq!(c, 50);
        assert_eq!(files_done_by(&sizes, &link, &cfg, 0, 0.0), 0);
    }
}
