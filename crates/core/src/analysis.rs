//! Run logging and analysis: §V capability 3 — "Ocelot allows users to
//! collect information about compression and transfer. The analytical data
//! is stored on the user's personal computer, and can be used to further
//! analyze the performance."
//!
//! A [`RunLog`] appends [`ExperimentRecord`]s as JSON Lines; the loader
//! filters by experiment and computes summary statistics over any numeric
//! field of the recorded rows.

use crate::report::ExperimentRecord;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// Append-only JSONL log of experiment records.
#[derive(Debug)]
pub struct RunLog {
    path: PathBuf,
}

impl RunLog {
    /// Opens (or creates) a log at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        RunLog { path: path.into() }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a record.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn append(&self, record: &ExperimentRecord) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        let line = serde_json::to_string(record).expect("records serialize");
        writeln!(f, "{line}")
    }

    /// Loads every record (malformed lines surface as errors).
    ///
    /// # Errors
    /// Propagates I/O errors; malformed lines surface as
    /// `io::ErrorKind::InvalidData`.
    pub fn load(&self) -> std::io::Result<Vec<ExperimentRecord>> {
        let f = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for line in std::io::BufReader::new(f).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let record: ExperimentRecord =
                serde_json::from_str(&line).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            out.push(record);
        }
        Ok(out)
    }

    /// Loads the records of one experiment.
    ///
    /// # Errors
    /// Same as [`RunLog::load`].
    pub fn load_experiment(&self, experiment: &str) -> std::io::Result<Vec<ExperimentRecord>> {
        Ok(self.load()?.into_iter().filter(|r| r.experiment == experiment).collect())
    }
}

/// Summary statistics of one numeric field across records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldSummary {
    /// Number of records carrying the field.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Summarizes a numeric field (dotted paths supported, e.g.
/// `"report.duration_s"`) across records. Records missing the field are
/// skipped; returns `None` if no record carries it.
pub fn summarize_field(records: &[ExperimentRecord], field: &str) -> Option<FieldSummary> {
    let mut values = Vec::new();
    for r in records {
        let mut v = &r.data;
        for seg in field.split('.') {
            v = v.get(seg)?;
        }
        if let Some(x) = v.as_f64() {
            values.push(x);
        }
    }
    if values.is_empty() {
        return None;
    }
    let count = values.len();
    let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
    for &x in &values {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    Some(FieldSummary { count, min, max, mean: sum / count as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TimeBreakdown;

    fn temp_log(name: &str) -> RunLog {
        let dir = std::env::temp_dir().join("ocelot_runlog_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        RunLog::open(path)
    }

    fn breakdown(transfer: f64) -> TimeBreakdown {
        TimeBreakdown { transfer_s: transfer, bytes_transferred: 100, ..Default::default() }
    }

    #[test]
    fn append_and_load_round_trip() {
        let log = temp_log("round_trip.jsonl");
        for t in [1.0, 2.0, 3.0] {
            log.append(&ExperimentRecord::new("table8", &breakdown(t))).unwrap();
        }
        log.append(&ExperimentRecord::new("fig9", &breakdown(9.0))).unwrap();
        assert_eq!(log.load().unwrap().len(), 4);
        let t8 = log.load_experiment("table8").unwrap();
        assert_eq!(t8.len(), 3);
    }

    #[test]
    fn missing_log_is_empty() {
        let log = RunLog::open(std::env::temp_dir().join("ocelot_runlog_tests/never_written.jsonl"));
        std::fs::remove_file(log.path()).ok();
        assert!(log.load().unwrap().is_empty());
    }

    #[test]
    fn field_summaries() {
        let log = temp_log("summary.jsonl");
        for t in [10.0, 20.0, 60.0] {
            log.append(&ExperimentRecord::new("table8", &breakdown(t))).unwrap();
        }
        let records = log.load().unwrap();
        let s = summarize_field(&records, "transfer_s").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 60.0);
        assert!((s.mean - 30.0).abs() < 1e-12);
        assert!(summarize_field(&records, "no_such_field").is_none());
    }

    #[test]
    fn corrupt_lines_are_reported() {
        let log = temp_log("corrupt.jsonl");
        log.append(&ExperimentRecord::new("x", &breakdown(1.0))).unwrap();
        std::fs::OpenOptions::new().append(true).open(log.path()).unwrap().write_all(b"{not json}\n").unwrap();
        assert!(log.load().is_err());
    }
}
