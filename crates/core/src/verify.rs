//! Post-transfer verification (Z-checker style): compare an original
//! dataset against its lossy reconstruction and judge it against a policy.
//!
//! Transfers with lossy compression need an acceptance step on the
//! destination — "was the data good enough?" — expressed as bounds on
//! pointwise error, PSNR, and correlation, exactly the metrics the paper
//! uses to argue validity (PSNR > 50 dB ⇒ visually identical, Fig 15).

use ocelot_sz::{metrics, Dataset, QualityReport, ScalarValue, SzError};
use serde::{Deserialize, Serialize};

/// Acceptance policy for reconstructed data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptancePolicy {
    /// Maximum allowed pointwise absolute error (`None` = don't check).
    pub max_abs_error: Option<f64>,
    /// Minimum PSNR in dB.
    pub min_psnr: Option<f64>,
    /// Minimum Pearson correlation with the original.
    pub min_correlation: Option<f64>,
}

impl AcceptancePolicy {
    /// The paper's visual-fidelity policy: PSNR ≥ 50 dB.
    pub fn visual() -> Self {
        AcceptancePolicy { max_abs_error: None, min_psnr: Some(50.0), min_correlation: None }
    }

    /// Strict numerical policy: pointwise bound plus high correlation.
    pub fn error_bounded(abs_eb: f64) -> Self {
        AcceptancePolicy { max_abs_error: Some(abs_eb), min_psnr: None, min_correlation: Some(0.99) }
    }
}

/// Verdict of a verification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Whether every enabled check passed.
    pub accepted: bool,
    /// Human-readable reasons for rejection (empty when accepted).
    pub violations: Vec<String>,
    /// The measured quality metrics.
    pub psnr: f64,
    /// Maximum pointwise error.
    pub max_abs_error: f64,
    /// Pearson correlation.
    pub correlation: f64,
}

/// Verifies a reconstruction against the policy.
///
/// # Errors
/// Returns [`SzError::InvalidShape`] if the shapes differ.
pub fn verify<T: ScalarValue>(
    original: &Dataset<T>,
    reconstructed: &Dataset<T>,
    policy: &AcceptancePolicy,
) -> Result<Verdict, SzError> {
    let q: QualityReport = metrics::compare(original, reconstructed)?;
    let mut violations = Vec::new();
    if let Some(bound) = policy.max_abs_error {
        if !q.within_bound(bound) {
            violations.push(format!("max abs error {:.3e} exceeds bound {:.3e}", q.max_abs_error, bound));
        }
    }
    if let Some(min) = policy.min_psnr {
        if q.psnr < min {
            violations.push(format!("PSNR {:.2} dB below required {min:.2} dB", q.psnr));
        }
    }
    if let Some(min) = policy.min_correlation {
        if q.correlation < min {
            violations.push(format!("correlation {:.6} below required {min:.6}", q.correlation));
        }
    }
    Ok(Verdict {
        accepted: violations.is_empty(),
        violations,
        psnr: q.psnr,
        max_abs_error: q.max_abs_error,
        correlation: q.correlation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::{compress, decompress, LossyConfig};

    fn field() -> Dataset<f32> {
        Dataset::from_fn(vec![48, 48], |i| ((i[0] as f32) * 0.2).sin() * 4.0 + i[1] as f32 * 0.02)
    }

    #[test]
    fn compressed_data_passes_its_own_bound() {
        let data = field();
        let blob = compress(&data, &LossyConfig::sz3(1e-3)).unwrap().blob;
        let abs_eb = blob.header().unwrap().abs_eb;
        let restored = decompress::<f32>(&blob).unwrap();
        let v = verify(&data, &restored, &AcceptancePolicy::error_bounded(abs_eb)).unwrap();
        assert!(v.accepted, "violations: {:?}", v.violations);
        let v = verify(&data, &restored, &AcceptancePolicy::visual()).unwrap();
        assert!(v.accepted);
    }

    #[test]
    fn violations_are_reported_specifically() {
        let data = field();
        let blob = compress(&data, &LossyConfig::sz3(1e-1)).unwrap().blob;
        let restored = decompress::<f32>(&blob).unwrap();
        // Demand far more than 1e-1 compression delivers.
        let policy =
            AcceptancePolicy { max_abs_error: Some(1e-6), min_psnr: Some(120.0), min_correlation: Some(0.999999999) };
        let v = verify(&data, &restored, &policy).unwrap();
        assert!(!v.accepted);
        assert_eq!(v.violations.len(), 3, "{:?}", v.violations);
        assert!(v.violations[0].contains("max abs error"));
        assert!(v.violations[1].contains("PSNR"));
    }

    #[test]
    fn identical_data_always_passes() {
        let data = field();
        let policy = AcceptancePolicy { max_abs_error: Some(0.0), min_psnr: Some(1e6), min_correlation: Some(1.0) };
        let v = verify(&data, &data, &policy).unwrap();
        assert!(v.accepted);
        assert!(v.psnr.is_infinite());
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Dataset::<f32>::constant(vec![4], 0.0).unwrap();
        let b = Dataset::<f32>::constant(vec![5], 0.0).unwrap();
        assert!(verify(&a, &b, &AcceptancePolicy::visual()).is_err());
    }
}
