//! End-to-end pipeline orchestration: compress on the source cluster,
//! transfer over the WAN, decompress on the destination cluster.
//!
//! Reproduces the measurement methodology of the paper's §VIII-D: `T(NP)` is
//! a plain Globus transfer of the raw files; `T(CP)` compresses each file
//! individually before transfer; `T(OP)` additionally groups compressed
//! files. `Total T = CPTime + T + DPTime` (phases accounted additively, as
//! in Table VIII).

use ocelot_faas::{Cluster, WaitTimeModel};
use ocelot_netsim::{
    draw_faults, simulate_transfer_detailed, simulate_transfer_with_faults, FaultDraw, FaultModel, GridFtpConfig,
    SiteId, Topology,
};
use ocelot_obs::ledger::{Draft, EventKind};

use crate::grouping::{plan_groups, plan_groups_by_count};
use crate::report::TimeBreakdown;
use crate::sentinel;
use crate::workload::Workload;

/// Transfer strategy (the NP / CP / OP columns of Table VIII).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Direct transfer, no compression (`NP`).
    Direct,
    /// Per-file parallel compression (`CP`).
    Compressed,
    /// Compression plus file grouping (`OP`). Exactly one of the two
    /// grouping criteria is used: a fixed group count (the paper's
    /// by-world-size default) or a target bytes per group.
    CompressedGrouped {
        /// Number of groups (`Some` → group-by-count).
        group_count: Option<usize>,
        /// Target group size in bytes (used when `group_count` is `None`).
        target_bytes: Option<u64>,
    },
}

impl Strategy {
    /// The paper's OP with a fixed group count.
    pub fn grouped_by_count(n: usize) -> Self {
        Strategy::CompressedGrouped { group_count: Some(n), target_bytes: None }
    }

    /// OP with a target group size.
    pub fn grouped_by_bytes(bytes: u64) -> Self {
        Strategy::CompressedGrouped { group_count: None, target_bytes: Some(bytes) }
    }
}

/// Resource and tuning options for one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineOptions {
    /// Nodes allocated for compression at the source.
    pub compress_nodes: usize,
    /// Nodes allocated for decompression at the destination.
    pub decompress_nodes: usize,
    /// Cores used per decompression node (the paper tunes this down to
    /// avoid filesystem contention).
    pub decompress_cores_per_node: Option<usize>,
    /// GridFTP tuning.
    pub gridftp: GridFtpConfig,
    /// Batch-queue waiting model at the source.
    pub wait_model: WaitTimeModel,
    /// Whether the sentinel transfers uncompressed data during the wait.
    pub sentinel: bool,
    /// WAN fault injection applied to the transfer leg of [`Orchestrator::run`]
    /// (per-attempt failure probability, Globus-style retries, reconnect
    /// cost). [`FaultModel::none`] reproduces the healthy-link behaviour
    /// exactly. The overlapped and sentinel paths model healthy links.
    pub faults: FaultModel,
    /// Seed for waiting times and link jitter.
    pub seed: u64,
    /// Job id attached to recorded spans and trace events (`None` for
    /// jobless runs such as sweeps and profiling).
    pub job: Option<u64>,
    /// Chunk-parallel codec threads per file (the compressor's
    /// `LossyConfig::threads` knob). Each simulated compression lane then
    /// occupies `codec_threads` cores: per-file latency drops near-linearly
    /// while the number of concurrent lanes shrinks by the same factor, so
    /// the simulation agrees with what `ParallelExecutor::with_codec_threads`
    /// does on real hardware.
    pub codec_threads: usize,
    /// Bounded in-flight chunk window for [`Orchestrator::run_streamed`]:
    /// at most this many compressed chunks may sit between the compressor
    /// and the far-side decompressor at once. `0` disables chunk streaming
    /// (the staged/overlapped degenerate case).
    pub stream_window: usize,
}

impl Default for PipelineOptions {
    /// The paper's Table VIII setup: 16 compression nodes on the source,
    /// 8 decompression nodes on the destination, tuned GridFTP, no queue
    /// wait (Anvil granted nodes immediately).
    fn default() -> Self {
        PipelineOptions {
            compress_nodes: 16,
            decompress_nodes: 8,
            decompress_cores_per_node: Some(32),
            gridftp: GridFtpConfig::default(),
            wait_model: WaitTimeModel::Immediate,
            sentinel: false,
            faults: FaultModel::none(),
            seed: 0,
            job: None,
            codec_threads: 1,
            stream_window: 0,
        }
    }
}

/// Chunk-parallel speedup model: near-linear with a small serial fraction
/// (chunk table assembly, framing, and the final checksum do not
/// parallelize). Matches the CI-gated scaling of the real codec.
fn codec_speedup(threads: usize) -> f64 {
    let t = threads.max(1) as f64;
    t / (1.0 + CODEC_SERIAL_FRACTION * (t - 1.0))
}

/// Serial fraction of a chunk-parallel (de)compression task.
const CODEC_SERIAL_FRACTION: f64 = 0.03;

/// Scales per-file work by the codec speedup and returns the lane count
/// (cores ÷ threads-per-file) those files run on.
fn codec_scaled(work: &[f64], total_cores: usize, codec_threads: usize) -> (Vec<f64>, usize) {
    let t = codec_threads.max(1);
    let scaled = work.iter().map(|w| w / codec_speedup(t)).collect();
    (scaled, (total_cores / t).max(1))
}

/// Everything one [`Orchestrator::run_detailed`] call produced: the phase
/// breakdown plus the fault/retry detail of the transfer leg (all zeros /
/// empty under [`FaultModel::none`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// Phase timing and payload accounting.
    pub breakdown: TimeBreakdown,
    /// Failed attempts across all transferred files.
    pub transfer_retries: usize,
    /// Indices (in transfer order) of files abandoned after exhausting the
    /// fault model's retry budget.
    pub failed_files: Vec<usize>,
    /// Bytes moved by attempts that subsequently failed.
    pub wasted_bytes: u64,
    /// Attempts per transferred file (1 = clean first try).
    pub attempts: Vec<u32>,
    /// Byte sizes offered to the transfer leg, in transfer order (raw file
    /// sizes for [`Strategy::Direct`], compressed or grouped sizes
    /// otherwise). Indexes align with `failed_files` and `attempts`, which
    /// lets callers re-offer exactly the abandoned payloads.
    pub transfer_sizes: Vec<u64>,
}

impl PipelineOutcome {
    /// True when every file arrived within the retry budget.
    pub fn delivered(&self) -> bool {
        self.failed_files.is_empty()
    }
}

/// Runs transfer pipelines on a site topology.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    topology: Topology,
    obs: Option<ocelot_obs::Obs>,
    ledger: Option<std::sync::Arc<ocelot_obs::ledger::Ledger>>,
}

impl Orchestrator {
    /// Creates an orchestrator over a topology.
    pub fn new(topology: Topology) -> Self {
        Orchestrator { topology, obs: None, ledger: None }
    }

    /// The paper's calibrated three-site testbed.
    pub fn paper() -> Self {
        Orchestrator::new(Topology::paper())
    }

    /// Attaches an explicit observability handle; without one, the
    /// process-wide [`ocelot_obs::global`] handle is used.
    pub fn with_obs(mut self, obs: ocelot_obs::Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The observability handle in effect for this orchestrator.
    pub fn obs(&self) -> ocelot_obs::Obs {
        self.obs.clone().unwrap_or_else(ocelot_obs::global)
    }

    /// Attaches an explicit chunk-lifecycle ledger. Without one, chunk
    /// events go to the process-global ledger when installed — an explicit
    /// handle lets a long-lived service own its event stream without racing
    /// other ledger users for the global slot.
    pub fn with_ledger(mut self, ledger: std::sync::Arc<ocelot_obs::ledger::Ledger>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// The chunk ledger in effect for this run: the explicit handle, else
    /// the installed global, else `None` (emission compiles away).
    fn ledger(&self) -> Option<std::sync::Arc<ocelot_obs::ledger::Ledger>> {
        self.ledger.clone().or_else(ocelot_obs::ledger::global)
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs one pipeline, returning the phase breakdown.
    ///
    /// # Panics
    /// Panics if `from == to` or node counts are zero.
    pub fn run(
        &self,
        workload: &Workload,
        from: SiteId,
        to: SiteId,
        strategy: Strategy,
        opts: &PipelineOptions,
    ) -> TimeBreakdown {
        self.run_detailed(workload, from, to, strategy, opts).breakdown
    }

    /// Records one run's phase timings: an additive sim-span tree (all on
    /// lane 0, phases laid end to end as the paper's Table VIII accounts
    /// them) plus per-phase histograms and a per-strategy run counter.
    fn record_phases(&self, strategy: &str, job: Option<u64>, b: &TimeBreakdown) {
        let obs = self.obs();
        if !obs.is_enabled() {
            return;
        }
        let root = obs.sim_span("pipeline", job, crate::lanes::PRIMARY, 0.0, b.total_s());
        let mut t = 0.0;
        for (name, dur) in [
            ("pipeline.queue_wait", b.queue_wait_s),
            ("pipeline.compress", b.compression_s),
            ("pipeline.group", b.grouping_s),
            ("pipeline.transfer", b.transfer_s),
            ("pipeline.decompress", b.decompression_s),
        ] {
            obs.sim_child(root, name, job, crate::lanes::PRIMARY, t, t + dur);
            t += dur;
        }
        Self::observe_breakdown(&obs, b);
        obs.inc(&format!("ocelot_core_runs_{strategy}_total"), "Pipeline runs completed, by strategy");
    }

    /// Feeds one breakdown into the shared per-phase histograms.
    fn observe_breakdown(obs: &ocelot_obs::Obs, b: &TimeBreakdown) {
        obs.observe("ocelot_core_queue_wait_seconds", "Simulated batch-queue wait per pipeline run", b.queue_wait_s);
        obs.observe("ocelot_core_compression_seconds", "Simulated compression phase per pipeline run", b.compression_s);
        obs.observe("ocelot_core_grouping_seconds", "Simulated grouping phase per pipeline run", b.grouping_s);
        obs.observe("ocelot_core_transfer_seconds", "Simulated WAN transfer phase per pipeline run", b.transfer_s);
        obs.observe(
            "ocelot_core_decompression_seconds",
            "Simulated decompression phase per pipeline run",
            b.decompression_s,
        );
        obs.observe("ocelot_core_total_seconds", "Simulated end-to-end pipeline duration", b.total_s());
        obs.add(
            "ocelot_core_bytes_transferred_total",
            "Bytes offered to the WAN by pipeline runs",
            b.bytes_transferred,
        );
    }

    /// Runs one pipeline like [`Orchestrator::run`], additionally reporting
    /// the transfer leg's fault/retry detail from [`PipelineOptions::faults`]
    /// — which files needed retries, which were abandoned, and how many
    /// bytes the failed attempts wasted.
    ///
    /// # Panics
    /// Panics if `from == to` or node counts are zero.
    pub fn run_detailed(
        &self,
        workload: &Workload,
        from: SiteId,
        to: SiteId,
        strategy: Strategy,
        opts: &PipelineOptions,
    ) -> PipelineOutcome {
        assert!(opts.compress_nodes > 0 && opts.decompress_nodes > 0, "node counts must be positive");
        let route = self.topology.route(from, to);
        let src = self.topology.site(from);
        let dst = self.topology.site(to);

        match strategy {
            Strategy::Direct => {
                let sizes = workload.raw_sizes();
                let faulty = simulate_transfer_with_faults(&sizes, &route.link, &opts.gridftp, &opts.faults, opts.seed);
                let outcome = PipelineOutcome {
                    breakdown: TimeBreakdown {
                        transfer_s: faulty.report.duration_s,
                        bytes_transferred: faulty.report.bytes_total,
                        files_transferred: faulty.report.n_files,
                        ..Default::default()
                    },
                    transfer_retries: faulty.retries,
                    failed_files: faulty.failed_files,
                    wasted_bytes: faulty.wasted_bytes,
                    attempts: faulty.attempts,
                    transfer_sizes: sizes,
                };
                self.record_phases("direct", opts.job, &outcome.breakdown);
                outcome
            }
            Strategy::Compressed | Strategy::CompressedGrouped { .. } => {
                let wait_s = opts.wait_model.sample(opts.seed, 0);
                if opts.sentinel && wait_s > 0.0 {
                    // The sentinel path models a healthy link.
                    let breakdown = sentinel::run_with_wait(self, workload, from, to, strategy, opts, wait_s);
                    self.obs().inc(
                        "ocelot_core_sentinel_switchovers_total",
                        "Runs where the sentinel transferred raw data during the queue wait",
                    );
                    self.record_phases("sentinel", opts.job, &breakdown);
                    return PipelineOutcome {
                        breakdown,
                        transfer_retries: 0,
                        failed_files: Vec::new(),
                        wasted_bytes: 0,
                        attempts: Vec::new(),
                        transfer_sizes: Vec::new(),
                    };
                }

                let comp_cluster = Cluster::new(opts.compress_nodes, src.cores_per_node, src.core_speed);
                let compression_s = self.compression_time(workload, src, &comp_cluster, strategy, opts.codec_threads);

                // Transfer sizes depend on grouping.
                let comp_sizes = workload.compressed_sizes();
                let (sizes, grouping_s): (Vec<u64>, f64) = match strategy {
                    Strategy::CompressedGrouped { group_count, target_bytes } => {
                        let plan = match (group_count, target_bytes) {
                            (Some(n), _) => plan_groups_by_count(comp_sizes.len(), n),
                            (None, Some(b)) => plan_groups(&comp_sizes, b),
                            (None, None) => plan_groups_by_count(comp_sizes.len(), comp_cluster.total_cores()),
                        };
                        let grouped: Vec<u64> = plan.iter().map(|g| g.iter().map(|&i| comp_sizes[i]).sum()).collect();
                        // Grouping cost: the group files are written by one
                        // writer each (MPI ranks coordinate offsets).
                        let total: u64 = grouped.iter().sum();
                        let t = src.fs.write_time_s(total, grouped.len().max(1))
                            - src.fs.write_time_s(total, comp_cluster.total_cores().max(1));
                        (grouped, t.max(0.0))
                    }
                    _ => (comp_sizes, 0.0),
                };

                let faulty = simulate_transfer_with_faults(&sizes, &route.link, &opts.gridftp, &opts.faults, opts.seed);

                let dcores = opts.decompress_cores_per_node.unwrap_or(dst.cores_per_node).min(dst.cores_per_node);
                let decomp_cluster = Cluster::new(opts.decompress_nodes, dcores, dst.core_speed);
                let decompression_s = self.decompression_time(workload, dst, &decomp_cluster, opts.codec_threads);

                let outcome = PipelineOutcome {
                    breakdown: TimeBreakdown {
                        queue_wait_s: wait_s,
                        compression_s,
                        grouping_s,
                        transfer_s: faulty.report.duration_s,
                        decompression_s,
                        bytes_transferred: faulty.report.bytes_total,
                        files_transferred: faulty.report.n_files,
                    },
                    transfer_retries: faulty.retries,
                    failed_files: faulty.failed_files,
                    wasted_bytes: faulty.wasted_bytes,
                    attempts: faulty.attempts,
                    transfer_sizes: sizes,
                };
                let label =
                    if matches!(strategy, Strategy::CompressedGrouped { .. }) { "grouped" } else { "compressed" };
                self.record_phases(label, opts.job, &outcome.breakdown);
                outcome
            }
        }
    }

    /// Runs the *pipelined* compressed transfer (no grouping): each file
    /// starts crossing the WAN as soon as its compression finishes, instead
    /// of waiting for the whole batch — the overlap the paper's Fig 1
    /// describes ("the transfer will move the compressed files to the
    /// target machine once the files are ready").
    ///
    /// The returned breakdown reports the *critical path*: `compression_s`
    /// is the makespan, `transfer_s` the full overlapped duration from t=0
    /// to the last byte, and `total_s` would double-count the overlap —
    /// use [`TimeBreakdown::transfer_s`] + `decompression_s` +
    /// `queue_wait_s` as the pipelined end-to-end time, available from
    /// [`Orchestrator::overlapped_total_s`].
    ///
    /// # Panics
    /// Panics if `from == to` or node counts are zero.
    pub fn run_overlapped(
        &self,
        workload: &Workload,
        from: SiteId,
        to: SiteId,
        opts: &PipelineOptions,
    ) -> TimeBreakdown {
        assert!(opts.compress_nodes > 0 && opts.decompress_nodes > 0, "node counts must be positive");
        let route = self.topology.route(from, to);
        let src = self.topology.site(from);
        let dst = self.topology.site(to);
        let wait_s = opts.wait_model.sample(opts.seed, 0);

        let comp_cluster = Cluster::new(opts.compress_nodes, src.cores_per_node, src.core_speed);
        let (work, lanes) = codec_scaled(&workload.compression_work(), comp_cluster.total_cores(), opts.codec_threads);
        let completions = comp_cluster.completion_times(&work, lanes);
        // Source reads throttle the start of the pipeline; approximate by
        // shifting every release by the per-file share of read time.
        let read_s = src.fs.read_time_s(workload.total_bytes(), comp_cluster.total_cores());
        let stretch = if completions.iter().cloned().fold(0.0f64, f64::max) > 0.0 {
            (read_s / completions.iter().cloned().fold(0.0f64, f64::max)).max(0.0)
        } else {
            0.0
        };
        let releases: Vec<f64> = completions.iter().map(|c| wait_s + c * (1.0 + stretch)).collect();

        // The transfer service picks up files in the order they appear on
        // disk, so feed the simulation release-sorted (otherwise an early
        // slot in the submission order with a late release would block the
        // control channel head-of-line).
        let sizes = workload.compressed_sizes();
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by(|&a, &b| releases[a].partial_cmp(&releases[b]).expect("finite releases"));
        let sorted_sizes: Vec<u64> = order.iter().map(|&i| sizes[i]).collect();
        let sorted_releases: Vec<f64> = order.iter().map(|&i| releases[i]).collect();
        let detail =
            simulate_transfer_detailed(&sorted_sizes, Some(&sorted_releases), &route.link, &opts.gridftp, opts.seed);
        let report = detail.report;

        let dcores = opts.decompress_cores_per_node.unwrap_or(dst.cores_per_node).min(dst.cores_per_node);
        let decomp_cluster = Cluster::new(opts.decompress_nodes, dcores, dst.core_speed);
        let decompression_s = self.decompression_time(workload, dst, &decomp_cluster, opts.codec_threads);

        let breakdown = TimeBreakdown {
            queue_wait_s: wait_s,
            compression_s: comp_cluster.parallel_makespan(&work, lanes),
            grouping_s: 0.0,
            transfer_s: report.duration_s,
            decompression_s,
            bytes_transferred: report.bytes_total,
            files_transferred: report.n_files,
        };
        // Overlapped runs put compression and transfer on *overlapping*
        // timelines: the transfer occupies lane 0 from the queue grant to the
        // last byte while compression runs concurrently on lane 1 — the
        // span tree shows the overlap instead of pretending the phases are
        // additive.
        let obs = self.obs();
        if obs.is_enabled() {
            use crate::lanes::{OVERLAP, PRIMARY};
            let end = Self::overlapped_total_s(&breakdown);
            let root = obs.sim_span("pipeline.overlapped", opts.job, PRIMARY, 0.0, end);
            obs.sim_child(root, "pipeline.queue_wait", opts.job, PRIMARY, 0.0, wait_s);
            obs.sim_child(
                root,
                "pipeline.transfer",
                opts.job,
                PRIMARY,
                wait_s.min(breakdown.transfer_s),
                breakdown.transfer_s,
            );
            obs.sim_child(
                root,
                "pipeline.compress",
                opts.job,
                OVERLAP,
                wait_s,
                (wait_s + breakdown.compression_s).min(end),
            );
            obs.sim_child(
                root,
                "pipeline.decompress",
                opts.job,
                PRIMARY,
                breakdown.transfer_s,
                breakdown.transfer_s + decompression_s,
            );
            Self::observe_breakdown(&obs, &breakdown);
            obs.inc("ocelot_core_runs_overlapped_total", "Pipeline runs completed, by strategy");
        }
        // File-grain ledger events (chunk 0 of every file): the same phase
        // boundaries the span tree records, then compress → release → wire →
        // batch decode per file, so window-0 / overlapped jobs still
        // reconstruct into timelines.
        if let Some(job) = opts.job {
            if let Some(led) = self.ledger() {
                let ledger_emit = |k: EventKind, d: Draft| Some(led.append(k, d));
                let end = Self::overlapped_total_s(&breakdown);
                let begin = ledger_emit(EventKind::JobBegin, Draft::job(job, 0.0));
                ledger_emit(EventKind::TransferBegin, Draft { parent: begin, ..Draft::job(job, wait_s) });
                for (m, &i) in order.iter().enumerate() {
                    let enc = sorted_releases[m];
                    let dur = work[i].max(0.0) / src.core_speed;
                    let d = |t: f64| Draft { t_sim: Some(t), bytes: sorted_sizes[m], ..Draft::chunk(job, i as u32, 0) };
                    let cb = (enc - dur * (1.0 + stretch)).max(wait_s).min(enc);
                    let p = ledger_emit(EventKind::CompressBegin, Draft { parent: begin, ..d(cb) });
                    let p = ledger_emit(EventKind::Encoded, Draft { parent: p, ..d(enc) });
                    let p = ledger_emit(EventKind::Released, Draft { parent: p, ..d(enc) });
                    let sent = detail.start_s[m].max(enc);
                    let landed = detail.completion_s[m].max(sent);
                    let p = ledger_emit(EventKind::InFlight, Draft { parent: p, ..d(sent) });
                    let p = ledger_emit(EventKind::Arrived, Draft { parent: p, attempt: 1, ..d(landed) });
                    // Batch decompression starts when the whole transfer
                    // lands; early arrivals sit in the reorder buffer.
                    let p = if breakdown.transfer_s > landed + 1e-9 {
                        let p = ledger_emit(
                            EventKind::ReorderEnter,
                            Draft { parent: p, cause: Some("awaiting batch decompression".to_string()), ..d(landed) },
                        );
                        ledger_emit(EventKind::ReorderExit, Draft { parent: p, ..d(breakdown.transfer_s) })
                    } else {
                        p
                    };
                    let p =
                        ledger_emit(EventKind::DecodeBegin, Draft { parent: p, ..d(breakdown.transfer_s.max(landed)) });
                    ledger_emit(
                        EventKind::DecodeEnd,
                        Draft { parent: p, ..d((breakdown.transfer_s + decompression_s).max(landed)) },
                    );
                }
                let p = ledger_emit(
                    EventKind::TransferEnd,
                    Draft { parent: begin, ..Draft::job(job, breakdown.transfer_s) },
                );
                ledger_emit(EventKind::JobEnd, Draft { parent: p, ..Draft::job(job, end) });
            }
        }
        breakdown
    }

    /// End-to-end time of a pipelined run from [`Orchestrator::run_overlapped`]:
    /// the overlapped transfer duration (which already covers queueing and
    /// compression on its critical path) plus decompression.
    pub fn overlapped_total_s(breakdown: &TimeBreakdown) -> f64 {
        breakdown.transfer_s + breakdown.decompression_s
    }

    /// Runs the *streamed* chunk pipeline: every compressed chunk enters the
    /// WAN as soon as it is encoded, decompression of each chunk starts the
    /// moment it lands, and a bounded window of
    /// [`PipelineOptions::stream_window`] chunks caps what sits between the
    /// compressor and the far-side decoder (back-pressure; memory stays
    /// O(window) per lane). Chunk `j` of a file becomes ready at the
    /// proportional point of its file's compression interval, mirroring the
    /// real engine's in-order chunk completion.
    ///
    /// `stream_window == 0` degenerates to [`Orchestrator::run_overlapped`]
    /// (file-grain pipelining, batch decompression) — the staged case.
    ///
    /// Like `run_overlapped`, the breakdown reports the critical path:
    /// `transfer_s` spans t=0 to the last chunk's arrival and
    /// `decompression_s` is only the *tail* that streaming could not hide
    /// behind the transfer, so [`Orchestrator::overlapped_total_s`] is the
    /// end-to-end time. Back-pressure stalls (a chunk ready but waiting for
    /// window space) are recorded as `pipeline.transfer.stream_stall` spans
    /// so critical-path analysis attributes them separately from transfer.
    ///
    /// # Panics
    /// Panics if `from == to` or node counts are zero.
    pub fn run_streamed(&self, workload: &Workload, from: SiteId, to: SiteId, opts: &PipelineOptions) -> TimeBreakdown {
        assert!(opts.compress_nodes > 0 && opts.decompress_nodes > 0, "node counts must be positive");
        let sizes = workload.compressed_sizes();
        if opts.stream_window == 0 || sizes.is_empty() {
            return self.run_overlapped(workload, from, to, opts);
        }
        let route = self.topology.route(from, to);
        let src = self.topology.site(from);
        let dst = self.topology.site(to);
        let wait_s = opts.wait_model.sample(opts.seed, 0);

        let comp_cluster = Cluster::new(opts.compress_nodes, src.cores_per_node, src.core_speed);
        let (work, lanes) = codec_scaled(&workload.compression_work(), comp_cluster.total_cores(), opts.codec_threads);
        let completions = comp_cluster.completion_times(&work, lanes);
        let makespan = comp_cluster.parallel_makespan(&work, lanes);
        let read_s = src.fs.read_time_s(workload.total_bytes(), comp_cluster.total_cores());
        let latest = completions.iter().cloned().fold(0.0f64, f64::max);
        let stretch = if latest > 0.0 { (read_s / latest).max(0.0) } else { 0.0 };

        // Each file splits into the engine's chunk count; chunk j finishes
        // encoding at the proportional point of the file's compute interval.
        let k = if opts.codec_threads <= 1 { 1 } else { opts.codec_threads * 2 };
        // (ready, payload bytes, file, chunk index, compress-begin)
        let mut chunks: Vec<(f64, u64, u32, u32, f64)> = Vec::with_capacity(sizes.len() * k);
        for (i, &size) in sizes.iter().enumerate() {
            let dur = work[i].max(0.0) / src.core_speed;
            let base = size / k as u64;
            let rem = (size % k as u64) as usize;
            for j in 0..k {
                let ready = wait_s + (completions[i] - dur * (k - 1 - j) as f64 / k as f64) * (1.0 + stretch);
                let begin = wait_s + (completions[i] - dur * (k - j) as f64 / k as f64) * (1.0 + stretch);
                let csize = base + u64::from(j < rem);
                let ready = ready.max(wait_s);
                chunks.push((ready, csize, i as u32, j as u32, begin.max(wait_s).min(ready)));
            }
        }
        chunks.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ready times"));
        let ready: Vec<f64> = chunks.iter().map(|c| c.0).collect();
        let payload: Vec<u64> = chunks.iter().map(|c| c.1).collect();

        // Per-chunk WAN fault injection: the same deterministic draws the
        // staged fault path makes, at chunk granularity. Every failed
        // attempt re-sends the partial payload the link had moved, so the
        // wire carries the inflated byte count; chunks are always delivered
        // in the end (resume-on-abandon is future work), an exhausted retry
        // budget just degrades to one more re-send.
        let injecting = opts.faults.per_attempt_failure_prob > 0.0;
        let draws: Vec<FaultDraw> = if injecting {
            (0..payload.len()).map(|m| draw_faults(&opts.faults, opts.seed, m)).collect()
        } else {
            Vec::new()
        };
        let mut wasted = 0u64;
        let mut chunk_retries = 0u64;
        let wire: Vec<u64> = if injecting {
            payload
                .iter()
                .zip(&draws)
                .map(|(&size, draw)| {
                    let extra: u64 = draw.failed_fracs.iter().map(|f| (size as f64 * f) as u64).sum();
                    wasted += extra;
                    chunk_retries += draw.failed_fracs.len() as u64;
                    size + extra
                })
                .collect()
        } else {
            payload.clone()
        };

        // Window-W back-pressure fixpoint: chunk m cannot ship before chunk
        // m−W has fully landed. Releasing later only delays completions, so
        // the iteration is monotone; it converges once no release moves.
        let window = opts.stream_window;
        let mut release = ready.clone();
        let mut detail = simulate_transfer_detailed(&wire, Some(&release), &route.link, &opts.gridftp, opts.seed);
        for _ in 0..32 {
            let mut changed = false;
            for m in window..release.len() {
                let want = ready[m].max(detail.completion_s[m - window]);
                if want > release[m] + 1e-6 {
                    release[m] = want;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            detail = simulate_transfer_detailed(&wire, Some(&release), &route.link, &opts.gridftp, opts.seed);
        }
        let transfer_s = detail.report.duration_s;

        // Merged stall intervals (a chunk encoded but blocked on the window).
        let mut stalls: Vec<(f64, f64)> =
            ready.iter().zip(&release).filter(|(r, l)| **l > **r + 1e-9).map(|(&r, &l)| (r, l)).collect();
        stalls.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite stall times"));
        let mut stall_iv: Vec<(f64, f64)> = Vec::new();
        for (a, b) in stalls {
            match stall_iv.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => stall_iv.push((a, b)),
            }
        }
        let stall_total: f64 = stall_iv.iter().map(|(a, b)| b - a).sum();

        // Decompress each chunk on arrival: greedy least-loaded destination
        // core, gated on the chunk's landing time (the simulated twin of
        // `FaasEndpoint::invoke_chunked_released`).
        let dcores = opts.decompress_cores_per_node.unwrap_or(dst.cores_per_node).min(dst.cores_per_node);
        let decomp_cluster = Cluster::new(opts.decompress_nodes, dcores, dst.core_speed);
        let dwork = workload.decompression_work();
        // Decode work follows the chunks in arrival (ready-sorted) order, so
        // each decode duration pairs with its own chunk's landing time.
        let dchunk: Vec<f64> =
            chunks.iter().map(|c| dwork[c.2 as usize].max(0.0) / k as f64 / dst.core_speed).collect();
        let mut dlanes = vec![f64::NEG_INFINITY; decomp_cluster.total_cores().min(dchunk.len().max(1))];
        let mut first_decode = f64::INFINITY;
        let mut decomp_finish = transfer_s;
        let mut dsched: Vec<(f64, f64)> = Vec::with_capacity(dchunk.len());
        for (m, &dur) in dchunk.iter().enumerate() {
            let arrival = detail.completion_s[m];
            let (lane, free) =
                dlanes.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, &t)| (i, t)).expect("lanes");
            let start = free.max(arrival);
            first_decode = first_decode.min(start);
            dlanes[lane] = start + dur;
            decomp_finish = decomp_finish.max(start + dur);
            dsched.push((start, start + dur));
        }
        let total = decomp_finish.max(transfer_s);

        let breakdown = TimeBreakdown {
            queue_wait_s: wait_s,
            compression_s: makespan,
            grouping_s: 0.0,
            transfer_s,
            decompression_s: (total - transfer_s).max(0.0),
            // Wire bytes include retransmitted partials; the payload that
            // actually landed is what the breakdown accounts, mirroring
            // `simulate_transfer_with_faults`.
            bytes_transferred: detail.report.bytes_total.saturating_sub(wasted),
            files_transferred: sizes.len(),
        };
        let obs = self.obs();
        if obs.is_enabled() {
            use crate::lanes::{OVERLAP, PRIMARY};
            let root = obs.sim_span("pipeline.streamed", opts.job, PRIMARY, 0.0, total);
            obs.sim_child(root, "pipeline.queue_wait", opts.job, PRIMARY, 0.0, wait_s);
            let transfer =
                obs.sim_child(root, "pipeline.transfer", opts.job, PRIMARY, wait_s.min(transfer_s), transfer_s);
            for &(a, b) in &stall_iv {
                let (a, b) = (a.max(wait_s), b.min(transfer_s));
                if b > a {
                    obs.sim_child(transfer, "pipeline.transfer.stream_stall", opts.job, PRIMARY, a, b);
                }
            }
            obs.sim_child(root, "pipeline.compress", opts.job, OVERLAP, wait_s, (wait_s + makespan).min(total));
            if first_decode.is_finite() && first_decode < transfer_s {
                obs.sim_child(
                    root,
                    "pipeline.decompress",
                    opts.job,
                    OVERLAP,
                    first_decode,
                    decomp_finish.min(transfer_s),
                );
            }
            if total > transfer_s {
                obs.sim_child(root, "pipeline.decompress", opts.job, PRIMARY, transfer_s, total);
            }
            Self::observe_breakdown(&obs, &breakdown);
            obs.inc("ocelot_core_runs_streamed_total", "Pipeline runs completed, by strategy");
            obs.add(
                "ocelot_core_stream_stalls_total",
                "Back-pressure stall intervals in streamed runs",
                stall_iv.len() as u64,
            );
            obs.observe(
                "ocelot_core_stream_stall_seconds",
                "Union of back-pressure stall time per streamed run",
                stall_total,
            );
            obs.add("ocelot_chunk_transfers_total", "Chunks offered to the WAN by streamed runs", payload.len() as u64);
            obs.add(
                "ocelot_chunk_retries_total",
                "Failed chunk transfer attempts re-sent in streamed runs",
                chunk_retries,
            );
            for (r, l) in ready.iter().zip(&release) {
                if *l > *r + 1e-9 {
                    obs.observe("ocelot_chunk_stall_seconds", "Back-pressure stall per chunk in streamed runs", l - r);
                }
            }
        }
        // Chunk-lifecycle ledger: one causal event chain per chunk, with the
        // job-phase boundaries pinned to the same values the span tree uses
        // so replayed timelines agree with critpath stage sums.
        if let Some(job) = opts.job {
            if let Some(led) = self.ledger() {
                let ledger_emit = |k: EventKind, d: Draft| Some(led.append(k, d));
                let begin = ledger_emit(EventKind::JobBegin, Draft::job(job, 0.0));
                ledger_emit(EventKind::TransferBegin, Draft { parent: begin, ..Draft::job(job, wait_s) });
                for m in 0..payload.len() {
                    let (file, chunk) = (chunks[m].2, chunks[m].3);
                    let d = |t: f64| Draft { t_sim: Some(t), bytes: payload[m], ..Draft::chunk(job, file, chunk) };
                    let p = ledger_emit(EventKind::CompressBegin, Draft { parent: begin, ..d(chunks[m].4) });
                    let p = ledger_emit(EventKind::Encoded, Draft { parent: p, ..d(ready[m]) });
                    let p = if release[m] > ready[m] + 1e-9 {
                        let p = ledger_emit(
                            EventKind::WindowWait,
                            Draft { parent: p, cause: Some("stream window full".to_string()), ..d(ready[m]) },
                        );
                        ledger_emit(EventKind::Released, Draft { parent: p, ..d(release[m]) })
                    } else {
                        ledger_emit(EventKind::Released, Draft { parent: p, ..d(release[m]) })
                    };
                    let sent = detail.start_s[m].max(release[m]);
                    let landed = detail.completion_s[m].max(sent);
                    let mut p = ledger_emit(EventKind::InFlight, Draft { parent: p, ..d(sent) });
                    let mut fails = 0u32;
                    if injecting && !draws[m].failed_fracs.is_empty() {
                        // Divide the wire interval by bytes moved: each
                        // failed attempt occupies its partial payload's
                        // share, the final (successful) attempt the rest.
                        let fracs = &draws[m].failed_fracs;
                        let denom = 1.0 + fracs.iter().sum::<f64>();
                        let mut cum = 0.0;
                        for (a, &frac) in fracs.iter().enumerate() {
                            let t0 = sent + (landed - sent) * cum / denom;
                            cum += frac;
                            let t1 = sent + (landed - sent) * cum / denom;
                            let fault = ledger_emit(
                                EventKind::Fault,
                                Draft {
                                    parent: p,
                                    cause: Some(opts.faults.describe()),
                                    attempt: a as u32 + 1,
                                    bytes: (payload[m] as f64 * frac) as u64,
                                    ..d(t0)
                                },
                            );
                            p = ledger_emit(
                                EventKind::Retransmit,
                                Draft { parent: fault, attempt: a as u32 + 2, ..d(t1) },
                            );
                        }
                        fails = fracs.len() as u32;
                    }
                    let p = ledger_emit(EventKind::Arrived, Draft { parent: p, attempt: fails + 1, ..d(landed) });
                    let (ds, de) = dsched[m];
                    let p = if ds > landed + 1e-9 {
                        let p = ledger_emit(
                            EventKind::ReorderEnter,
                            Draft { parent: p, cause: Some("decode lanes busy".to_string()), ..d(landed) },
                        );
                        ledger_emit(EventKind::ReorderExit, Draft { parent: p, ..d(ds) })
                    } else {
                        p
                    };
                    let start = ds.max(landed);
                    let p = ledger_emit(EventKind::DecodeBegin, Draft { parent: p, ..d(start) });
                    ledger_emit(EventKind::DecodeEnd, Draft { parent: p, ..d(de.max(start)) });
                }
                let p = ledger_emit(EventKind::TransferEnd, Draft { parent: begin, ..Draft::job(job, transfer_s) });
                ledger_emit(EventKind::JobEnd, Draft { parent: p, ..Draft::job(job, total) });
            }
        }
        breakdown
    }

    /// Compression phase: compute makespan overlapped with source reads,
    /// plus writing the compressed output. Each file runs on
    /// `codec_threads` chunk-parallel cores (one simulated lane).
    pub fn compression_time(
        &self,
        workload: &Workload,
        src: &ocelot_netsim::Site,
        cluster: &Cluster,
        strategy: Strategy,
        codec_threads: usize,
    ) -> f64 {
        let (work, lanes) = codec_scaled(&workload.compression_work(), cluster.total_cores(), codec_threads);
        let makespan = cluster.parallel_makespan(&work, lanes);
        let read = src.fs.read_time_s(workload.total_bytes(), cluster.total_cores());
        let comp_total: u64 = workload.compressed_sizes().iter().sum();
        let writers = match strategy {
            Strategy::CompressedGrouped { .. } => cluster.total_cores(), // grouped write accounted separately
            _ => cluster.total_cores(),
        };
        makespan.max(read) + src.fs.write_time_s(comp_total, writers.max(1))
    }

    /// Decompression phase: compute makespan overlapped with compressed-file
    /// reads, plus the contended write of the restored data (Fig 9). Chunked
    /// blobs decode on `codec_threads` cores per file.
    pub fn decompression_time(
        &self,
        workload: &Workload,
        dst: &ocelot_netsim::Site,
        cluster: &Cluster,
        codec_threads: usize,
    ) -> f64 {
        let (work, lanes) = codec_scaled(&workload.decompression_work(), cluster.total_cores(), codec_threads);
        let makespan = cluster.parallel_makespan(&work, lanes);
        let comp_total: u64 = workload.compressed_sizes().iter().sum();
        let read = dst.fs.read_time_s(comp_total, cluster.total_cores());
        makespan.max(read) + dst.fs.write_time_s(workload.total_bytes(), cluster.total_cores())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::LossyConfig;

    fn miranda() -> Workload {
        Workload::miranda(LossyConfig::sz3(1e-2), 32).unwrap()
    }

    #[test]
    fn compression_beats_direct_on_slow_route() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let opts = PipelineOptions::default();
        let np = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Direct, &opts);
        let cp = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &opts);
        assert!(cp.total_s() < np.total_s(), "cp={} np={}", cp.total_s(), np.total_s());
        assert!(cp.bytes_transferred < np.bytes_transferred / 2);
        assert!(cp.reduction_vs(np.total_s()) > 0.3, "reduction {}", cp.reduction_vs(np.total_s()));
    }

    #[test]
    fn grouping_into_too_few_files_hurts_miranda() {
        // Table VIII: Miranda OP (8 groups) transfers slower than CP on the
        // fast Anvil→Cori route.
        let orch = Orchestrator::paper();
        let w = miranda();
        let opts = PipelineOptions::default();
        let cp = orch.run(&w, SiteId::Anvil, SiteId::Cori, Strategy::Compressed, &opts);
        let op = orch.run(&w, SiteId::Anvil, SiteId::Cori, Strategy::grouped_by_count(8), &opts);
        assert!(
            op.transfer_s > cp.transfer_s,
            "op transfer {} should exceed cp transfer {}",
            op.transfer_s,
            cp.transfer_s
        );
    }

    #[test]
    fn queue_wait_appears_in_breakdown() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let opts = PipelineOptions { wait_model: ocelot_faas::WaitTimeModel::Fixed(100.0), ..Default::default() };
        let cp = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &opts);
        assert_eq!(cp.queue_wait_s, 100.0);
        assert!(cp.total_s() > 100.0);
    }

    #[test]
    fn direct_strategy_has_no_compute_phases() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let np = orch.run(&w, SiteId::Bebop, SiteId::Cori, Strategy::Direct, &PipelineOptions::default());
        assert_eq!(np.compression_s, 0.0);
        assert_eq!(np.decompression_s, 0.0);
        assert_eq!(np.files_transferred, 768);
    }

    #[test]
    fn more_decompress_nodes_can_hurt() {
        // Fig 9: filesystem contention makes decompression slower at high
        // node counts.
        let orch = Orchestrator::paper();
        let w = miranda();
        let mk = |nodes| PipelineOptions {
            decompress_nodes: nodes,
            decompress_cores_per_node: None, // all 128 cores per node
            ..Default::default()
        };
        let few = orch.run(&w, SiteId::Bebop, SiteId::Anvil, Strategy::Compressed, &mk(2));
        let many = orch.run(&w, SiteId::Bebop, SiteId::Anvil, Strategy::Compressed, &mk(64));
        assert!(
            many.decompression_s > few.decompression_s,
            "many={} few={}",
            many.decompression_s,
            few.decompression_s
        );
    }

    #[test]
    fn overlapped_pipeline_beats_additive_accounting() {
        // Overlap pays off when compression and transfer are comparable:
        // RTM from Bebop (slow KNL-era cores) toward Cori.
        let orch = Orchestrator::paper();
        let w = Workload::rtm(ocelot_sz::LossyConfig::sz3(1e-2), 24).unwrap();
        let opts = PipelineOptions::default();
        let additive = orch.run(&w, SiteId::Bebop, SiteId::Cori, Strategy::Compressed, &opts);
        let overlapped = orch.run_overlapped(&w, SiteId::Bebop, SiteId::Cori, &opts);
        let additive_total = additive.total_s();
        let overlapped_total = Orchestrator::overlapped_total_s(&overlapped);
        assert!(overlapped_total < additive_total * 0.85, "overlapped {overlapped_total} vs additive {additive_total}");
        // Same bytes cross the wire either way.
        assert_eq!(overlapped.bytes_transferred, additive.bytes_transferred);
        // The overlapped transfer cannot finish before compression's makespan.
        assert!(overlapped.transfer_s >= overlapped.compression_s * 0.99);
    }

    #[test]
    fn overlapped_pipeline_respects_queue_wait() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let opts = PipelineOptions { wait_model: ocelot_faas::WaitTimeModel::Fixed(50.0), ..Default::default() };
        let b = orch.run_overlapped(&w, SiteId::Anvil, SiteId::Cori, &opts);
        assert!(b.transfer_s >= 50.0, "transfer window {} must cover the wait", b.transfer_s);
    }

    #[test]
    fn faults_slow_the_transfer_and_record_retries() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let healthy = PipelineOptions::default();
        let flaky = PipelineOptions { faults: FaultModel::flaky(0.3), ..Default::default() };
        let h = orch.run_detailed(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &healthy);
        let f = orch.run_detailed(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &flaky);
        assert_eq!(h.transfer_retries, 0);
        assert!(h.delivered());
        assert!(h.attempts.iter().all(|&a| a == 1));
        assert!(f.transfer_retries > 0);
        assert!(f.wasted_bytes > 0);
        assert!(f.breakdown.transfer_s > h.breakdown.transfer_s);
        // Compute phases are unaffected by WAN faults.
        assert_eq!(f.breakdown.compression_s, h.breakdown.compression_s);
        assert_eq!(f.breakdown.decompression_s, h.breakdown.decompression_s);
    }

    #[test]
    fn healthy_faults_leave_run_unchanged() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let opts = PipelineOptions::default();
        for strategy in [Strategy::Direct, Strategy::Compressed, Strategy::grouped_by_count(16)] {
            let outcome = orch.run_detailed(&w, SiteId::Anvil, SiteId::Cori, strategy, &opts);
            let plain = orch.run(&w, SiteId::Anvil, SiteId::Cori, strategy, &opts);
            assert_eq!(outcome.breakdown, plain);
            assert!(outcome.delivered());
            assert_eq!(outcome.transfer_retries, 0);
            assert_eq!(outcome.wasted_bytes, 0);
        }
    }

    #[test]
    fn codec_threads_shrink_the_compute_phases() {
        // Compression at Anvil (16 × 128 cores > 768 files) is latency-bound:
        // per-file codec threads cut the makespan. Decompression at Bebop
        // (8 × 32 cores < 768 files) is throughput-bound, so threading files
        // there can only cost the Amdahl serial fraction — never more.
        let orch = Orchestrator::paper();
        let w = miranda();
        let serial = PipelineOptions::default();
        let chunked = PipelineOptions { codec_threads: 4, ..Default::default() };
        let s = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &serial);
        let c = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &chunked);
        assert!(c.compression_s < s.compression_s, "chunked {} vs serial {}", c.compression_s, s.compression_s);
        let overhead = 4.0 / codec_speedup(4); // 1 + serial_fraction * 3
        assert!(
            c.decompression_s <= s.decompression_s * overhead + 1e-9,
            "saturated decompression {} vs serial {} (allowed x{overhead:.3})",
            c.decompression_s,
            s.decompression_s
        );
        // Transfer is unaffected: the same compressed bytes cross the WAN.
        assert_eq!(c.transfer_s, s.transfer_s);
        assert_eq!(c.bytes_transferred, s.bytes_transferred);

        // Give the destination enough lanes (64 × 36 cores > 768 files) and
        // decompression becomes latency-bound too: codec threads now help.
        let wide = |codec_threads| PipelineOptions {
            decompress_nodes: 64,
            decompress_cores_per_node: None,
            codec_threads,
            ..Default::default()
        };
        let ws = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &wide(1));
        let wc = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &wide(4));
        assert!(
            wc.decompression_s < ws.decompression_s,
            "wide chunked {} vs serial {}",
            wc.decompression_s,
            ws.decompression_s
        );
    }

    #[test]
    fn codec_speedup_is_near_linear_but_sublinear() {
        assert_eq!(codec_speedup(1), 1.0);
        let s4 = codec_speedup(4);
        let s8 = codec_speedup(8);
        assert!(s4 > 3.0 && s4 < 4.0, "4-thread speedup {s4}");
        assert!(s8 > s4 && s8 < 8.0, "8-thread speedup {s8}");
    }

    #[test]
    fn streamed_window_zero_is_the_overlapped_degenerate_case() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let opts = PipelineOptions::default();
        let overlapped = orch.run_overlapped(&w, SiteId::Bebop, SiteId::Cori, &opts);
        let streamed = orch.run_streamed(&w, SiteId::Bebop, SiteId::Cori, &opts);
        assert_eq!(streamed, overlapped, "stream_window = 0 must be the staged/overlapped case");
    }

    #[test]
    fn streamed_pipeline_beats_staged_accounting() {
        // The acceptance gate: chunk streaming with a bounded window must
        // not be slower than the staged (additive) pipeline, and hiding the
        // decompression behind the transfer should beat even file-grain
        // overlap on a compute-heavy route.
        let orch = Orchestrator::paper();
        let w = Workload::rtm(ocelot_sz::LossyConfig::sz3(1e-2), 24).unwrap();
        let staged_opts = PipelineOptions::default();
        let staged = orch.run(&w, SiteId::Bebop, SiteId::Cori, Strategy::Compressed, &staged_opts);
        for window in [4usize, 64] {
            let opts = PipelineOptions { stream_window: window, codec_threads: 4, ..Default::default() };
            let streamed = orch.run_streamed(&w, SiteId::Bebop, SiteId::Cori, &opts);
            let streamed_total = Orchestrator::overlapped_total_s(&streamed);
            assert!(
                streamed_total <= staged.total_s(),
                "window {window}: streamed {streamed_total} vs staged {}",
                staged.total_s()
            );
            // Same payload crosses the wire (chunking preserves byte totals).
            assert_eq!(streamed.bytes_transferred, staged.bytes_transferred);
            assert_eq!(streamed.files_transferred, staged.files_transferred);
        }
        // A wider window can only help (less back-pressure).
        let narrow = PipelineOptions { stream_window: 2, codec_threads: 4, ..Default::default() };
        let wide = PipelineOptions { stream_window: 512, codec_threads: 4, ..Default::default() };
        let tn = Orchestrator::overlapped_total_s(&orch.run_streamed(&w, SiteId::Bebop, SiteId::Cori, &narrow));
        let tw = Orchestrator::overlapped_total_s(&orch.run_streamed(&w, SiteId::Bebop, SiteId::Cori, &wide));
        assert!(tw <= tn + 1e-6, "wide {tw} vs narrow {tn}");
    }

    #[test]
    fn streamed_run_records_stall_spans_on_the_critical_path() {
        let obs = ocelot_obs::Obs::enabled();
        let orch = Orchestrator::paper().with_obs(obs.clone());
        let w = Workload::rtm(ocelot_sz::LossyConfig::sz3(1e-2), 24).unwrap();
        // A tight window over a slow route forces back-pressure stalls.
        let opts = PipelineOptions { stream_window: 1, codec_threads: 4, job: Some(42), ..Default::default() };
        let b = orch.run_streamed(&w, SiteId::Anvil, SiteId::Bebop, &opts);
        let spans = obs.recorder().expect("enabled obs records spans").for_job(42);
        assert!(spans.iter().any(|s| s.name == "pipeline.transfer.stream_stall"), "tight window must stall");
        let report = ocelot_obs::critpath::analyze(&spans).expect("sim spans recorded");
        let stall = report.stage(ocelot_obs::critpath::Stage::Stall);
        assert!(stall > 0.0, "stall time must be attributed distinctly");
        // Per-stage attribution must sum to the critical path (within 1%).
        let sum: f64 = report.stage_s.iter().sum();
        assert!((sum - report.critical_path_s).abs() <= 0.01 * report.critical_path_s.max(1.0));
        assert!(report.critical_path_s >= Orchestrator::overlapped_total_s(&b) - 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let orch = Orchestrator::paper();
        let w = miranda();
        let opts = PipelineOptions::default();
        let a = orch.run(&w, SiteId::Anvil, SiteId::Cori, Strategy::Compressed, &opts);
        let b = orch.run(&w, SiteId::Anvil, SiteId::Cori, Strategy::Compressed, &opts);
        assert_eq!(a, b);
    }
}
