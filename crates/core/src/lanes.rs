//! Shared span-lane labels.
//!
//! A span's `lane` maps to the `tid` row in Chrome traces and breaks ties in
//! the critical-path sweep (lower lane wins an overlap window). These
//! constants keep core, sentinel, and service layers on one convention
//! instead of scattering magic numbers:
//!
//! - [`PRIMARY`] — the job's experienced timeline: queue wait, transfer,
//!   decompress, and additive-pipeline phases.
//! - [`OVERLAP`] — work hidden behind the primary lane, e.g. compression
//!   running concurrently with an overlapped transfer.
//! - [`SERVICE`] — the service envelope above the pipeline: job lifetime,
//!   retry rounds, backoff.

/// The job's experienced timeline (wins critical-path ties).
pub const PRIMARY: u32 = 0;

/// Concurrent work overlapped behind the primary lane.
pub const OVERLAP: u32 = 1;

/// Service-layer envelopes: job lifetime, retries, backoff.
pub const SERVICE: u32 = 2;
