//! # Ocelot — wide-area data transfer with error-bounded lossy compression
//!
//! Reproduction of *"Optimizing Scientific Data Transfer on Globus with
//! Error-bounded Lossy Compression"* (Liu, Di, Chard, Foster, Cappello —
//! ICDCS 2023). Ocelot inserts transparent error-bounded lossy compression
//! into the Globus transfer pipeline:
//!
//! 1. a **quality predictor** (decision-tree model over cheap features)
//!    chooses a compressor configuration meeting the user's distortion or
//!    ratio requirement without trial compression;
//! 2. **parallel compression** on source-side compute nodes (provisioned via
//!    a FuncX-style FaaS fabric) shrinks the data before it crosses the WAN;
//! 3. a **sentinel** transfers data uncompressed while compression jobs wait
//!    in the batch queue, so queueing can never make Ocelot slower than a
//!    plain transfer;
//! 4. **file grouping** packs many small compressed files into a few large
//!    archives, recovering the per-file handling costs that would otherwise
//!    erase the benefit of smaller files.
//!
//! # Quickstart
//!
//! ```
//! use ocelot::executor::{ParallelExecutor};
//! use ocelot_datagen::{Application, FieldSpec};
//! use ocelot_sz::LossyConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Compress a small Miranda-like dataset on 4 threads.
//! let files: Vec<_> = (0..8)
//!     .map(|i| FieldSpec::new(Application::Miranda, "density").with_scale(32).with_seed(i).generate())
//!     .collect();
//! let executor = ParallelExecutor::new(4);
//! let blobs = executor.compress_all(&files, &LossyConfig::sz3(1e-3))?;
//! assert_eq!(blobs.len(), 8);
//! # Ok(())
//! # }
//! ```
//!
//! The [`orchestrator`] module runs the full compress → transfer →
//! decompress pipeline on the simulated three-site testbed and produces the
//! time breakdowns reported in the paper's Table VIII and Fig 16.

pub mod analysis;
pub mod executor;
pub mod grouping;
pub mod lanes;
pub mod loader;
pub mod orchestrator;
pub mod perf;
pub mod planner;
pub mod predictor;
pub mod report;
pub mod sentinel;
pub mod session;
pub mod temporal;
pub mod verify;
pub mod workload;

pub use analysis::{summarize_field, FieldSummary, RunLog};
pub use executor::{ParallelExecutor, StreamedRoundTrip};
pub use grouping::{group_blobs, plan_groups, ungroup_blobs, GroupManifest};
pub use orchestrator::{Orchestrator, PipelineOptions, PipelineOutcome, Strategy};
pub use planner::{select_codec, CodecChoice, TransferPlan, TransferPlanner};
pub use predictor::{AutoConfigurator, Requirement};
pub use report::{ExperimentRecord, TimeBreakdown};
pub use session::{ArchiveSet, TransferSession};
pub use temporal::{TemporalCompressor, TemporalDecompressor};
pub use verify::{verify, AcceptancePolicy, Verdict};
pub use workload::{Workload, WorkloadFile};
