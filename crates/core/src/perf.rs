//! Perf-trajectory store: append-only performance history with noise-aware
//! comparison, backing `ocelot perf record|diff|gate`.
//!
//! A **run record** ([`PerfRecord`]) is one execution of a set of named
//! micro-scenarios on one machine: an environment fingerprint (cores, CPU
//! model, rustc), median-of-N wall time with MAD per scenario, and the
//! per-kernel attribution captured from the installed
//! [`ocelot_obs::prof`] profiler during the run. Records append to a
//! **trajectory** ([`Trajectory`]) — a JSON file under `results/perf/` that
//! is never overwritten, so the performance history of a branch is a list
//! you can plot, not a snapshot you lost.
//!
//! Comparison is *noise-aware*: a scenario only counts as a regression when
//! the median moved by more than both the relative threshold and
//! [`NOISE_SIGMA`] × the combined median-absolute-deviations — a ±2 % wobble
//! on a noisy runner does not page anyone, a real 20 % slide does
//! ([`diff_records`]). [`gate`] turns a diff into a CI verdict and refuses
//! to compare fingerprints from different machines (core-count mismatch) or
//! runners too small to produce stable numbers (< [`MIN_GATE_CORES`]
//! cores) — those skip rather than fail.

use crate::executor::ParallelExecutor;
use ocelot_sz::{compress, decompress_with_threads, Dataset, LossyConfig};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// A regression must exceed `NOISE_SIGMA × (old_mad + new_mad)` as well as
/// the relative threshold before it is flagged.
pub const NOISE_SIGMA: f64 = 3.0;

/// Gates skip on runners with fewer cores than this (timings too unstable).
pub const MIN_GATE_CORES: usize = 4;

/// Default relative regression threshold for `perf gate` (10 %).
pub const DEFAULT_GATE_THRESHOLD: f64 = 0.10;

/// Env var holding an artificial slowdown factor applied to every measured
/// sample (e.g. `1.2` = +20 %). Exists so CI can *prove* the gate trips on
/// a known regression without shipping one.
pub const INJECT_ENV: &str = "OCELOT_PERF_INJECT";

/// Machine fingerprint a record was measured on. Records from different
/// fingerprints are not comparable (the gate skips instead of guessing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvFingerprint {
    /// Available hardware parallelism.
    pub cores: usize,
    /// CPU model string (`unknown` when undetectable).
    #[serde(default)]
    pub cpu_model: String,
    /// `rustc --version` of the toolchain on the machine (`unknown` when
    /// rustc is not on PATH — records are made by CLI users, not builds).
    #[serde(default)]
    pub rustc: String,
    /// Operating system family.
    #[serde(default)]
    pub os: String,
}

fn unknown_string() -> String {
    "unknown".to_string()
}

impl EnvFingerprint {
    /// Detects the current machine's fingerprint.
    pub fn detect() -> Self {
        EnvFingerprint {
            cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            cpu_model: detect_cpu_model(),
            rustc: detect_rustc(),
            os: std::env::consts::OS.to_string(),
        }
    }

    /// True when timings from `other` are comparable with timings from
    /// `self`: same core count and, when both are known, same CPU model.
    pub fn comparable(&self, other: &EnvFingerprint) -> bool {
        if self.cores != other.cores {
            return false;
        }
        self.cpu_model == "unknown" || other.cpu_model == "unknown" || self.cpu_model == other.cpu_model
    }
}

fn detect_cpu_model() -> String {
    if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in info.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, model)) = rest.split_once(':') {
                    return model.trim().to_string();
                }
            }
        }
    }
    "unknown".to_string()
}

fn detect_rustc() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(unknown_string)
}

/// Per-kernel attribution captured from the profiler during one scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSample {
    /// Kernel label (`predict`, `huffman_encode`, …).
    pub kernel: String,
    /// Wall nanoseconds attributed across all repetitions.
    pub nanos: u64,
    /// Probe invocations.
    pub calls: u64,
    /// Bytes the kernel processed.
    pub bytes: u64,
}

/// One scenario's measurement inside a record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name — the unit `diff`/`gate` compare by.
    pub scenario: String,
    /// Median wall seconds over the repetitions.
    pub median_s: f64,
    /// Median absolute deviation of the samples (the noise floor).
    pub mad_s: f64,
    /// Every individual sample, in measurement order.
    #[serde(default)]
    pub samples_s: Vec<f64>,
    /// Uncompressed bytes the scenario processes per repetition.
    #[serde(default)]
    pub bytes: u64,
    /// Kernel attribution for the scenario (summed over repetitions; empty
    /// when no profiler was installed).
    #[serde(default)]
    pub kernels: Vec<KernelSample>,
}

impl ScenarioResult {
    /// Builds a result from raw samples (computes median + MAD).
    pub fn from_samples(scenario: impl Into<String>, samples_s: Vec<f64>, bytes: u64) -> Self {
        let med = median(&samples_s);
        let mad_s = mad(&samples_s, med);
        ScenarioResult { scenario: scenario.into(), median_s: med, mad_s, samples_s, bytes, kernels: Vec::new() }
    }

    /// Median throughput in bytes/second (0 when unmeasured).
    pub fn bytes_per_sec(&self) -> f64 {
        if self.median_s > 0.0 {
            self.bytes as f64 / self.median_s
        } else {
            0.0
        }
    }
}

/// One appended run: fingerprint + timestamp + scenario results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Unix timestamp (seconds) the run finished.
    pub unix_seconds: u64,
    /// Free-form label (`local`, a commit hash, a CI run id…).
    #[serde(default)]
    pub label: String,
    /// Machine the record was measured on.
    pub env: EnvFingerprint,
    /// Measured profiler self-overhead ratio during the run (0 when no
    /// profiler was installed).
    #[serde(default)]
    pub overhead_ratio: f64,
    /// Scenario measurements.
    pub scenarios: Vec<ScenarioResult>,
    /// Producer-specific extra payload (benches stash margins here).
    #[serde(default, skip_serializing_if = "serde_json::Value::is_null")]
    pub meta: serde_json::Value,
}

impl PerfRecord {
    /// Fresh record stamped with the current time and machine.
    pub fn new(label: impl Into<String>) -> Self {
        let unix_seconds =
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
        PerfRecord {
            unix_seconds,
            label: label.into(),
            env: EnvFingerprint::detect(),
            overhead_ratio: 0.0,
            scenarios: Vec::new(),
            meta: serde_json::Value::Null,
        }
    }

    /// The named scenario's result, if present.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.scenario == name)
    }
}

/// An append-only series of [`PerfRecord`]s for one benchmark/suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Suite name (`kernels`, `stream_overlap`, …).
    pub bench: String,
    /// Records in append order (oldest first).
    pub records: Vec<PerfRecord>,
}

impl Trajectory {
    /// Empty trajectory for `bench`.
    pub fn new(bench: impl Into<String>) -> Self {
        Trajectory { bench: bench.into(), records: Vec::new() }
    }

    /// The most recent record, if any.
    pub fn latest(&self) -> Option<&PerfRecord> {
        self.records.last()
    }
}

/// Loads a trajectory, returning an empty one (named `bench`) when the file
/// does not exist yet.
///
/// # Errors
/// I/O errors other than not-found, and malformed JSON.
pub fn load_trajectory(path: &Path, bench: &str) -> Result<Trajectory, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Trajectory::new(bench)),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Appends `record` to the trajectory at `path` (creating file and parent
/// directories on first use) and returns the updated trajectory.
///
/// # Errors
/// I/O and JSON errors, as strings (CLI-facing).
pub fn append_record(path: &Path, bench: &str, record: PerfRecord) -> Result<Trajectory, String> {
    let mut traj = load_trajectory(path, bench)?;
    traj.records.push(record);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
    }
    let text = serde_json::to_string_pretty(&traj).map_err(|e| e.to_string())?;
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| format!("{}: {e}", tmp.display()))?;
        f.write_all(text.as_bytes()).map_err(|e| format!("{}: {e}", tmp.display()))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(traj)
}

/// Median of a sample set (0 for an empty set).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Median absolute deviation around `center`.
pub fn mad(xs: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&devs)
}

/// One scenario's old-vs-new comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioDiff {
    /// Scenario name.
    pub scenario: String,
    /// Baseline median seconds.
    pub old_median_s: f64,
    /// Candidate median seconds.
    pub new_median_s: f64,
    /// Relative change (`new/old − 1`; positive = slower).
    pub delta_ratio: f64,
    /// The effective threshold the delta was compared against, as a ratio
    /// of the old median (noise floor already folded in).
    pub threshold_ratio: f64,
    /// Slower beyond the threshold.
    pub regressed: bool,
    /// Faster beyond the threshold.
    pub improved: bool,
}

/// Full diff between two records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Per-scenario comparisons (scenarios present in both records).
    pub scenarios: Vec<ScenarioDiff>,
    /// Scenarios present in only one record.
    #[serde(default)]
    pub missing: Vec<String>,
    /// Set when the two fingerprints are not comparable.
    #[serde(default)]
    pub env_mismatch: Option<String>,
}

impl DiffReport {
    /// Scenario names that regressed.
    pub fn regressions(&self) -> Vec<&str> {
        self.scenarios.iter().filter(|s| s.regressed).map(|s| s.scenario.as_str()).collect()
    }
}

/// Noise-aware comparison of two records. A scenario regresses when
///
/// ```text
/// new_median − old_median > max(rel_threshold × old_median,
///                               NOISE_SIGMA × (old_mad + new_mad))
/// ```
///
/// so the flag needs the move to clear both the *policy* threshold and the
/// measured *noise floor*. Improvement is symmetric.
pub fn diff_records(old: &PerfRecord, new: &PerfRecord, rel_threshold: f64) -> DiffReport {
    let env_mismatch = if old.env.comparable(&new.env) {
        None
    } else {
        Some(format!(
            "baseline measured on {} cores ({}), candidate on {} cores ({})",
            old.env.cores, old.env.cpu_model, new.env.cores, new.env.cpu_model
        ))
    };
    let mut scenarios = Vec::new();
    let mut missing = Vec::new();
    for o in &old.scenarios {
        let Some(n) = new.scenario(&o.scenario) else {
            missing.push(o.scenario.clone());
            continue;
        };
        let noise = NOISE_SIGMA * (o.mad_s + n.mad_s);
        let threshold_abs = (rel_threshold * o.median_s).max(noise);
        let delta = n.median_s - o.median_s;
        scenarios.push(ScenarioDiff {
            scenario: o.scenario.clone(),
            old_median_s: o.median_s,
            new_median_s: n.median_s,
            delta_ratio: if o.median_s > 0.0 { delta / o.median_s } else { 0.0 },
            threshold_ratio: if o.median_s > 0.0 { threshold_abs / o.median_s } else { f64::INFINITY },
            regressed: delta > threshold_abs,
            improved: -delta > threshold_abs,
        });
    }
    for n in &new.scenarios {
        if old.scenario(&n.scenario).is_none() {
            missing.push(n.scenario.clone());
        }
    }
    DiffReport { scenarios, missing, env_mismatch }
}

/// Verdict of a CI perf gate.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// No regression beyond threshold on any gated hot path.
    Pass(DiffReport),
    /// At least one gated hot path regressed; CI should exit nonzero.
    Fail(DiffReport),
    /// Comparison would be meaningless here; CI should exit zero with the
    /// reason (small runner, different machine…).
    Skip(String),
}

/// Gates `new` against `baseline`: fails on a regression beyond
/// `rel_threshold` on any scenario in `hot_paths` (all scenarios when
/// empty); skips on < [`MIN_GATE_CORES`] cores or a fingerprint mismatch.
pub fn gate(baseline: &PerfRecord, new: &PerfRecord, rel_threshold: f64, hot_paths: &[String]) -> GateOutcome {
    if new.env.cores < MIN_GATE_CORES {
        return GateOutcome::Skip(format!(
            "runner has {} cores (< {MIN_GATE_CORES}); timings too unstable to gate",
            new.env.cores
        ));
    }
    let report = diff_records(baseline, new, rel_threshold);
    if let Some(reason) = &report.env_mismatch {
        return GateOutcome::Skip(format!("environment fingerprints differ: {reason}"));
    }
    let gated_regression = report
        .scenarios
        .iter()
        .any(|s| s.regressed && (hot_paths.is_empty() || hot_paths.iter().any(|h| h == &s.scenario)));
    if gated_regression {
        GateOutcome::Fail(report)
    } else {
        GateOutcome::Pass(report)
    }
}

/// A built-in kernel micro-scenario `perf record` measures.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name (the diff/gate key).
    pub name: &'static str,
    /// Dataset shape (f32 values).
    pub dims: Vec<usize>,
    /// What the scenario exercises.
    pub work: ScenarioWork,
}

/// What a scenario exercises.
#[derive(Debug, Clone)]
pub enum ScenarioWork {
    /// Single-threaded compression with the given config (kernel purity —
    /// no scheduling noise).
    Compress(LossyConfig),
    /// Compress once outside the timer, then time single-threaded
    /// decompression.
    Decompress(LossyConfig),
    /// Streamed compress → lane → decode-on-arrival round trip.
    StreamRoundTrip {
        /// Codec config for the round trip.
        config: LossyConfig,
        /// Back-pressure window (chunks in flight).
        window: usize,
    },
}

/// The built-in hot-path scenarios at a size multiplier (`scale = 1` is the
/// ~1 MiB CI size; `scale = 16` is the 64 MiB local size the overhead
/// budget is asserted on).
pub fn builtin_scenarios(scale: usize) -> Vec<Scenario> {
    let s = scale.max(1);
    let dims = vec![64 * s, 64, 64];
    vec![
        Scenario {
            name: "compress_lorenzo_huffman",
            dims: dims.clone(),
            work: ScenarioWork::Compress(LossyConfig::sz3_abs(1e-3).with_predictor(ocelot_sz::PredictorKind::Lorenzo)),
        },
        Scenario {
            name: "compress_interp",
            dims: dims.clone(),
            work: ScenarioWork::Compress(LossyConfig::sz3_abs(1e-3)),
        },
        Scenario { name: "decompress", dims: dims.clone(), work: ScenarioWork::Decompress(LossyConfig::sz3_abs(1e-3)) },
        Scenario {
            name: "stream_round_trip_w4",
            dims,
            work: ScenarioWork::StreamRoundTrip {
                config: LossyConfig::sz3_abs(1e-3).with_threads(4).with_chunk_points(Some(64 * 64 * 8)),
                window: 4,
            },
        },
    ]
}

/// Deterministic mixed-smoothness field (same formula every run, so kernel
/// work is reproducible across records).
fn scenario_field(dims: Vec<usize>) -> Dataset<f32> {
    Dataset::from_fn(dims, |i| {
        let x = i.iter().enumerate().map(|(d, &v)| (v as f32) * 0.013 * (d as f32 + 1.0)).sum::<f32>();
        x.sin() * 8.0 + 0.25 * x
    })
}

/// The injected slowdown factor from [`INJECT_ENV`] (1.0 when unset).
pub fn inject_factor() -> f64 {
    std::env::var(INJECT_ENV)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|f| f.is_finite() && *f > 0.0)
        .unwrap_or(1.0)
}

/// Runs the built-in scenarios `reps` times each and assembles a record.
/// When an [`ocelot_obs::prof`] profiler is installed globally, each
/// scenario gets its own profiler epoch and the record carries per-kernel
/// attribution plus the measured overhead ratio.
pub fn run_builtin_scenarios(label: &str, scale: usize, reps: usize) -> PerfRecord {
    let reps = reps.max(1);
    let inject = inject_factor();
    let mut record = PerfRecord::new(label);
    for scenario in builtin_scenarios(scale) {
        let data = scenario_field(scenario.dims.clone());
        let bytes = data.nbytes() as u64;
        let prof = ocelot_obs::prof::global();
        let epoch = prof.as_ref().map(|p| p.advance_epoch());
        let mut samples = Vec::with_capacity(reps);
        match &scenario.work {
            ScenarioWork::Compress(cfg) => {
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let out = compress(&data, cfg).expect("builtin scenario compresses");
                    std::hint::black_box(out.blob.len());
                    samples.push(t0.elapsed().as_secs_f64() * inject);
                }
            }
            ScenarioWork::Decompress(cfg) => {
                let blob = compress(&data, cfg).expect("builtin scenario compresses").blob;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let out = decompress_with_threads::<f32>(&blob, 1).expect("builtin scenario decompresses");
                    std::hint::black_box(out.len());
                    samples.push(t0.elapsed().as_secs_f64() * inject);
                }
            }
            ScenarioWork::StreamRoundTrip { config, window } => {
                let ex = ParallelExecutor::new(1).with_codec_threads(config.threads);
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let out = ex.stream_round_trip(&data, config, *window).expect("builtin scenario streams");
                    std::hint::black_box(out.chunks_shipped);
                    samples.push(t0.elapsed().as_secs_f64() * inject);
                }
            }
        }
        let mut result = ScenarioResult::from_samples(scenario.name, samples, bytes);
        if let (Some(p), Some(e)) = (&prof, epoch) {
            result.kernels = p
                .epoch_kernels(e)
                .into_iter()
                .map(|k| KernelSample {
                    kernel: k.kernel.name().to_string(),
                    nanos: k.nanos,
                    calls: k.calls,
                    bytes: k.bytes,
                })
                .collect();
        }
        record.scenarios.push(result);
    }
    if let Some(p) = ocelot_obs::prof::global() {
        record.overhead_ratio = p.overhead_ratio();
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with(scenarios: &[(&str, f64, f64)]) -> PerfRecord {
        let mut r = PerfRecord::new("test");
        for (name, median_s, mad_s) in scenarios {
            r.scenarios.push(ScenarioResult {
                scenario: name.to_string(),
                median_s: *median_s,
                mad_s: *mad_s,
                samples_s: vec![*median_s],
                bytes: 1 << 20,
                kernels: Vec::new(),
            });
        }
        r
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mad(&[1.0, 2.0, 9.0], 2.0), 1.0);
    }

    #[test]
    fn diff_detects_twenty_percent_regression() {
        let old = record_with(&[("compress", 1.00, 0.01)]);
        let new = record_with(&[("compress", 1.20, 0.01)]);
        let report = diff_records(&old, &new, DEFAULT_GATE_THRESHOLD);
        assert_eq!(report.regressions(), vec!["compress"]);
        let d = &report.scenarios[0];
        assert!((d.delta_ratio - 0.20).abs() < 1e-9);
        assert!(d.regressed && !d.improved);
    }

    #[test]
    fn diff_ignores_two_percent_noise() {
        let old = record_with(&[("compress", 1.00, 0.01)]);
        for m in [0.98, 1.02] {
            let new = record_with(&[("compress", m, 0.01)]);
            let report = diff_records(&old, &new, DEFAULT_GATE_THRESHOLD);
            let d = &report.scenarios[0];
            assert!(!d.regressed && !d.improved, "±2% flagged: {d:?}");
        }
    }

    #[test]
    fn noise_floor_expands_the_threshold() {
        // 15 % move, but the MADs say the noise floor is ±3×(0.04+0.04)=24 %.
        let old = record_with(&[("compress", 1.00, 0.04)]);
        let new = record_with(&[("compress", 1.15, 0.04)]);
        let report = diff_records(&old, &new, DEFAULT_GATE_THRESHOLD);
        assert!(!report.scenarios[0].regressed, "move inside the noise floor was flagged");
        // Same move with tight MADs is a real regression.
        let old = record_with(&[("compress", 1.00, 0.001)]);
        let new = record_with(&[("compress", 1.15, 0.001)]);
        let report = diff_records(&old, &new, DEFAULT_GATE_THRESHOLD);
        assert!(report.scenarios[0].regressed);
    }

    #[test]
    fn diff_reports_improvements_and_missing_scenarios() {
        let old = record_with(&[("a", 1.0, 0.001), ("gone", 1.0, 0.001)]);
        let new = record_with(&[("a", 0.5, 0.001), ("new", 1.0, 0.001)]);
        let report = diff_records(&old, &new, 0.10);
        assert!(report.scenarios[0].improved);
        assert_eq!(report.missing, vec!["gone".to_string(), "new".to_string()]);
    }

    #[test]
    fn gate_fails_on_hot_path_regression_only() {
        let mut old = record_with(&[("hot", 1.0, 0.001), ("cold", 1.0, 0.001)]);
        let mut new = record_with(&[("hot", 1.0, 0.001), ("cold", 2.0, 0.001)]);
        old.env.cores = MIN_GATE_CORES;
        new.env = old.env.clone();
        // Regression on a non-gated scenario: pass.
        match gate(&old, &new, 0.10, &["hot".to_string()]) {
            GateOutcome::Pass(r) => assert_eq!(r.regressions(), vec!["cold"]),
            other => panic!("expected pass, got {other:?}"),
        }
        // Empty hot-path list gates everything: fail.
        assert!(matches!(gate(&old, &new, 0.10, &[]), GateOutcome::Fail(_)));
        // Identical records pass.
        assert!(matches!(gate(&old, &old.clone(), 0.10, &[]), GateOutcome::Pass(_)));
    }

    #[test]
    fn gate_skips_on_small_or_mismatched_runners() {
        let mut old = record_with(&[("hot", 1.0, 0.001)]);
        let mut new = record_with(&[("hot", 2.0, 0.001)]);
        old.env.cores = 8;
        new.env = old.env.clone();
        new.env.cores = 2;
        assert!(matches!(gate(&old, &new, 0.10, &[]), GateOutcome::Skip(_)), "small runner must skip");
        new.env.cores = 16;
        assert!(matches!(gate(&old, &new, 0.10, &[]), GateOutcome::Skip(_)), "core mismatch must skip");
    }

    #[test]
    fn trajectory_appends_and_round_trips() {
        let dir = std::env::temp_dir().join(format!("ocelot-perf-test-{}", std::process::id()));
        let path = dir.join("kernels.json");
        let _ = std::fs::remove_file(&path);
        let t0 = load_trajectory(&path, "kernels").unwrap();
        assert_eq!(t0.bench, "kernels");
        assert!(t0.records.is_empty());
        let r1 = record_with(&[("a", 1.0, 0.01)]);
        let t1 = append_record(&path, "kernels", r1.clone()).unwrap();
        assert_eq!(t1.records.len(), 1);
        let r2 = record_with(&[("a", 1.1, 0.01)]);
        let t2 = append_record(&path, "kernels", r2).unwrap();
        assert_eq!(t2.records.len(), 2, "append, not overwrite");
        let loaded = load_trajectory(&path, "kernels").unwrap();
        assert_eq!(loaded, t2);
        assert_eq!(loaded.records[0].scenarios[0].scenario, "a");
        assert_eq!(loaded.latest().unwrap().scenarios[0].median_s, 1.1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn builtin_scenarios_run_and_attribute_kernels() {
        // Tiny scale keeps this a unit test; the profiler attributes the
        // compress kernels into the record.
        let prof = ocelot_obs::prof::Profiler::detached();
        ocelot_obs::prof::install_global(&prof);
        let record = run_builtin_scenarios("unit", 1, 1);
        ocelot_obs::prof::uninstall_global();
        assert_eq!(record.scenarios.len(), builtin_scenarios(1).len());
        for s in &record.scenarios {
            assert!(s.median_s > 0.0, "{}: no time measured", s.scenario);
            assert_eq!(s.samples_s.len(), 1);
            assert!(s.bytes >= (64 * 64 * 64 * 4) as u64);
        }
        let compress = record.scenario("compress_lorenzo_huffman").unwrap();
        let kernels: Vec<&str> = compress.kernels.iter().map(|k| k.kernel.as_str()).collect();
        assert!(kernels.contains(&"predict"), "kernels: {kernels:?}");
        assert!(kernels.contains(&"huffman_encode"), "kernels: {kernels:?}");
        assert!(kernels.contains(&"frame_crc"), "kernels: {kernels:?}");
        assert!(record.overhead_ratio >= 0.0);
    }

    #[test]
    fn inject_factor_scales_samples() {
        // Env mutation is process-global: restore afterwards.
        std::env::set_var(INJECT_ENV, "1.2");
        assert!((inject_factor() - 1.2).abs() < 1e-12);
        std::env::set_var(INJECT_ENV, "garbage");
        assert_eq!(inject_factor(), 1.0);
        std::env::remove_var(INJECT_ENV);
        assert_eq!(inject_factor(), 1.0);
    }

    #[test]
    fn injected_twenty_percent_trips_gate_against_checked_in_baseline() {
        // The exact comparison CI's perf_gate job performs: the checked-in
        // baseline vs a candidate whose samples run 1.2× slower (the
        // slowdown OCELOT_PERF_INJECT=1.2 applies to every timed sample),
        // gated on CI's hot-path list. The factor is applied directly
        // rather than through the env var so this test cannot race the
        // other env-mutating tests; `inject_factor_scales_samples` covers
        // the env plumbing itself.
        let path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/perf/baseline.json"));
        let traj = load_trajectory(path, "kernels").expect("baseline trajectory parses");
        let baseline = traj.latest().expect("baseline holds a record").clone();
        let mut injected = baseline.clone();
        injected.label = "injected".into();
        for s in &mut injected.scenarios {
            let slowed = s.samples_s.iter().map(|t| t * 1.2).collect();
            *s = ScenarioResult::from_samples(s.scenario.clone(), slowed, s.bytes);
        }
        // Force past the small-runner / fingerprint skips: the point here
        // is the diff math against the baseline's recorded spreads.
        injected.env.cores = MIN_GATE_CORES.max(baseline.env.cores);
        let mut base = baseline;
        base.env = injected.env.clone();
        let hot: Vec<String> = ["compress_lorenzo_huffman", "compress_interp", "decompress", "stream_round_trip_w4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match gate(&base, &injected, DEFAULT_GATE_THRESHOLD, &hot) {
            GateOutcome::Fail(report) => {
                let regressed = report.regressions();
                assert!(!regressed.is_empty());
                assert!(
                    regressed.iter().all(|r| hot.iter().any(|h| h == r)),
                    "gate failed on non-hot scenarios: {regressed:?}"
                );
            }
            other => panic!("20% injected regression must fail the gate, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_comparability() {
        let a = EnvFingerprint { cores: 8, cpu_model: "X".into(), rustc: "r".into(), os: "linux".into() };
        let mut b = a.clone();
        assert!(a.comparable(&b));
        b.cpu_model = "unknown".into();
        assert!(a.comparable(&b), "unknown model is a wildcard");
        b.cpu_model = "Y".into();
        assert!(!a.comparable(&b));
        b = a.clone();
        b.cores = 4;
        assert!(!a.comparable(&b));
    }
}
