//! The paper's transfer workloads (CESM, RTM, Miranda — §VIII-D) as
//! file-set descriptions with *measured* compression profiles.
//!
//! End-to-end experiments need per-file compressed sizes and compression
//! work for paper-scale datasets (hundreds of GB). Holding those in memory
//! is impossible, so a workload separates concerns:
//!
//! * every file records its **full-scale** size/point count (Table IV
//!   dimensions);
//! * each distinct field is **profiled once** by really compressing a
//!   scaled-down synthetic instance — the measured ratio and bin statistics
//!   extrapolate to the full-size file (compression ratio and bin
//!   distributions are scale-invariant for these statistically homogeneous
//!   fields).

use ocelot_datagen::{Application, FieldSpec};
use ocelot_sz::cost::CostModel;
use ocelot_sz::stats::QuantBinStats;
use ocelot_sz::{compress, decompress, metrics, LossyConfig, SzError};

/// Measured compression behaviour of one field at one configuration.
#[derive(Debug, Clone)]
pub struct CompressionProfile {
    /// Field name the profile was measured on.
    pub field: String,
    /// Achieved compression ratio.
    pub ratio: f64,
    /// Quantization-bin statistics (drives the time cost model).
    pub bin_stats: QuantBinStats,
    /// Reconstruction PSNR in dB.
    pub psnr: f64,
}

/// One file in a workload.
#[derive(Debug, Clone)]
pub struct WorkloadFile {
    /// File name (diagnostics and grouping manifests).
    pub name: String,
    /// Uncompressed size in bytes at paper scale.
    pub full_bytes: u64,
    /// Number of data points at paper scale.
    pub full_points: usize,
    /// Index into [`Workload::profiles`].
    pub profile: usize,
}

/// A transfer workload: files plus measured per-field profiles.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Application the workload models.
    pub app: Application,
    /// Compression configuration in effect.
    pub config: LossyConfig,
    /// Files at paper scale.
    pub files: Vec<WorkloadFile>,
    /// Distinct measured profiles.
    pub profiles: Vec<CompressionProfile>,
}

impl Workload {
    /// CESM: 61 snapshots × (81 2-D + 36 3-D) fields ≈ 7137 files, 1.61 TB.
    ///
    /// `profile_scale` controls the size of the synthetic fields really
    /// compressed for profiling (16 → seconds).
    ///
    /// # Errors
    /// Propagates profiling compression errors.
    pub fn cesm(config: LossyConfig, profile_scale: usize) -> Result<Self, SzError> {
        let app = Application::Cesm;
        let profiles = measure_profiles(app, app.fields(), config, profile_scale)?;
        let n_fields = app.fields().len();
        let d2_points = 1800usize * 3600;
        let d3_points = 26 * d2_points;
        let mut files = Vec::new();
        for snap in 0..61 {
            for k in 0..81 {
                files.push(WorkloadFile {
                    name: format!("cesm/snap{snap:02}/f2d_{k:03}.nc"),
                    full_bytes: (d2_points * 4) as u64,
                    full_points: d2_points,
                    profile: (snap * 81 + k) % n_fields,
                });
            }
            for k in 0..36 {
                files.push(WorkloadFile {
                    name: format!("cesm/snap{snap:02}/f3d_{k:03}.nc"),
                    full_bytes: (d3_points * 4) as u64,
                    full_points: d3_points,
                    profile: (snap * 36 + k) % n_fields,
                });
            }
        }
        Ok(Workload { app, config, files, profiles })
    }

    /// RTM: 3601 snapshots of 449×449×235, 682 GB.
    ///
    /// # Errors
    /// Propagates profiling compression errors.
    pub fn rtm(config: LossyConfig, profile_scale: usize) -> Result<Self, SzError> {
        let app = Application::Rtm;
        // Profile eight representative snapshot times across the shot.
        let field_names: Vec<String> = (0..8).map(|k| format!("snapshot-{:04}", 200 + k * 450)).collect();
        let refs: Vec<&str> = field_names.iter().map(String::as_str).collect();
        let profiles = measure_profiles(app, &refs, config, profile_scale)?;
        let points = 449usize * 449 * 235;
        let files = (0..3601)
            .map(|snap| WorkloadFile {
                name: format!("rtm/snapshot-{snap:04}.dat"),
                full_bytes: (points * 4) as u64,
                full_points: points,
                profile: (snap * profiles.len()) / 3601,
            })
            .collect();
        Ok(Workload { app, config, files, profiles })
    }

    /// Miranda: 768 files of 256×384×384 across 7 fields, 115 GB.
    ///
    /// # Errors
    /// Propagates profiling compression errors.
    pub fn miranda(config: LossyConfig, profile_scale: usize) -> Result<Self, SzError> {
        let app = Application::Miranda;
        let profiles = measure_profiles(app, app.fields(), config, profile_scale)?;
        let points = 256usize * 384 * 384;
        let files = (0..768)
            .map(|k| WorkloadFile {
                name: format!("miranda/{}_{:03}.bin", app.fields()[k % app.fields().len()], k),
                full_bytes: (points * 4) as u64,
                full_points: points,
                profile: k % profiles.len(),
            })
            .collect();
        Ok(Workload { app, config, files, profiles })
    }

    /// Builds the workload for an application with its paper-default error
    /// bound (chosen to land in the ratio regime of Table VIII).
    ///
    /// # Errors
    /// Propagates profiling compression errors.
    pub fn paper_default(app: Application, profile_scale: usize) -> Result<Self, SzError> {
        match app {
            Application::Cesm => Self::cesm(LossyConfig::sz3(1e-4), profile_scale),
            Application::Rtm => Self::rtm(LossyConfig::sz3(1e-2), profile_scale),
            Application::Miranda => Self::miranda(LossyConfig::sz3(1e-3), profile_scale),
            other => Err(SzError::InvalidConfig(format!("no paper transfer workload for {other}"))),
        }
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total uncompressed bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.full_bytes).sum()
    }

    /// Uncompressed per-file sizes (transfer input for the no-compression
    /// baseline).
    pub fn raw_sizes(&self) -> Vec<u64> {
        self.files.iter().map(|f| f.full_bytes).collect()
    }

    /// Compressed per-file sizes, extrapolated from profiles.
    pub fn compressed_sizes(&self) -> Vec<u64> {
        self.files
            .iter()
            .map(|f| ((f.full_bytes as f64 / self.profiles[f.profile].ratio).ceil() as u64).max(1))
            .collect()
    }

    /// Overall compression ratio.
    pub fn overall_ratio(&self) -> f64 {
        self.total_bytes() as f64 / self.compressed_sizes().iter().sum::<u64>() as f64
    }

    /// Per-file single-core compression work in reference-core seconds.
    pub fn compression_work(&self) -> Vec<f64> {
        let cost = CostModel::for_predictor(self.config.predictor);
        self.files
            .iter()
            .map(|f| cost.compression_seconds(f.full_points, &self.profiles[f.profile].bin_stats))
            .collect()
    }

    /// Per-file single-core decompression work in reference-core seconds.
    pub fn decompression_work(&self) -> Vec<f64> {
        let cost = CostModel::for_predictor(self.config.predictor);
        self.files
            .iter()
            .map(|f| cost.decompression_seconds(f.full_points, &self.profiles[f.profile].bin_stats))
            .collect()
    }

    /// Worst (minimum) PSNR across profiles — the distortion guarantee shown
    /// to the user.
    pub fn min_psnr(&self) -> f64 {
        self.profiles.iter().map(|p| p.psnr).fold(f64::INFINITY, f64::min)
    }
}

/// Really compresses a scaled instance of each field, recording profiles.
fn measure_profiles(
    app: Application,
    fields: &[&str],
    config: LossyConfig,
    profile_scale: usize,
) -> Result<Vec<CompressionProfile>, SzError> {
    fields
        .iter()
        .map(|&field| {
            let data = FieldSpec::new(app, field).with_scale(profile_scale).generate();
            let outcome = compress(&data, &config)?;
            let restored = decompress::<f32>(&outcome.blob)?;
            let quality = metrics::compare(&data, &restored)?;
            Ok(CompressionProfile {
                field: field.to_string(),
                ratio: outcome.ratio,
                bin_stats: outcome.bin_stats,
                psnr: if quality.psnr.is_finite() { quality.psnr } else { 200.0 },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cesm_matches_paper_scale() {
        let w = Workload::cesm(LossyConfig::sz3(1e-3), 32).unwrap();
        assert_eq!(w.file_count(), 61 * (81 + 36));
        let tb = w.total_bytes() as f64 / 1e12;
        assert!((1.4..1.8).contains(&tb), "total {tb} TB");
        assert!(w.overall_ratio() > 1.5, "ratio {}", w.overall_ratio());
    }

    #[test]
    fn rtm_matches_paper_scale() {
        let w = Workload::rtm(LossyConfig::sz3(1e-4), 16).unwrap();
        assert_eq!(w.file_count(), 3601);
        let gb = w.total_bytes() as f64 / 1e9;
        assert!((600.0..750.0).contains(&gb), "total {gb} GB");
        // Every file maps to a valid profile.
        assert!(w.files.iter().all(|f| f.profile < w.profiles.len()));
    }

    #[test]
    fn miranda_matches_paper_scale() {
        let w = Workload::miranda(LossyConfig::sz3(1e-2), 32).unwrap();
        assert_eq!(w.file_count(), 768);
        let gb = w.total_bytes() as f64 / 1e9;
        assert!((100.0..130.0).contains(&gb), "total {gb} GB");
    }

    #[test]
    fn compressed_sizes_shrink() {
        let w = Workload::miranda(LossyConfig::sz3(1e-2), 32).unwrap();
        let raw: u64 = w.raw_sizes().iter().sum();
        let comp: u64 = w.compressed_sizes().iter().sum();
        assert!(comp < raw / 2, "raw {raw} comp {comp}");
    }

    #[test]
    fn work_vectors_align_with_files() {
        let w = Workload::miranda(LossyConfig::sz3(1e-2), 32).unwrap();
        assert_eq!(w.compression_work().len(), w.file_count());
        assert!(w.compression_work().iter().all(|&c| c > 0.0));
        let cw: f64 = w.compression_work().iter().sum();
        let dw: f64 = w.decompression_work().iter().sum();
        assert!(dw < cw, "decompression should be cheaper");
    }

    #[test]
    fn tighter_bound_lowers_ratio_and_raises_psnr() {
        let tight = Workload::rtm(LossyConfig::sz3(1e-5), 16).unwrap();
        let loose = Workload::rtm(LossyConfig::sz3(1e-2), 16).unwrap();
        assert!(loose.overall_ratio() > tight.overall_ratio());
        assert!(tight.min_psnr() > loose.min_psnr());
    }

    #[test]
    fn paper_default_rejects_unsupported_apps() {
        assert!(Workload::paper_default(Application::Hacc, 16).is_err());
    }
}
