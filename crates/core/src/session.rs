//! Transfer sessions: the byte-level workflow tying the executor, grouping,
//! and manifests together — build self-describing archives on the source,
//! restore named datasets on the destination.
//!
//! An archive is a group file (Fig 11 format) whose first member is a JSON
//! manifest of the member names, so a set of archives is fully
//! self-describing: no side channel is needed to decompress and restore
//! filenames on the far side.

use crate::executor::{ParallelExecutor, StreamedRoundTrip};
use crate::grouping::{group_blobs, plan_groups_by_count, ungroup_blobs};
use ocelot_sz::{CompressedBlob, Dataset, LossyConfig, SzError};

/// Reserved name of the embedded manifest member.
const MANIFEST_MEMBER: &str = "__manifest__";

/// A built archive set, ready to transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveSet {
    archives: Vec<Vec<u8>>,
    total_raw_bytes: u64,
}

impl ArchiveSet {
    /// The serialized archives (what crosses the WAN).
    pub fn archives(&self) -> &[Vec<u8>] {
        &self.archives
    }

    /// Consumes the set, returning the archive bytes.
    pub fn into_archives(self) -> Vec<Vec<u8>> {
        self.archives
    }

    /// Number of archives.
    pub fn len(&self) -> usize {
        self.archives.len()
    }

    /// Whether the set holds no archives.
    pub fn is_empty(&self) -> bool {
        self.archives.is_empty()
    }

    /// Total compressed bytes across archives.
    pub fn compressed_bytes(&self) -> u64 {
        self.archives.iter().map(|a| a.len() as u64).sum()
    }

    /// Total uncompressed bytes of the source data.
    pub fn raw_bytes(&self) -> u64 {
        self.total_raw_bytes
    }

    /// Overall compression ratio including all framing overhead.
    pub fn overall_ratio(&self) -> f64 {
        self.total_raw_bytes as f64 / self.compressed_bytes().max(1) as f64
    }
}

/// Source-side session: compresses named datasets and packs archives.
#[derive(Debug, Clone)]
pub struct TransferSession {
    executor: ParallelExecutor,
    config: LossyConfig,
    stream_window: usize,
}

impl TransferSession {
    /// Creates a session with a worker pool and compression configuration.
    pub fn new(threads: usize, config: LossyConfig) -> Self {
        TransferSession { executor: ParallelExecutor::new(threads), config, stream_window: 0 }
    }

    /// Sets the bounded in-flight chunk window for
    /// [`TransferSession::stream_files`]. `0` (the default) keeps the staged
    /// behaviour: every chunk of a file is compressed before any decoding
    /// starts.
    #[must_use]
    pub fn with_stream_window(mut self, stream_window: usize) -> Self {
        self.stream_window = stream_window;
        self
    }

    /// The configured in-flight chunk window (`0` = staged).
    pub fn stream_window(&self) -> usize {
        self.stream_window
    }

    /// Sets the chunk-parallel codec thread count used inside each file's
    /// compression/decompression (independent of the per-file worker pool).
    ///
    /// # Panics
    /// Panics if `codec_threads == 0`.
    #[must_use]
    pub fn with_codec_threads(mut self, codec_threads: usize) -> Self {
        self.executor = self.executor.with_codec_threads(codec_threads);
        self
    }

    /// The compression configuration in effect.
    pub fn config(&self) -> &LossyConfig {
        &self.config
    }

    /// Compresses `files` in parallel and packs them into `group_count`
    /// self-describing archives.
    ///
    /// # Errors
    /// Propagates compression errors.
    ///
    /// # Panics
    /// Panics if `group_count == 0` or a file name collides with the
    /// reserved manifest member name.
    pub fn build_archives(&self, files: &[(String, Dataset<f32>)], group_count: usize) -> Result<ArchiveSet, SzError> {
        assert!(group_count > 0, "at least one archive");
        assert!(files.iter().all(|(n, _)| n != MANIFEST_MEMBER), "file name '{MANIFEST_MEMBER}' is reserved");
        let datasets: Vec<Dataset<f32>> = files.iter().map(|(_, d)| d.clone()).collect();
        let blobs = self.executor.compress_all(&datasets, &self.config)?;
        let blob_bytes: Vec<&[u8]> = blobs.iter().map(CompressedBlob::as_bytes).collect();
        Ok(self.pack_archives(files, &blob_bytes, group_count))
    }

    /// Like [`TransferSession::build_archives`], but compresses each file
    /// through the streamed pipeline (bounded in-flight window, decode on
    /// arrival) instead of staging full blobs. The archives are
    /// byte-identical to the staged ones; each file's restored data has
    /// already been verified chunk-by-chunk as a side effect of streaming.
    ///
    /// # Errors
    /// Propagates codec errors from either side of the stream.
    ///
    /// # Panics
    /// Panics if `group_count == 0` or a file name collides with the
    /// reserved manifest member name.
    pub fn build_archives_streamed(
        &self,
        files: &[(String, Dataset<f32>)],
        group_count: usize,
    ) -> Result<ArchiveSet, SzError> {
        assert!(group_count > 0, "at least one archive");
        assert!(files.iter().all(|(n, _)| n != MANIFEST_MEMBER), "file name '{MANIFEST_MEMBER}' is reserved");
        let round_trips = self.stream_files(files)?;
        let blob_bytes: Vec<&[u8]> = round_trips.iter().map(|(_, rt)| rt.outcome.blob.as_bytes()).collect();
        Ok(self.pack_archives(files, &blob_bytes, group_count))
    }

    /// Packs pre-compressed blob bytes into `group_count` self-describing
    /// archives (manifest member first).
    fn pack_archives(&self, files: &[(String, Dataset<f32>)], blobs: &[&[u8]], group_count: usize) -> ArchiveSet {
        let total_raw_bytes: u64 = files.iter().map(|(_, d)| d.nbytes() as u64).sum();
        let plan = plan_groups_by_count(files.len(), group_count.min(files.len().max(1)));
        let mut archives = Vec::with_capacity(plan.len());
        for group in &plan {
            // Each archive is independently self-describing: manifest first.
            let names: Vec<&str> = group.iter().map(|&i| files[i].0.as_str()).collect();
            let manifest = serde_json::to_vec(&names).expect("names serialize");
            let mut members = vec![(MANIFEST_MEMBER.to_string(), manifest)];
            for &i in group {
                members.push((files[i].0.clone(), blobs[i].to_vec()));
            }
            let inner_plan: Vec<Vec<usize>> = vec![(0..members.len()).collect()];
            let (mut packed, _) = group_blobs(&members, &inner_plan);
            archives.push(packed.remove(0));
        }
        ArchiveSet { archives, total_raw_bytes }
    }

    /// Unpacks and decompresses an archive set back into named datasets, in
    /// original order.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] for malformed archives and
    /// propagates decompression failures (including checksum mismatches from
    /// transit corruption).
    pub fn restore_archives(&self, archives: &[Vec<u8>]) -> Result<Vec<(String, Dataset<f32>)>, SzError> {
        let mut named_blobs: Vec<(String, CompressedBlob)> = Vec::new();
        for archive in archives {
            named_blobs.extend(open_archive(archive)?);
        }
        let blobs: Vec<CompressedBlob> = named_blobs.iter().map(|(_, b)| b.clone()).collect();
        let datasets = self.executor.decompress_all(&blobs)?;
        Ok(named_blobs.into_iter().map(|(n, _)| n).zip(datasets).collect())
    }

    /// Streams each named dataset end-to-end: chunks are shipped through a
    /// bounded in-process lane and decoded on arrival, overlapping the
    /// compress and decompress stages instead of staging full blobs. Files
    /// are processed in order; within a file the session's codec threads and
    /// the configured [`TransferSession::with_stream_window`] govern overlap.
    ///
    /// Returns `(name, round_trip)` pairs — the blob inside each outcome is
    /// byte-identical to what [`TransferSession::build_archives`] would have
    /// packed for that file.
    ///
    /// # Errors
    /// Propagates the first codec error from either side of the stream.
    pub fn stream_files(&self, files: &[(String, Dataset<f32>)]) -> Result<Vec<(String, StreamedRoundTrip)>, SzError> {
        files
            .iter()
            .map(|(name, data)| {
                let rt = self.executor.stream_round_trip(data, &self.config, self.stream_window)?;
                Ok((name.clone(), rt))
            })
            .collect()
    }
}

/// Parses one archive into its named compressed blobs (without
/// decompressing — used by inspection tooling).
///
/// # Errors
/// Returns [`SzError::CorruptStream`] for malformed archives or manifests,
/// and surfaces per-blob checksum failures.
pub fn open_archive(archive: &[u8]) -> Result<Vec<(String, CompressedBlob)>, SzError> {
    let members = ungroup_blobs(archive).map_err(|e| SzError::CorruptStream(format!("archive: {e}")))?;
    let (manifest, rest) =
        members.split_first().ok_or_else(|| SzError::CorruptStream("archive has no members".into()))?;
    let names: Vec<String> =
        serde_json::from_slice(manifest).map_err(|e| SzError::CorruptStream(format!("archive manifest: {e}")))?;
    if names.len() != rest.len() {
        return Err(SzError::CorruptStream(format!(
            "manifest lists {} members but archive holds {}",
            names.len(),
            rest.len()
        )));
    }
    names.into_iter().zip(rest).map(|(name, bytes)| Ok((name, CompressedBlob::from_bytes(bytes.clone())?))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::metrics;

    fn files(n: u64) -> Vec<(String, Dataset<f32>)> {
        (0..n)
            .map(|seed| {
                let data = Dataset::from_fn(vec![20, 20], move |i| {
                    ((i[0] as f32 + seed as f32) * 0.3).sin() + i[1] as f32 * 0.05
                });
                (format!("field_{seed:02}.f32"), data)
            })
            .collect()
    }

    #[test]
    fn archives_round_trip_with_names_and_bounds() {
        let session = TransferSession::new(4, LossyConfig::sz3(1e-3));
        let input = files(10);
        let set = session.build_archives(&input, 3).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.overall_ratio() > 1.0);
        let restored = session.restore_archives(set.archives()).unwrap();
        assert_eq!(restored.len(), 10);
        for ((name, orig), (rname, rec)) in input.iter().zip(&restored) {
            assert_eq!(name, rname);
            let q = metrics::compare(orig, rec).unwrap();
            assert!(q.within_bound(1e-3 * orig.value_range()));
        }
    }

    #[test]
    fn single_archive_works() {
        let session = TransferSession::new(2, LossyConfig::sz3(1e-2));
        let input = files(4);
        let set = session.build_archives(&input, 1).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(session.restore_archives(set.archives()).unwrap().len(), 4);
    }

    #[test]
    fn corruption_in_transit_is_detected() {
        let session = TransferSession::new(2, LossyConfig::sz3(1e-3));
        let set = session.build_archives(&files(4), 2).unwrap();
        let mut archives = set.into_archives();
        // Flip a byte in the middle of the second archive's payload.
        let n = archives[1].len();
        archives[1][n / 2] ^= 0x10;
        assert!(session.restore_archives(&archives).is_err());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_name_is_rejected() {
        let session = TransferSession::new(1, LossyConfig::sz3(1e-3));
        let bad = vec![("__manifest__".to_string(), Dataset::<f32>::constant(vec![4], 0.0).unwrap())];
        let _ = session.build_archives(&bad, 1);
    }

    #[test]
    fn streamed_files_match_staged_archives() {
        let input = files(3);
        // Pinning chunk_points keeps the chunk layout — and therefore the
        // blobs — identical whatever the codec thread count.
        let cfg = LossyConfig::sz3(1e-3).with_chunk_points(Some(64));
        let staged = TransferSession::new(1, cfg);
        let streamed = TransferSession::new(1, cfg).with_codec_threads(2).with_stream_window(2);
        assert_eq!(streamed.stream_window(), 2);
        let a = staged.stream_files(&input).unwrap();
        let b = streamed.stream_files(&input).unwrap();
        assert_eq!(a.len(), b.len());
        for ((an, art), (bn, brt)) in a.iter().zip(&b) {
            assert_eq!(an, bn);
            assert_eq!(art.outcome.blob, brt.outcome.blob, "streamed blob must match staged for {an}");
            assert_eq!(art.restored.values(), brt.restored.values());
        }
        for ((name, orig), (_, rt)) in input.iter().zip(&a) {
            let q = metrics::compare(orig, &rt.restored).unwrap();
            assert!(q.within_bound(1e-3 * orig.value_range()), "{name}");
        }
    }

    #[test]
    fn streamed_archives_are_byte_identical_to_staged() {
        let input = files(5);
        let cfg = LossyConfig::sz3(1e-3).with_chunk_points(Some(64));
        let staged = TransferSession::new(2, cfg);
        let streamed = TransferSession::new(2, cfg).with_codec_threads(2).with_stream_window(3);
        let a = staged.build_archives(&input, 2).unwrap();
        let b = streamed.build_archives_streamed(&input, 2).unwrap();
        assert_eq!(a, b, "streamed archive set must match the staged bytes");
        assert_eq!(streamed.restore_archives(b.archives()).unwrap().len(), 5);
    }

    #[test]
    fn more_groups_than_files_collapses() {
        let session = TransferSession::new(2, LossyConfig::sz3(1e-3));
        let set = session.build_archives(&files(2), 10).unwrap();
        assert_eq!(set.len(), 2);
    }
}
