//! Temporal delta compression for snapshot streams (extension; the
//! direction of MDZ [Zhao et al. 2022] from the paper's related work).
//!
//! Consecutive simulation snapshots are strongly correlated, so the *delta*
//! against the previous reconstructed frame is far more compressible than
//! the frame itself. Compressor and decompressor both track the running
//! reconstruction, and deltas are quantized against an **absolute** bound,
//! so the pointwise guarantee on every restored frame is exactly the same
//! as in spatial mode:
//!
//! `|frame − (prev_recon + delta_recon)| = |delta − delta_recon| ≤ eb`
//!
//! plus at most one `f32` rounding ULP from the `prev + delta` addition
//! (≈ `range · ε`, orders of magnitude below any practical bound).

use ocelot_sz::{compress, decompress, CompressedBlob, Dataset, ErrorBound, LossyConfig, SzError};

/// Frame mode tag prepended to each emitted frame.
const MODE_KEY: u8 = 0;
const MODE_DELTA: u8 = 1;

/// Streaming compressor for temporally correlated snapshots.
#[derive(Debug, Clone)]
pub struct TemporalCompressor {
    config: LossyConfig,
    prev_recon: Option<Dataset<f32>>,
}

impl TemporalCompressor {
    /// Creates a compressor. The first frame is compressed directly ("key
    /// frame"); later frames as deltas. Relative error bounds are resolved
    /// against each *frame's* value range (not the delta's), preserving the
    /// user-facing meaning of the bound.
    pub fn new(config: LossyConfig) -> Self {
        TemporalCompressor { config, prev_recon: None }
    }

    /// Compresses the next frame, returning the tagged frame bytes.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidShape`] if the frame's shape differs from
    /// the stream's; propagates codec errors.
    pub fn compress_next(&mut self, frame: &Dataset<f32>) -> Result<Vec<u8>, SzError> {
        let abs_eb = self.config.error_bound.resolve(frame);
        let cfg = self.config.with_error_bound(ErrorBound::Abs(abs_eb));
        match &self.prev_recon {
            None => {
                let blob = compress(frame, &cfg)?.blob;
                self.prev_recon = Some(decompress::<f32>(&blob)?);
                Ok(tag(MODE_KEY, blob))
            }
            Some(prev) => {
                if prev.dims() != frame.dims() {
                    return Err(SzError::InvalidShape(format!(
                        "frame shape {:?} differs from stream shape {:?}",
                        frame.dims(),
                        prev.dims()
                    )));
                }
                let delta: Vec<f32> = frame.values().iter().zip(prev.values()).map(|(&c, &p)| c - p).collect();
                let delta = Dataset::new(frame.dims().to_vec(), delta)?;
                let blob = compress(&delta, &cfg)?.blob;
                let delta_recon = decompress::<f32>(&blob)?;
                let recon: Vec<f32> = prev.values().iter().zip(delta_recon.values()).map(|(&p, &d)| p + d).collect();
                self.prev_recon = Some(Dataset::new(frame.dims().to_vec(), recon)?);
                Ok(tag(MODE_DELTA, blob))
            }
        }
    }

    /// Resets the stream (the next frame becomes a key frame).
    pub fn reset(&mut self) {
        self.prev_recon = None;
    }
}

/// Streaming decompressor mirroring [`TemporalCompressor`].
#[derive(Debug, Clone, Default)]
pub struct TemporalDecompressor {
    prev_recon: Option<Dataset<f32>>,
}

impl TemporalDecompressor {
    /// Creates a decompressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decompresses the next tagged frame.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] for bad tags or a delta frame
    /// without a preceding key frame; propagates codec errors.
    pub fn decompress_next(&mut self, frame_bytes: &[u8]) -> Result<Dataset<f32>, SzError> {
        let (&mode, rest) =
            frame_bytes.split_first().ok_or_else(|| SzError::CorruptStream("empty temporal frame".into()))?;
        let blob = CompressedBlob::from_bytes(rest.to_vec())?;
        let decoded = decompress::<f32>(&blob)?;
        let frame = match mode {
            MODE_KEY => decoded,
            MODE_DELTA => {
                let prev = self
                    .prev_recon
                    .as_ref()
                    .ok_or_else(|| SzError::CorruptStream("delta frame before any key frame".into()))?;
                if prev.dims() != decoded.dims() {
                    return Err(SzError::CorruptStream("delta frame shape mismatch".into()));
                }
                let recon: Vec<f32> = prev.values().iter().zip(decoded.values()).map(|(&p, &d)| p + d).collect();
                Dataset::new(decoded.dims().to_vec(), recon)?
            }
            other => return Err(SzError::CorruptStream(format!("unknown temporal frame mode {other}"))),
        };
        self.prev_recon = Some(frame.clone());
        Ok(frame)
    }
}

fn tag(mode: u8, blob: CompressedBlob) -> Vec<u8> {
    let mut out = Vec::with_capacity(blob.len() + 1);
    out.push(mode);
    out.extend_from_slice(blob.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_datagen::series::snapshot_series;
    use ocelot_datagen::{Application, FieldSpec};
    use ocelot_sz::metrics;

    fn series(rho: f32) -> Vec<Dataset<f32>> {
        let spec = FieldSpec::new(Application::Miranda, "pressure").with_scale(16);
        snapshot_series(&spec, 6, rho, 11)
    }

    #[test]
    fn stream_round_trips_within_bound() {
        let frames = series(0.9);
        let eb_rel = 1e-3;
        let mut comp = TemporalCompressor::new(LossyConfig::sz3(eb_rel));
        let mut decomp = TemporalDecompressor::new();
        for frame in &frames {
            let bytes = comp.compress_next(frame).unwrap();
            let restored = decomp.decompress_next(&bytes).unwrap();
            let abs_eb = eb_rel * frame.value_range();
            let ulp_margin = frame.value_range() * f32::EPSILON as f64 * 4.0;
            let q = metrics::compare(frame, &restored).unwrap();
            assert!(q.within_bound(abs_eb + ulp_margin), "max {} vs {abs_eb}", q.max_abs_error);
        }
    }

    #[test]
    fn correlated_streams_compress_better_temporally() {
        let frames = series(0.95);
        let cfg = LossyConfig::sz3_abs(1e-3 * frames[0].value_range());
        // Spatial: each frame independently.
        let spatial: usize = frames.iter().map(|f| compress(f, &cfg).unwrap().blob.len()).sum();
        // Temporal: key + deltas.
        let mut comp = TemporalCompressor::new(cfg);
        let temporal: usize = frames.iter().map(|f| comp.compress_next(f).unwrap().len()).sum();
        assert!((temporal as f64) < spatial as f64 * 0.85, "temporal {temporal} should beat spatial {spatial}");
    }

    #[test]
    fn uncorrelated_streams_gain_little() {
        let frames = series(0.0);
        let cfg = LossyConfig::sz3_abs(1e-3 * frames[0].value_range());
        let spatial: usize = frames.iter().map(|f| compress(f, &cfg).unwrap().blob.len()).sum();
        let mut comp = TemporalCompressor::new(cfg);
        let temporal: usize = frames.iter().map(|f| comp.compress_next(f).unwrap().len()).sum();
        // No big win, and no catastrophic loss either.
        assert!((temporal as f64) < spatial as f64 * 1.5, "temporal {temporal} vs spatial {spatial}");
    }

    #[test]
    fn delta_without_key_is_rejected() {
        let frames = series(0.5);
        let mut comp = TemporalCompressor::new(LossyConfig::sz3(1e-3));
        let _key = comp.compress_next(&frames[0]).unwrap();
        let delta = comp.compress_next(&frames[1]).unwrap();
        let mut fresh = TemporalDecompressor::new();
        assert!(fresh.decompress_next(&delta).is_err());
    }

    #[test]
    fn shape_change_mid_stream_is_rejected() {
        let mut comp = TemporalCompressor::new(LossyConfig::sz3(1e-3));
        let a = Dataset::from_fn(vec![16, 16], |i| (i[0] + i[1]) as f32);
        let b = Dataset::from_fn(vec![8, 8], |i| (i[0] + i[1]) as f32);
        comp.compress_next(&a).unwrap();
        assert!(comp.compress_next(&b).is_err());
        comp.reset();
        assert!(comp.compress_next(&b).is_ok());
    }

    #[test]
    fn decoder_tolerates_reset_streams() {
        let frames = series(0.7);
        let mut comp = TemporalCompressor::new(LossyConfig::sz3(1e-3));
        let mut decomp = TemporalDecompressor::new();
        let k1 = comp.compress_next(&frames[0]).unwrap();
        decomp.decompress_next(&k1).unwrap();
        comp.reset();
        let k2 = comp.compress_next(&frames[1]).unwrap();
        let out = decomp.decompress_next(&k2).unwrap();
        let q = metrics::compare(&frames[1], &out).unwrap();
        assert!(q.psnr > 40.0);
    }
}
