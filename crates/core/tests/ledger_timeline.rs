//! Timeline-consistency invariant for the chunk-lifecycle ledger: replaying
//! a streamed job's ledger into per-chunk tracks must reproduce the critpath
//! stage attribution of the same job's span tree within 1%, across codec
//! thread counts and stream windows (including the window-0 overlapped
//! degenerate case) — and the replayed event chains must be causally sound.

use std::sync::{Mutex, MutexGuard, OnceLock};

use ocelot::orchestrator::{Orchestrator, PipelineOptions};
use ocelot::workload::Workload;
use ocelot_netsim::{FaultModel, SiteId};
use ocelot_obs::ledger::{self, check_causality, render_timeline, Ledger, LedgerEvent, Timeline};
use proptest::prelude::*;

/// Serializes tests that install the process-global ledger.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small Miranda slice: profiles are measured once, then the file list is
/// truncated so the window fixpoint stays fast under proptest.
fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| {
        let mut w = Workload::miranda(ocelot_sz::LossyConfig::sz3(1e-2), 32).expect("profiling succeeds");
        w.files.truncate(20);
        w
    })
}

/// Runs one streamed job with a fresh obs + ledger and returns the drained
/// events plus the critpath stage attribution of its span tree.
fn run_case(threads: usize, window: usize, wait: f64, faults: FaultModel, job: u64) -> (Vec<LedgerEvent>, [f64; 7]) {
    let obs = ocelot_obs::Obs::enabled();
    let led = Ledger::with_obs(&obs);
    ledger::install_global(&led);
    let opts = PipelineOptions {
        codec_threads: threads,
        stream_window: window,
        wait_model: ocelot_faas::WaitTimeModel::Fixed(wait),
        faults,
        job: Some(job),
        ..PipelineOptions::default()
    };
    let orch = Orchestrator::paper().with_obs(obs.clone());
    orch.run_streamed(workload(), SiteId::Bebop, SiteId::Cori, &opts);
    ledger::uninstall_global();
    let events = led.drain();
    let spans = obs.recorder().expect("enabled obs records spans").for_job(job);
    let report = ocelot_obs::critpath::analyze(&spans).expect("sim spans recorded");
    let mut stages = [0.0f64; 7];
    stages.copy_from_slice(&report.stage_s);
    (events, stages)
}

/// Asserts one track's intervals are monotone and contiguous: each interval
/// is well-formed, consecutive phases do not overlap backwards, and the
/// compress → window-wait → transfer chain leaves no gaps (the only allowed
/// gap is arrived → decode, which the reorder interval must cover).
fn assert_track_contiguous(t: &ocelot_obs::ledger::ChunkTrack) {
    let ordered = [t.compress, t.window_wait, t.transfer, t.reorder, t.decode];
    let mut last_end = f64::NEG_INFINITY;
    for iv in ordered.iter().flatten() {
        assert!(iv.1 >= iv.0 - 1e-9, "interval runs backwards: {iv:?} in {t:?}");
        assert!(iv.0 >= last_end - 1e-6, "phase starts before the prior one ends: {t:?}");
        last_end = last_end.max(iv.1);
    }
    if let (Some(c), Some(x)) = (t.compress, t.transfer) {
        // encoded → released → transfer is gap-free (window-wait fills any
        // distance between encode completion and release).
        let bridged = t.window_wait.map_or(c.1, |w| {
            assert!((w.0 - c.1).abs() < 1e-6, "window wait must start at encode completion: {t:?}");
            w.1
        });
        assert!((x.0 - bridged).abs() < 1e-6, "gap between release and transfer start: {t:?}");
    }
    if let (Some(x), Some(d)) = (t.transfer, t.decode) {
        // Any arrived → decode gap must be reorder-buffer residency.
        let covered = t.reorder.map_or(x.1, |r| {
            assert!((r.0 - x.1).abs() < 1e-6, "reorder must start at arrival: {t:?}");
            r.1
        });
        assert!(d.0 >= covered - 1e-6, "decode cannot start before its input: {t:?}");
        assert!((d.0 - covered).abs() < 1e-3, "uncovered gap between arrival and decode: {t:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ≤1% invariant: ledger-reconstructed stage sums match critpath stage
    /// attribution for every (threads, window) combination, and the event
    /// stream passes the causality checker.
    #[test]
    fn replayed_timeline_matches_critpath_stages(
        ti in 0usize..4,
        wi in 0usize..4,
        wa in 0usize..2,
        job in 1u64..1000,
    ) {
        let threads = [1usize, 2, 4, 8][ti];
        let window = [0usize, 1, 4, 1024][wi];
        let wait = [0.0f64, 50.0][wa];
        let _g = lock();
        let (events, stages) = run_case(threads, window, wait, FaultModel::none(), job);
        prop_assert!(!events.is_empty(), "streamed run must emit ledger events");
        let violations = check_causality(&events, job);
        prop_assert!(violations.is_empty(), "causality violations: {violations:?}");
        let tl = Timeline::reconstruct(&events, job).expect("job has events");
        let mine = tl.stage_s();
        let critical: f64 = stages.iter().sum();
        let tol = (critical * 0.01).max(1e-6);
        for (i, (a, b)) in mine.iter().zip(&stages).enumerate() {
            prop_assert!(
                (a - b).abs() <= tol,
                "stage {i}: ledger {a} vs critpath {b} (threads {threads}, window {window}, wait {wait})"
            );
        }
        for t in &tl.tracks {
            assert_track_contiguous(t);
        }
        // Expected chunk population: k chunks per file (window > 0) or one
        // file-grain track each (window 0 → overlapped path).
        let k = if window == 0 || threads <= 1 { 1 } else { threads * 2 };
        prop_assert_eq!(tl.tracks.len(), workload().files.len() * k);
    }
}

#[test]
fn fault_injected_run_names_retransmitted_chunks_and_causes() {
    let _g = lock();
    let render = |job| {
        let (events, _) = run_case(4, 4, 0.0, FaultModel::flaky(0.3), job);
        let violations = check_causality(&events, job);
        assert!(violations.is_empty(), "causality violations: {violations:?}");
        let tl = Timeline::reconstruct(&events, job).expect("job has events");
        assert!(tl.total_retries() > 0, "a 30% flaky link must retransmit");
        let faulted = tl.tracks.iter().find(|t| !t.retransmits.is_empty()).expect("some chunk faulted");
        assert!(faulted.retransmits[0].2.contains("wan fault"), "cause: {:?}", faulted.retransmits[0]);
        assert!(faulted.attempts > 1);
        render_timeline(&tl)
    };
    let a = render(7);
    let b = render(7);
    assert_eq!(a, b, "rendering must be byte-stable across reruns of the same seeded job");
    assert!(a.contains('!'), "retransmit segments must appear in the Gantt:\n{a}");
}

#[test]
fn fault_injection_slows_streamed_transfer_but_delivers_payload() {
    let _g = lock();
    let opts = |faults| PipelineOptions { codec_threads: 4, stream_window: 1, faults, ..PipelineOptions::default() };
    // Window 1 serializes the wire, so any chunk's retransmitted partials
    // push every later release — the makespan must stretch.
    let orch = Orchestrator::paper();
    let healthy = orch.run_streamed(workload(), SiteId::Anvil, SiteId::Bebop, &opts(FaultModel::none()));
    let flaky = orch.run_streamed(workload(), SiteId::Anvil, SiteId::Bebop, &opts(FaultModel::flaky(0.3)));
    assert!(flaky.transfer_s > healthy.transfer_s, "flaky {} vs healthy {}", flaky.transfer_s, healthy.transfer_s);
    // Retransmitted partials are wasted wire bytes, not payload.
    assert_eq!(flaky.bytes_transferred, healthy.bytes_transferred);
    assert_eq!(flaky.files_transferred, healthy.files_transferred);
}
