//! Bagged ensemble of regression trees (an extension beyond the paper's
//! single decision tree, used for the ablation benches).

use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A bootstrap-aggregated forest of CART trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits `n_trees` trees on bootstrap resamples of the training set.
    ///
    /// # Panics
    /// Panics if `n_trees == 0` or the training set is empty/ragged (see
    /// [`DecisionTree::fit`]).
    pub fn fit(x: &[Vec<f64>], y: &[f64], n_trees: usize, config: &TreeConfig, seed: u64) -> Self {
        assert!(n_trees > 0, "at least one tree required");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = x.len();
        let trees = (0..n_trees)
            .map(|_| {
                let mut bx = Vec::with_capacity(n);
                let mut by = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = rng.gen_range(0..n);
                    bx.push(x[i].clone());
                    by.push(y[i]);
                }
                DecisionTree::fit(&bx, &by, config)
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean prediction over all trees.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(features)).sum::<f64>() / self.trees.len() as f64
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees (never true for a fitted forest).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 300.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| if r[0] < 0.5 { 0.0 } else { 10.0 }).collect();
        let f = RandomForest::fit(&x, &y, 11, &TreeConfig::default(), 7);
        assert!(f.predict(&[0.1]) < 1.0);
        assert!(f.predict(&[0.9]) > 9.0);
        assert_eq!(f.len(), 11);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i * i % 13) as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect();
        let a = RandomForest::fit(&x, &y, 5, &TreeConfig::default(), 42);
        let b = RandomForest::fit(&x, &y, 5, &TreeConfig::default(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn forest_smooths_noisy_targets() {
        // Single deep tree overfits noise; forest averages it out.
        let x: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 400.0]).collect();
        let mut state = 11u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 2.0
        };
        let y: Vec<f64> = x.iter().map(|r| r[0] * 5.0 + noise()).collect();
        let forest = RandomForest::fit(&x, &y, 21, &TreeConfig::default(), 1);
        // Out-of-sample-ish check on clean targets.
        let rmse = (x.iter().map(|r| (forest.predict(r) - r[0] * 5.0).powi(2)).sum::<f64>() / 400.0).sqrt();
        assert!(rmse < 0.8, "rmse={rmse}");
    }
}
