//! CART regression tree (variance-reduction splits).
//!
//! The paper uses "a decision tree model" for quality estimation; this is a
//! from-scratch implementation: binary splits chosen to maximize the
//! reduction in squared error, grown depth-first with depth / leaf-size /
//! gain stopping rules.

use serde::{Deserialize, Serialize};

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum fractional variance reduction to accept a split.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 12, min_samples_leaf: 3, min_gain: 1e-7 }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Total SSE reduction contributed by splits on each feature.
    #[serde(default)]
    importance: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on rows `x` (each of equal length) and targets `y`.
    ///
    /// # Panics
    /// Panics if `x` is empty, lengths mismatch, or rows are ragged.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &TreeConfig) -> Self {
        assert!(!x.is_empty(), "training set is empty");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let n_features = x[0].len();
        assert!(x.iter().all(|r| r.len() == n_features), "ragged feature rows");
        let mut tree = DecisionTree { nodes: Vec::new(), n_features, importance: vec![0.0; n_features] };
        let idx: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, idx, 0, config);
        tree
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    /// Panics if `features.len()` differs from the training feature count.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature count mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-feature importance: total squared-error reduction contributed by
    /// splits on each feature, normalized to sum to 1 (all zeros for a tree
    /// with no splits). Index-aligned with the training feature order.
    pub fn feature_importance(&self) -> Vec<f64> {
        let total: f64 = self.importance.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.n_features];
        }
        self.importance.iter().map(|&g| g / total).collect()
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Grows a subtree over `idx`, returning its node id.
    fn grow(&mut self, x: &[Vec<f64>], y: &[f64], idx: Vec<usize>, depth: usize, config: &TreeConfig) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        let sse: f64 = idx.iter().map(|&i| (y[i] - mean).powi(2)).sum();
        if depth >= config.max_depth || idx.len() < 2 * config.min_samples_leaf || sse <= 1e-24 {
            return self.push(Node::Leaf { value: mean });
        }
        let Some((feature, threshold, gain)) = best_split(x, y, &idx, self.n_features, config.min_samples_leaf) else {
            return self.push(Node::Leaf { value: mean });
        };
        if gain < config.min_gain * sse {
            return self.push(Node::Leaf { value: mean });
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            // Defensive: a degenerate partition (should be prevented by the
            // threshold clamp) falls back to a leaf instead of recursing.
            return self.push(Node::Leaf { value: mean });
        }
        self.importance[feature] += gain;
        // Reserve this node id before growing children so the root is node 0.
        let id = self.push(Node::Leaf { value: mean });
        let left = self.grow(x, y, left_idx, depth + 1, config);
        let right = self.grow(x, y, right_idx, depth + 1, config);
        self.nodes[id] = Node::Split { feature, threshold, left, right };
        id
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }
}

/// Finds the (feature, threshold) split with maximal SSE reduction.
/// Returns `None` if no valid split exists.
fn best_split(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    n_features: usize,
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let n = idx.len();
    let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
    let total_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
    let parent_sse = total_sq - total_sum * total_sum / n as f64;

    let mut best: Option<(usize, f64, f64)> = None;
    let mut order: Vec<usize> = idx.to_vec();
    #[allow(clippy::needless_range_loop)] // `f` indexes rows of `x`, not a single slice
    for f in 0..n_features {
        order.sort_unstable_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).unwrap_or(std::cmp::Ordering::Equal));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for split_at in 1..n {
            let i = order[split_at - 1];
            left_sum += y[i];
            left_sq += y[i] * y[i];
            // A threshold exists only between distinct feature values.
            let lo = x[order[split_at - 1]][f];
            let hi = x[order[split_at]][f];
            if lo == hi {
                continue;
            }
            if split_at < min_leaf || n - split_at < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let left_sse = left_sq - left_sum * left_sum / split_at as f64;
            let right_sse = right_sq - right_sum * right_sum / (n - split_at) as f64;
            let gain = parent_sse - left_sse - right_sse;
            if best.is_none_or(|(_, _, g)| gain > g) {
                // The midpoint of adjacent floats can round up to `hi`,
                // which would sweep the hi-valued samples into the left
                // side and leave the right side empty; clamp to `lo`.
                let mut threshold = 0.5 * (lo + hi);
                if threshold >= hi {
                    threshold = lo;
                }
                best = Some((f, threshold, gain));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_xy(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = i as f64 / n as f64;
            let b = (i as f64 * 7.0).sin();
            x.push(vec![a, b]);
            y.push(if a < 0.5 { 1.0 } else { 3.0 });
        }
        (x, y)
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let (x, y) = grid_xy(200);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert!((tree.predict(&[0.2, 0.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[0.9, 0.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 50];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[123.0]), 7.0);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig { max_depth: 3, ..Default::default() });
        assert!(tree.depth() <= 3, "depth={}", tree.depth());
    }

    #[test]
    fn respects_min_samples_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| (i % 2) as f64).collect();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig { min_samples_leaf: 10, ..Default::default() });
        // Splits leaving fewer than 10 samples per side are forbidden, so at
        // most one split exists.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn piecewise_smooth_regression_has_low_error() {
        let x: Vec<Vec<f64>> = (0..500).map(|i| vec![i as f64 / 500.0, (i % 7) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * 6.0).floor()).collect();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        let rmse = (x.iter().zip(&y).map(|(r, &t)| (tree.predict(r) - t).powi(2)).sum::<f64>() / 500.0).sqrt();
        assert!(rmse < 0.05, "rmse={rmse}");
    }

    #[test]
    fn duplicate_feature_values_never_split_between_equals() {
        let x: Vec<Vec<f64>> = vec![vec![1.0]; 10].into_iter().chain(vec![vec![2.0]; 10]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(tree.predict(&[1.0]), 0.0);
        assert_eq!(tree.predict(&[2.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_validates_arity() {
        let tree = DecisionTree::fit(&[vec![1.0, 2.0]], &[3.0], &TreeConfig::default());
        tree.predict(&[1.0]);
    }

    #[test]
    fn adjacent_float_features_never_produce_nan_leaves() {
        // Two adjacent f64 values as the only split candidates: the naive
        // midpoint rounds to the upper value and would orphan the right
        // branch.
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        let mut x = vec![vec![lo]; 5];
        x.extend(vec![vec![hi]; 5]);
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 1.0 }).collect();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig { min_samples_leaf: 1, ..Default::default() });
        assert!(tree.predict(&[lo]).is_finite());
        assert!(tree.predict(&[hi]).is_finite());
        assert_eq!(tree.predict(&[lo]), 0.0);
        assert_eq!(tree.predict(&[hi]), 1.0);
    }

    #[test]
    fn importance_identifies_the_informative_feature() {
        // Feature 1 fully determines the target; feature 0 is noise.
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![((i * 37) % 17) as f64, (i % 4) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[1] * 10.0).collect();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        let imp = tree.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > 0.95, "importance {imp:?}");
    }

    #[test]
    fn constant_tree_has_zero_importance() {
        let tree = DecisionTree::fit(&vec![vec![1.0]; 10], &[2.0; 10], &TreeConfig::default());
        assert_eq!(tree.feature_importance(), vec![0.0]);
    }

    #[test]
    fn serde_round_trip() {
        let (x, y) = grid_xy(64);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
        assert_eq!(tree.predict(&[0.3, 0.0]), back.predict(&[0.3, 0.0]));
    }
}
