//! Quality prediction for *transform-based* compressors (ZFP family) — the
//! paper's stated future work ("we lack effective time/ratio prediction
//! methods for transformer-based compressors like ZFP").
//!
//! The prediction-based features of [`crate::features`] do not transfer:
//! a transform codec has no quantization-bin stream, so `p0`/`P0`/`R_rle`
//! do not exist. Instead this module uses six features: the configuration,
//! cheap data statistics, and a *sampled transform-domain ratio estimate*
//! (every k-th 4^d block is really encoded — the transform analogue of the
//! paper's 1 % sampling).

use ocelot_sz::sample::sample_grid;
use ocelot_sz::stats::{byte_entropy, value_stats};
use ocelot_sz::zfp;
use ocelot_sz::{Codec, CodecConfig, Dataset, ScalarValue, SzError, ZfpCodec};
use serde::{Deserialize, Serialize};

use crate::tree::{DecisionTree, TreeConfig};

/// Number of transform-codec features.
pub const TRANSFORM_FEATURE_COUNT: usize = 6;

/// Feature names, index-aligned with the vector.
pub const TRANSFORM_FEATURE_NAMES: [&str; TRANSFORM_FEATURE_COUNT] = [
    "log10_rel_error_bound",
    "log10_value_range",
    "std_over_range",
    "byte_entropy",
    "log10_lorenzo_error",
    "log10_sampled_zfp_ratio",
];

/// One labelled transform-codec observation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformSample {
    /// Feature vector.
    pub features: [f64; TRANSFORM_FEATURE_COUNT],
    /// Real compression ratio achieved by the transform codec.
    pub ratio: f64,
}

/// Extracts transform-codec features at a block-sampling stride (e.g. 16 →
/// every 16th block is encoded for the ratio estimate).
///
/// # Errors
/// Propagates shape/bound validation errors from the codec.
///
/// # Panics
/// Panics if `block_stride == 0`.
pub fn extract_transform_features<T: ScalarValue>(
    data: &Dataset<T>,
    abs_eb: f64,
    block_stride: usize,
) -> Result<[f64; TRANSFORM_FEATURE_COUNT], SzError> {
    let stats = value_stats(data);
    let range = stats.range.max(1e-300);
    let sampled = sample_grid(data, 4);
    let entropy = byte_entropy(&sampled);
    let lorenzo = ocelot_sz::predict::lorenzo::mean_raw_error(&sampled);
    let est = zfp::estimate_ratio_sampled(data, abs_eb, block_stride)?;
    Ok([
        (abs_eb / range).max(1e-300).log10(),
        range.log10(),
        stats.std_dev / range,
        entropy,
        (lorenzo / range).max(1e-300).log10(),
        est.max(1e-3).log10(),
    ])
}

/// Measures a labelled sample: features plus the real codec ratio.
///
/// # Errors
/// Propagates codec errors.
pub fn measure_transform_sample<T: ScalarValue>(
    data: &Dataset<T>,
    abs_eb: f64,
    block_stride: usize,
) -> Result<TransformSample, SzError> {
    let features = extract_transform_features(data, abs_eb, block_stride)?;
    let config = CodecConfig::zfp_abs(abs_eb);
    let outcome = ZfpCodec.compress(data, &config)?;
    Ok(TransformSample { features, ratio: outcome.ratio })
}

/// A trained ratio model for the transform codec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformQualityModel {
    ratio_tree: DecisionTree,
}

impl TransformQualityModel {
    /// Trains on labelled samples (ratio learned in log10 space).
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn train(samples: &[TransformSample], config: &TreeConfig) -> Self {
        assert!(!samples.is_empty(), "cannot train on an empty sample set");
        let x: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_vec()).collect();
        let y: Vec<f64> = samples.iter().map(|s| s.ratio.max(1e-12).log10()).collect();
        TransformQualityModel { ratio_tree: DecisionTree::fit(&x, &y, config) }
    }

    /// Predicts the compression ratio from a feature vector.
    pub fn predict_ratio(&self, features: &[f64; TRANSFORM_FEATURE_COUNT]) -> f64 {
        10f64.powf(self.ratio_tree.predict(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(seed: u64) -> Dataset<f32> {
        Dataset::from_fn(vec![32, 32, 16], move |i| {
            ((i[0] as f32 + seed as f32 * 2.0) * 0.21).sin() * 3.0 + ((i[1] as f32) * 0.13).cos() + i[2] as f32 * 0.02
        })
    }

    fn build(seeds: std::ops::Range<u64>) -> Vec<TransformSample> {
        let mut out = Vec::new();
        for seed in seeds {
            let d = field(seed);
            let range = d.value_range();
            for exp in 1..=5 {
                out.push(measure_transform_sample(&d, 10f64.powi(-exp) * range, 8).unwrap());
            }
        }
        out
    }

    #[test]
    fn features_are_finite_and_informative() {
        let d = field(0);
        let tight = extract_transform_features(&d, 1e-5 * d.value_range(), 8).unwrap();
        let loose = extract_transform_features(&d, 1e-1 * d.value_range(), 8).unwrap();
        assert!(tight.iter().all(|v| v.is_finite()));
        assert!(loose[5] > tight[5], "loose sampled ratio {} vs tight {}", loose[5], tight[5]);
    }

    #[test]
    fn model_predicts_held_out_zfp_ratios() {
        let train = build(0..5);
        let model = TransformQualityModel::train(&train, &TreeConfig::default());
        let test = build(5..8);
        let rmse =
            (test.iter().map(|s| (model.predict_ratio(&s.features).log10() - s.ratio.log10()).powi(2)).sum::<f64>()
                / test.len() as f64)
                .sqrt();
        assert!(rmse < 0.25, "held-out log-ratio RMSE {rmse}");
    }

    #[test]
    fn model_orders_error_bounds_correctly() {
        let model = TransformQualityModel::train(&build(0..4), &TreeConfig::default());
        let d = field(9);
        let range = d.value_range();
        let tight = extract_transform_features(&d, 1e-5 * range, 8).unwrap();
        let loose = extract_transform_features(&d, 1e-2 * range, 8).unwrap();
        assert!(model.predict_ratio(&loose) > model.predict_ratio(&tight));
    }

    #[test]
    fn serde_round_trip_behaviour() {
        let samples = build(0..3);
        let model = TransformQualityModel::train(&samples, &TreeConfig::default());
        let json = serde_json::to_string(&model).unwrap();
        let back: TransformQualityModel = serde_json::from_str(&json).unwrap();
        for s in &samples {
            let a = model.predict_ratio(&s.features);
            let b = back.predict_ratio(&s.features);
            assert!((a - b).abs() / a < 1e-9);
        }
    }
}
