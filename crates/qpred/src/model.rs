//! The quality-prediction model: three regression trees mapping the eleven
//! features to compression ratio, compression time, and PSNR.

use ocelot_sz::config::LossyConfig;
use ocelot_sz::cost::CostModel;
use ocelot_sz::{compress, decompress, metrics, Dataset, ScalarValue, SzError};
use serde::{Deserialize, Serialize};

use crate::dataset::{feature_matrix, target_column};
use crate::features::{extract, FeatureVector};
use crate::tree::{DecisionTree, TreeConfig};

/// One labelled observation: features plus the measured quality metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSample {
    /// Extracted features.
    pub features: FeatureVector,
    /// Measured compression ratio.
    pub ratio: f64,
    /// Single-core compression time in seconds (cost-model units for the
    /// paper's reference machine).
    pub time_seconds: f64,
    /// Measured PSNR of the reconstruction, in dB.
    pub psnr: f64,
}

impl TrainingSample {
    /// Produces a ground-truth sample by actually compressing `data` with
    /// `config`: the ratio and PSNR are measured on the real pipeline, and
    /// the time label comes from the calibrated [`CostModel`] evaluated at
    /// `n_points_override` points (pass the full-size point count when
    /// training on scaled-down data so time labels match paper-scale files;
    /// `None` uses the dataset's own size).
    ///
    /// # Errors
    /// Propagates compression/decompression failures.
    pub fn measure<T: ScalarValue>(
        data: &Dataset<T>,
        config: &LossyConfig,
        sample_stride: usize,
        n_points_override: Option<usize>,
    ) -> Result<Self, SzError> {
        let features = extract(data, config, sample_stride);
        let outcome = compress(data, config)?;
        let restored = decompress::<T>(&outcome.blob)?;
        let quality = metrics::compare(data, &restored)?;
        let n_points = n_points_override.unwrap_or_else(|| data.len());
        let cost = CostModel::for_predictor(config.predictor);
        let psnr = if quality.psnr.is_finite() { quality.psnr } else { 200.0 };
        Ok(TrainingSample {
            features,
            ratio: outcome.ratio,
            time_seconds: cost.compression_seconds(n_points, &outcome.bin_stats),
            psnr,
        })
    }
}

/// Predicted quality for one (dataset, configuration) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityEstimate {
    /// Predicted compression ratio.
    pub ratio: f64,
    /// Predicted single-core compression time in seconds.
    pub time_seconds: f64,
    /// Predicted PSNR in dB.
    pub psnr: f64,
}

/// A trained quality model (ratio + time + PSNR trees).
///
/// Ratio and time are learned in log10 space — both span orders of magnitude
/// across error bounds — and exponentiated on prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityModel {
    ratio_tree: DecisionTree,
    time_tree: DecisionTree,
    psnr_tree: DecisionTree,
}

impl QualityModel {
    /// Trains on labelled samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn train(samples: &[TrainingSample], config: &TreeConfig) -> Self {
        assert!(!samples.is_empty(), "cannot train on an empty sample set");
        let x = feature_matrix(samples);
        let log_ratio = target_column(samples, |s| s.ratio.max(1e-12).log10());
        let log_time = target_column(samples, |s| s.time_seconds.max(1e-12).log10());
        let psnr = target_column(samples, |s| s.psnr);
        QualityModel {
            ratio_tree: DecisionTree::fit(&x, &log_ratio, config),
            time_tree: DecisionTree::fit(&x, &log_time, config),
            psnr_tree: DecisionTree::fit(&x, &psnr, config),
        }
    }

    /// Predicts all three metrics from a feature vector.
    pub fn predict(&self, features: &FeatureVector) -> QualityEstimate {
        let f = features.as_slice();
        QualityEstimate {
            ratio: 10f64.powf(self.ratio_tree.predict(f)),
            time_seconds: 10f64.powf(self.time_tree.predict(f)),
            psnr: self.psnr_tree.predict(f),
        }
    }

    /// Per-feature importance of each metric's tree, index-aligned with
    /// [`crate::features::FEATURE_NAMES`]: `(ratio, time, psnr)` importance
    /// vectors, each normalized to sum to 1.
    pub fn feature_importance(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        (self.ratio_tree.feature_importance(), self.time_tree.feature_importance(), self.psnr_tree.feature_importance())
    }

    /// Extracts features from a dataset and predicts (the end-user path:
    /// features come from a 1 % sample, so this is ~1–2 % of a compression).
    pub fn predict_for<T: ScalarValue>(
        &self,
        data: &Dataset<T>,
        config: &LossyConfig,
        sample_stride: usize,
    ) -> QualityEstimate {
        self.predict(&extract(data, config, sample_stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::config::ErrorBound;

    fn field(seed: usize) -> Dataset<f32> {
        Dataset::from_fn(vec![40, 40], move |i| {
            ((i[0] + seed * 3) as f32 * 0.17).sin() * 4.0 + (i[1] as f32 * 0.09).cos() * 2.0
        })
    }

    fn build_samples() -> Vec<TrainingSample> {
        let mut out = Vec::new();
        for seed in 0..6 {
            let d = field(seed);
            for eb in [1e-5, 1e-4, 1e-3, 1e-2, 1e-1] {
                let cfg = LossyConfig::sz3(eb);
                out.push(TrainingSample::measure(&d, &cfg, 10, None).unwrap());
            }
        }
        out
    }

    #[test]
    fn measure_produces_consistent_labels() {
        let d = field(0);
        let s = TrainingSample::measure(&d, &LossyConfig::sz3(1e-3), 10, None).unwrap();
        assert!(s.ratio > 1.0, "ratio={}", s.ratio);
        assert!(s.time_seconds > 0.0);
        assert!(s.psnr > 40.0, "psnr={}", s.psnr);
    }

    #[test]
    fn override_scales_time_label() {
        let d = field(1);
        let cfg = LossyConfig::sz3(1e-3);
        let small = TrainingSample::measure(&d, &cfg, 10, None).unwrap();
        let big = TrainingSample::measure(&d, &cfg, 10, Some(d.len() * 100)).unwrap();
        assert!((big.time_seconds / small.time_seconds - 100.0).abs() < 1e-6);
    }

    #[test]
    fn model_interpolates_training_regime() {
        let samples = build_samples();
        let model = QualityModel::train(&samples, &TreeConfig::default());
        // Predict on a config/dataset drawn from the same regime.
        let d = field(2);
        let cfg = LossyConfig::sz3(1e-3);
        let est = model.predict_for(&d, &cfg, 10);
        let truth = TrainingSample::measure(&d, &cfg, 10, None).unwrap();
        assert!((est.ratio / truth.ratio).abs().log10().abs() < 0.45, "est {} truth {}", est.ratio, truth.ratio);
        assert!((est.psnr - truth.psnr).abs() < 30.0, "est {} truth {}", est.psnr, truth.psnr);
    }

    #[test]
    fn looser_bounds_predict_higher_ratio() {
        let samples = build_samples();
        let model = QualityModel::train(&samples, &TreeConfig::default());
        let d = field(3);
        let loose = model.predict_for(&d, &LossyConfig::sz3(1e-1), 10);
        let tight = model.predict_for(&d, &LossyConfig::sz3(1e-5), 10);
        assert!(loose.ratio > tight.ratio, "loose {} tight {}", loose.ratio, tight.ratio);
        assert!(loose.psnr < tight.psnr, "loose {} tight {}", loose.psnr, tight.psnr);
    }

    #[test]
    fn exact_reconstruction_psnr_is_clamped() {
        let d = Dataset::<f32>::constant(vec![64], 1.0).unwrap();
        let cfg = LossyConfig::sz3(1e-3).with_error_bound(ErrorBound::Abs(1e-6));
        let s = TrainingSample::measure(&d, &cfg, 4, None).unwrap();
        assert!(s.psnr.is_finite());
    }

    #[test]
    fn compressor_level_features_dominate_ratio_prediction() {
        // The paper: compressor-based features "generally have the highest
        // prediction ability". Features 6-10 are the compressor group.
        let samples = build_samples();
        let model = QualityModel::train(&samples, &TreeConfig::default());
        let (ratio_imp, _, _) = model.feature_importance();
        let compressor: f64 = ratio_imp[6..].iter().sum();
        assert!(compressor > 0.25, "compressor-group importance {compressor} ({ratio_imp:?})");
    }

    #[test]
    fn model_serde_round_trip() {
        let samples = build_samples();
        let model = QualityModel::train(&samples, &TreeConfig::default());
        let json = serde_json::to_string(&model).unwrap();
        let back: QualityModel = serde_json::from_str(&json).unwrap();
        // serde_json's default float parsing is not bit-exact, so tree
        // thresholds may drift by an ULP; compare behaviour at the training
        // points, which sit half a gap away from every threshold.
        for s in &samples {
            let a = model.predict(&s.features);
            let b = back.predict(&s.features);
            assert!((a.ratio - b.ratio).abs() / a.ratio.max(1e-12) < 1e-9);
            assert!((a.psnr - b.psnr).abs() < 1e-6);
        }
    }
}
