//! The eleven prediction features (paper §VI, Fig 3).

use ocelot_sz::config::LossyConfig;
use ocelot_sz::predict::lorenzo;
use ocelot_sz::quantizer::LinearQuantizer;
use ocelot_sz::sample::sample_grid;
use ocelot_sz::stats::{byte_entropy, quant_bin_stats, value_stats};
use ocelot_sz::{Dataset, ScalarValue};

/// Number of features.
pub const FEATURE_COUNT: usize = 11;

/// Human-readable feature names, index-aligned with
/// [`FeatureVector::values`].
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "log10_rel_error_bound", // config
    "predictor_id",          // config (categorical)
    "log10_value_range",     // data
    "std_over_range",        // data
    "byte_entropy",          // data
    "log10_lorenzo_error",   // data
    "p0",                    // compressor
    "cap_p0",                // compressor
    "quant_entropy",         // compressor
    "log10_r_rle",           // compressor
    "unpredictable_frac",    // compressor
];

/// A dense feature vector for one (dataset, configuration) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    /// Feature values, index-aligned with [`FEATURE_NAMES`].
    pub values: [f64; FEATURE_COUNT],
}

impl FeatureVector {
    /// Slice view for model consumption.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

/// Extracts all eleven features, sampling one point every `sample_stride`
/// points for the compressor-based group (the paper's 1 % sampling is
/// `sample_stride = 100`).
///
/// # Panics
/// Panics if `sample_stride == 0`.
pub fn extract<T: ScalarValue>(data: &Dataset<T>, config: &LossyConfig, sample_stride: usize) -> FeatureVector {
    assert!(sample_stride > 0, "sample stride must be positive");
    let stats = value_stats(data);
    let range = stats.range.max(1e-300);
    let abs_eb = config.error_bound.resolve(data);
    let rel_eb = abs_eb / range;

    // Data-based group. Grid sampling keeps spatial structure for the
    // Lorenzo-error feature; per-dimension stride approximates the target
    // overall sampling fraction.
    let dim_stride = per_dim_stride(data.ndim(), sample_stride);
    let sampled = sample_grid(data, dim_stride);
    let entropy = byte_entropy(&sampled);
    let lorenzo_err = lorenzo::mean_raw_error(&sampled);

    // Compressor-based group: quantize sampled raw-value Lorenzo errors (the
    // paper runs Lorenzo prediction "with the real data values instead of
    // the reconstructed data values").
    let bins = sampled_quant_codes(&sampled, abs_eb, config.quant_radius);
    let qstats = quant_bin_stats(&bins, config.quant_radius);

    FeatureVector {
        values: [
            rel_eb.max(1e-300).log10(),
            config.predictor.id() as f64,
            range.log10(),
            stats.std_dev / range,
            entropy,
            (lorenzo_err / range).max(1e-300).log10(),
            qstats.p0,
            qstats.cap_p0,
            qstats.quant_entropy,
            qstats.r_rle.min(1e6).log10(),
            qstats.unpredictable,
        ],
    }
}

/// Per-dimension stride so that the overall kept fraction approximates
/// `1 / linear_stride`.
fn per_dim_stride(ndim: usize, linear_stride: usize) -> usize {
    ((linear_stride as f64).powf(1.0 / ndim.max(1) as f64).round() as usize).max(1)
}

/// Quantization codes of raw-value Lorenzo errors over an already-sampled
/// dataset.
fn sampled_quant_codes<T: ScalarValue>(sampled: &Dataset<T>, abs_eb: f64, radius: u32) -> Vec<u32> {
    let q = LinearQuantizer::new(abs_eb.max(1e-300), radius.max(2));
    let dims = sampled.dims().to_vec();
    let vals = sampled.values();
    let mut codes = Vec::with_capacity(vals.len());
    match dims.len() {
        1 => {
            for i in 0..vals.len() {
                let pred = if i > 0 { vals[i - 1].to_f64() } else { 0.0 };
                codes.push(q.quantize(vals[i], pred).code);
            }
        }
        2 => {
            let n1 = dims[1];
            let at = |i: isize, j: isize| -> f64 {
                if i < 0 || j < 0 {
                    0.0
                } else {
                    vals[i as usize * n1 + j as usize].to_f64()
                }
            };
            for i in 0..dims[0] as isize {
                for j in 0..n1 as isize {
                    let pred = at(i - 1, j) + at(i, j - 1) - at(i - 1, j - 1);
                    codes.push(q.quantize(vals[(i as usize) * n1 + j as usize], pred).code);
                }
            }
        }
        _ => {
            let (n0, n1, n2) = (dims[0], dims[1], dims[2]);
            let s0 = n1 * n2;
            let at = |i: isize, j: isize, k: isize| -> f64 {
                if i < 0 || j < 0 || k < 0 {
                    0.0
                } else {
                    vals[i as usize * s0 + j as usize * n2 + k as usize].to_f64()
                }
            };
            for i in 0..n0 as isize {
                for j in 0..n1 as isize {
                    for k in 0..n2 as isize {
                        let pred = at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
                            - at(i - 1, j - 1, k)
                            - at(i - 1, j, k - 1)
                            - at(i, j - 1, k - 1)
                            + at(i - 1, j - 1, k - 1);
                        codes.push(q.quantize(vals[(i as usize) * s0 + (j as usize) * n2 + k as usize], pred).code);
                    }
                }
            }
        }
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::config::{ErrorBound, PredictorKind};

    fn wavy() -> Dataset<f32> {
        Dataset::from_fn(vec![48, 48], |i| ((i[0] as f32) * 0.2).sin() * 3.0 + (i[1] as f32) * 0.05)
    }

    #[test]
    fn feature_vector_has_expected_layout() {
        let fv = extract(&wavy(), &LossyConfig::sz3(1e-3), 100);
        assert_eq!(fv.values.len(), FEATURE_NAMES.len());
        assert!((fv.values[0] - (-3.0)).abs() < 0.01, "rel eb log10 = {}", fv.values[0]);
        assert_eq!(fv.values[1], PredictorKind::InterpCubic.id() as f64);
        assert!(fv.values[6] >= 0.0 && fv.values[6] <= 1.0, "p0 in [0,1]");
        assert!(fv.values[4] > 0.0 && fv.values[4] <= 8.0, "byte entropy in (0,8]");
    }

    #[test]
    fn looser_bound_raises_p0() {
        let d = wavy();
        let loose = extract(&d, &LossyConfig::sz3(1e-1), 16);
        let tight = extract(&d, &LossyConfig::sz3(1e-6), 16);
        assert!(loose.values[6] > tight.values[6], "p0 loose {} vs tight {}", loose.values[6], tight.values[6]);
        assert!(
            loose.values[8] <= tight.values[8] + 1e-9,
            "entropy loose {} vs tight {}",
            loose.values[8],
            tight.values[8]
        );
    }

    #[test]
    fn sampling_changes_cost_not_semantics() {
        let d = wavy();
        let full = extract(&d, &LossyConfig::sz3(1e-3), 1);
        let sampled = extract(&d, &LossyConfig::sz3(1e-3), 100);
        // Config/data group features must be close; compressor group is an
        // approximation but should stay in the same regime.
        assert_eq!(full.values[0], sampled.values[0]);
        assert!((full.values[6] - sampled.values[6]).abs() < 0.35, "p0 {} vs {}", full.values[6], sampled.values[6]);
    }

    #[test]
    fn per_dim_stride_roots() {
        assert_eq!(per_dim_stride(1, 100), 100);
        assert_eq!(per_dim_stride(2, 100), 10);
        assert_eq!(per_dim_stride(3, 100), 5);
    }

    #[test]
    fn absolute_bounds_are_normalized_to_relative() {
        let d = wavy();
        let range = d.value_range();
        let fv = extract(&d, &LossyConfig::sz3(0.0).with_error_bound(ErrorBound::Abs(range * 1e-2)), 50);
        assert!((fv.values[0] - (-2.0)).abs() < 1e-9);
    }

    #[test]
    fn features_are_finite_on_constant_data() {
        let d = Dataset::<f32>::constant(vec![32, 32], 5.0).unwrap();
        let fv = extract(&d, &LossyConfig::sz3(1e-3), 10);
        assert!(fv.values.iter().all(|v| v.is_finite()), "{:?}", fv.values);
    }
}
