//! Training-set assembly, train/test splitting, and prediction-error
//! analysis (the paper's Fig 12 error distributions and 80 % confidence
//! boxes).

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::model::TrainingSample;

/// A labelled collection of training samples.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    samples: Vec<TrainingSample>,
}

impl TrainingSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: TrainingSample) {
        self.samples.push(sample);
    }

    /// All samples.
    pub fn samples(&self) -> &[TrainingSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into train/test by shuffling with `seed` and taking
    /// `train_frac` of samples for training (the paper trains on 30 % for
    /// ratio/time and 50 % for PSNR).
    ///
    /// # Panics
    /// Panics if `train_frac` is outside `(0, 1)` or the set has < 2 samples.
    pub fn split(&self, train_frac: f64, seed: u64) -> TrainTestSplit {
        assert!(train_frac > 0.0 && train_frac < 1.0, "train fraction must be in (0,1)");
        assert!(self.samples.len() >= 2, "need at least 2 samples to split");
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_train = ((self.samples.len() as f64 * train_frac).round() as usize).clamp(1, self.samples.len() - 1);
        let (train, test) = idx.split_at(n_train);
        TrainTestSplit {
            train: train.iter().map(|&i| self.samples[i].clone()).collect(),
            test: test.iter().map(|&i| self.samples[i].clone()).collect(),
        }
    }
}

impl FromIterator<TrainingSample> for TrainingSet {
    fn from_iter<I: IntoIterator<Item = TrainingSample>>(iter: I) -> Self {
        TrainingSet { samples: iter.into_iter().collect() }
    }
}

impl Extend<TrainingSample> for TrainingSet {
    fn extend<I: IntoIterator<Item = TrainingSample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

/// The outcome of a train/test split.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training samples.
    pub train: Vec<TrainingSample>,
    /// Held-out samples.
    pub test: Vec<TrainingSample>,
}

/// Distribution of `predicted − actual` errors for one quality metric.
#[derive(Debug, Clone, Default)]
pub struct ErrorDistribution {
    errors: Vec<f64>,
}

impl ErrorDistribution {
    /// Creates a distribution from raw signed errors.
    pub fn new(mut errors: Vec<f64>) -> Self {
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ErrorDistribution { errors }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether there are no observations.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Root mean squared error.
    pub fn rmse(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        (self.errors.iter().map(|e| e * e).sum::<f64>() / self.errors.len() as f64).sqrt()
    }

    /// Mean signed error (bias).
    pub fn mean(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// Mean absolute error.
    pub fn mae(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().map(|e| e.abs()).sum::<f64>() / self.errors.len() as f64
    }

    /// Central interval containing `coverage` of the mass (the paper's green
    /// 80 % box uses `coverage = 0.8`). Returns `(lo, hi)` quantiles.
    ///
    /// # Panics
    /// Panics if `coverage` is outside `(0, 1]` or the distribution is empty.
    pub fn central_interval(&self, coverage: f64) -> (f64, f64) {
        assert!(coverage > 0.0 && coverage <= 1.0, "coverage in (0,1]");
        assert!(!self.errors.is_empty(), "empty distribution");
        let tail = (1.0 - coverage) / 2.0;
        (self.quantile(tail), self.quantile(1.0 - tail))
    }

    /// Empirical quantile by linear interpolation.
    ///
    /// # Panics
    /// Panics if the distribution is empty or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        assert!(!self.errors.is_empty(), "empty distribution");
        let pos = q * (self.errors.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.errors[lo] * (1.0 - frac) + self.errors[hi] * frac
    }

    /// Histogram over `bins` equal-width buckets spanning the error range;
    /// returns `(bucket_centres, fraction_per_bucket)` — the series plotted
    /// in Fig 12.
    ///
    /// # Panics
    /// Panics if `bins == 0` or the distribution is empty.
    pub fn histogram(&self, bins: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(bins > 0, "at least one bin");
        assert!(!self.errors.is_empty(), "empty distribution");
        let lo = self.errors[0];
        let hi = *self.errors.last().expect("nonempty");
        let width = ((hi - lo) / bins as f64).max(1e-300);
        let mut counts = vec![0usize; bins];
        for &e in &self.errors {
            let b = (((e - lo) / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        let centres = (0..bins).map(|b| lo + (b as f64 + 0.5) * width).collect();
        let fracs = counts.iter().map(|&c| c as f64 / self.errors.len() as f64).collect();
        (centres, fracs)
    }
}

/// Convenience: feature matrix rows for model fitting.
pub(crate) fn feature_matrix(samples: &[TrainingSample]) -> Vec<Vec<f64>> {
    samples.iter().map(|s| s.features.as_slice().to_vec()).collect()
}

/// Convenience: one target column extracted by `f`.
pub(crate) fn target_column(samples: &[TrainingSample], f: impl Fn(&TrainingSample) -> f64) -> Vec<f64> {
    samples.iter().map(f).collect()
}

/// Helper for tests across the crate: a sample with the given feature 0 and
/// targets.
#[cfg(test)]
pub(crate) fn synthetic_sample(x0: f64, ratio: f64, time: f64, psnr: f64) -> TrainingSample {
    let mut values = [0.0; crate::features::FEATURE_COUNT];
    values[0] = x0;
    TrainingSample { features: crate::features::FeatureVector { values }, ratio, time_seconds: time, psnr }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_all_samples() {
        let set: TrainingSet = (0..100).map(|i| synthetic_sample(i as f64, 1.0, 1.0, 1.0)).collect();
        let split = set.split(0.3, 7);
        assert_eq!(split.train.len(), 30);
        assert_eq!(split.test.len(), 70);
    }

    #[test]
    fn split_is_deterministic() {
        let set: TrainingSet = (0..40).map(|i| synthetic_sample(i as f64, 1.0, 1.0, 1.0)).collect();
        let a = set.split(0.5, 3);
        let b = set.split(0.5, 3);
        assert_eq!(a.train.len(), b.train.len());
        for (s, t) in a.train.iter().zip(&b.train) {
            assert_eq!(s.features, t.features);
        }
    }

    #[test]
    fn error_distribution_statistics() {
        let d = ErrorDistribution::new(vec![-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(d.mean(), 0.5);
        assert_eq!(d.mae(), 1.0);
        assert!((d.rmse() - (6.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn central_interval_covers_the_bulk() {
        let errs: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let d = ErrorDistribution::new(errs);
        let (lo, hi) = d.central_interval(0.8);
        assert!((lo - 0.1).abs() < 0.01, "lo={lo}");
        assert!((hi - 0.9).abs() < 0.01, "hi={hi}");
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let d = ErrorDistribution::new((0..500).map(|i| ((i * 37) % 100) as f64 / 10.0).collect());
        let (centres, fracs) = d.histogram(20);
        assert_eq!(centres.len(), 20);
        assert!((fracs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints() {
        let d = ErrorDistribution::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 3.0);
        assert_eq!(d.quantile(0.5), 2.0);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_fraction_panics() {
        let set: TrainingSet = (0..4).map(|i| synthetic_sample(i as f64, 1.0, 1.0, 1.0)).collect();
        set.split(1.5, 0);
    }
}
