//! k-fold cross-validation for the quality models — a sturdier accuracy
//! estimate than the paper's single split, used by the ablation benches to
//! compare estimators fairly.

use crate::dataset::ErrorDistribution;
use crate::model::{QualityModel, TrainingSample};
use crate::tree::TreeConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cross-validated accuracy of the three quality metrics.
#[derive(Debug, Clone)]
pub struct CrossValReport {
    /// Folds evaluated.
    pub folds: usize,
    /// Out-of-fold relative ratio errors `(pred − real)/real`.
    pub ratio_errors: ErrorDistribution,
    /// Out-of-fold relative time errors.
    pub time_errors: ErrorDistribution,
    /// Out-of-fold absolute PSNR errors in dB.
    pub psnr_errors: ErrorDistribution,
}

impl CrossValReport {
    /// Convenience: RMSE triple `(ratio_rel, time_rel, psnr_db)`.
    pub fn rmse(&self) -> (f64, f64, f64) {
        (self.ratio_errors.rmse(), self.time_errors.rmse(), self.psnr_errors.rmse())
    }
}

/// Runs `k`-fold cross-validation over `samples`.
///
/// Every sample is predicted exactly once, by a model that never saw it.
///
/// # Panics
/// Panics if `k < 2` or `samples.len() < k`.
pub fn cross_validate(samples: &[TrainingSample], k: usize, config: &TreeConfig, seed: u64) -> CrossValReport {
    assert!(k >= 2, "at least 2 folds");
    assert!(samples.len() >= k, "need at least one sample per fold");
    let mut order: Vec<usize> = (0..samples.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));

    let mut ratio_errors = Vec::with_capacity(samples.len());
    let mut time_errors = Vec::with_capacity(samples.len());
    let mut psnr_errors = Vec::with_capacity(samples.len());
    for fold in 0..k {
        let held: Vec<usize> = order.iter().copied().skip(fold).step_by(k).collect();
        let held_set: std::collections::HashSet<usize> = held.iter().copied().collect();
        let train: Vec<TrainingSample> =
            order.iter().filter(|i| !held_set.contains(i)).map(|&i| samples[i].clone()).collect();
        let model = QualityModel::train(&train, config);
        for &i in &held {
            let s = &samples[i];
            let est = model.predict(&s.features);
            ratio_errors.push((est.ratio - s.ratio) / s.ratio.max(1e-12));
            time_errors.push((est.time_seconds - s.time_seconds) / s.time_seconds.max(1e-12));
            psnr_errors.push(est.psnr - s.psnr);
        }
    }
    CrossValReport {
        folds: k,
        ratio_errors: ErrorDistribution::new(ratio_errors),
        time_errors: ErrorDistribution::new(time_errors),
        psnr_errors: ErrorDistribution::new(psnr_errors),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureVector, FEATURE_COUNT};

    /// Synthetic samples with a learnable structure: ratio = 2^(x0), time =
    /// 10·x0, psnr = 50 + 20·x0, over a grid of x0 with mild noise in other
    /// features.
    fn samples(n: usize) -> Vec<TrainingSample> {
        (0..n)
            .map(|i| {
                let x0 = (i % 13) as f64 / 2.0;
                let mut values = [0.0; FEATURE_COUNT];
                values[0] = x0;
                values[3] = ((i * 7) % 5) as f64; // irrelevant feature
                TrainingSample {
                    features: FeatureVector { values },
                    ratio: 2f64.powf(x0),
                    time_seconds: 10.0 * x0 + 1.0,
                    psnr: 50.0 + 20.0 * x0,
                }
            })
            .collect()
    }

    #[test]
    fn cross_validation_covers_every_sample_once() {
        let s = samples(91);
        let report = cross_validate(&s, 7, &TreeConfig::default(), 1);
        assert_eq!(report.folds, 7);
        assert_eq!(report.ratio_errors.len(), 91);
        assert_eq!(report.psnr_errors.len(), 91);
    }

    #[test]
    fn learnable_structure_yields_low_oof_error() {
        let s = samples(130);
        let report = cross_validate(&s, 5, &TreeConfig::default(), 2);
        let (ratio, time, psnr) = report.rmse();
        assert!(ratio < 0.15, "ratio rmse {ratio}");
        assert!(time < 0.15, "time rmse {time}");
        assert!(psnr < 5.0, "psnr rmse {psnr}");
    }

    #[test]
    fn deterministic_given_seed() {
        let s = samples(40);
        let a = cross_validate(&s, 4, &TreeConfig::default(), 9);
        let b = cross_validate(&s, 4, &TreeConfig::default(), 9);
        assert_eq!(a.rmse(), b.rmse());
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_is_rejected() {
        cross_validate(&samples(10), 1, &TreeConfig::default(), 0);
    }
}
