//! Compression-quality prediction (the paper's §VI).
//!
//! Given a dataset and a candidate compressor configuration, predicts the
//! compression ratio, compression time, and PSNR *without compressing*, from
//! eleven cheap features in three groups:
//!
//! * **config-based** — error bound, compressor/predictor type;
//! * **data-based** — value range statistics, byte-level entropy, mean
//!   Lorenzo prediction error;
//! * **compressor-based** — quantization-bin statistics (`p0`, `P0`,
//!   quantization entropy, run-length estimator `R_rle`) computed on a 1 %
//!   sample.
//!
//! A from-scratch CART regression tree (plus an optional bagged forest)
//! learns the mapping from features to each quality metric.
//!
//! ```
//! use ocelot_qpred::features::{extract, FEATURE_COUNT};
//! use ocelot_sz::{Dataset, LossyConfig};
//!
//! let data = Dataset::from_fn(vec![64, 64], |i| (i[0] as f32 * 0.1).sin() + i[1] as f32 * 0.01);
//! let fv = extract(&data, &LossyConfig::sz3(1e-3), 100);
//! assert_eq!(fv.values.len(), FEATURE_COUNT);
//! ```

pub mod crossval;
pub mod dataset;
pub mod features;
pub mod forest;
pub mod model;
pub mod transform;
pub mod tree;

pub use crossval::{cross_validate, CrossValReport};
pub use dataset::{ErrorDistribution, TrainTestSplit, TrainingSet};
pub use features::{extract, FeatureVector, FEATURE_COUNT, FEATURE_NAMES};
pub use forest::RandomForest;
pub use model::{QualityEstimate, QualityModel, TrainingSample};
pub use transform::{TransformQualityModel, TransformSample};
pub use tree::{DecisionTree, TreeConfig};
