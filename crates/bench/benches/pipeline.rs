//! End-to-end pipeline benchmarks behind Table VIII / Figs 9, 10, 16: full
//! orchestrated runs (workload profiling + cluster scheduling + transfer
//! simulation) per application, strategy, and node count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::workload::Workload;
use ocelot_datagen::Application;
use ocelot_faas::{Cluster, WaitTimeModel};
use ocelot_netsim::SiteId;

fn bench_table8_strategies(c: &mut Criterion) {
    let orch = Orchestrator::paper();
    let w = Workload::paper_default(Application::Miranda, 16).expect("workload");
    let opts = PipelineOptions::default();
    let mut g = c.benchmark_group("table8_pipeline");
    g.sample_size(10);
    for (name, strategy) in
        [("direct", Strategy::Direct), ("compressed", Strategy::Compressed), ("grouped", Strategy::grouped_by_count(8))]
    {
        g.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            b.iter(|| orch.run(&w, SiteId::Anvil, SiteId::Bebop, s, &opts))
        });
    }
    g.finish();
}

fn bench_fig9_scaling(c: &mut Criterion) {
    let orch = Orchestrator::paper();
    let w = Workload::paper_default(Application::Rtm, 16).expect("workload");
    let anvil = *orch.topology().site(SiteId::Anvil);
    let mut g = c.benchmark_group("fig9_scaling");
    g.sample_size(10);
    for nodes in [1usize, 4, 16] {
        let cluster = Cluster::new(nodes, anvil.cores_per_node, anvil.core_speed);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{nodes}_nodes")), &cluster, |b, cl| {
            b.iter(|| {
                (
                    orch.compression_time(&w, &anvil, cl, Strategy::Compressed, 1),
                    orch.decompression_time(&w, &anvil, cl, 1),
                )
            })
        });
    }
    g.finish();
}

fn bench_fig10_sentinel(c: &mut Criterion) {
    let orch = Orchestrator::paper();
    let w = Workload::paper_default(Application::Miranda, 16).expect("workload");
    let opts = PipelineOptions { wait_model: WaitTimeModel::Fixed(600.0), sentinel: true, ..Default::default() };
    let mut g = c.benchmark_group("fig10_sentinel");
    g.sample_size(10);
    g.bench_function("sentinel_600s_wait", |b| {
        b.iter(|| orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &opts))
    });
    g.finish();
}

fn bench_workload_profiling(c: &mut Criterion) {
    // The real-compression profiling pass that backs every Table VIII run.
    let mut g = c.benchmark_group("table8_workload_profiling");
    g.sample_size(10);
    g.bench_function("miranda_profile_scale16", |b| {
        b.iter(|| Workload::paper_default(Application::Miranda, 16).expect("workload"))
    });
    g.finish();
}

criterion_group!(benches, bench_table8_strategies, bench_fig9_scaling, bench_fig10_sentinel, bench_workload_profiling);
criterion_main!(benches);
