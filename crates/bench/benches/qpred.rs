//! Quality-prediction benchmarks behind Figs 12–14 and Tables V–VII:
//! feature-extraction cost at the paper's sampling rates (the Fig 13A
//! overhead claim), tree training, and prediction latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot_bench::pool::{build_app_pool, to_training, EBS11};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_qpred::{extract, QualityModel, TreeConfig};
use ocelot_sz::LossyConfig;

fn bench_feature_extraction(c: &mut Criterion) {
    let data = FieldSpec::new(Application::Nyx, "temperature").with_scale(8).generate();
    let cfg = LossyConfig::sz3(1e-3);
    let mut g = c.benchmark_group("fig13a_feature_extraction");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(10);
    for stride in [1usize, 10, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("sample_1_in_{stride}")), &stride, |b, &s| {
            b.iter(|| extract(&data, &cfg, s))
        });
    }
    g.finish();
}

fn bench_training_and_prediction(c: &mut Criterion) {
    let pool = build_app_pool(Application::Miranda, &["density", "pressure", "velocity-x"], 0..3, &EBS11, 16);
    let samples = to_training(&pool);
    let mut g = c.benchmark_group("fig12_model");
    g.sample_size(10);
    g.bench_function("train_decision_trees", |b| b.iter(|| QualityModel::train(&samples, &TreeConfig::default())));
    let model = QualityModel::train(&samples, &TreeConfig::default());
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("predict_all_samples", |b| {
        b.iter(|| samples.iter().map(|s| model.predict(&s.features).ratio).sum::<f64>())
    });
    g.finish();
}

criterion_group!(benches, bench_feature_extraction, bench_training_and_prediction);
criterion_main!(benches);
