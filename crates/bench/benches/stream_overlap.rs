//! Staged vs streamed chunk-pipeline wall-clock (the overlap measurement):
//! the streamed path ships each compressed chunk into a bounded in-process
//! lane and decodes it on arrival, so compress and decompress overlap
//! instead of running back to back. Same bytes either way — this bench
//! records what the overlap buys at different window sizes and thread
//! counts, and emits a `BENCH_stream.json` summary (in the bench crate
//! directory) so the perf trajectory is recorded run over run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot::executor::ParallelExecutor;
use ocelot_sz::{Dataset, LossyConfig};
use std::time::Instant;

/// Window sizes under test: tight, comfortable, and effectively unbounded
/// (larger than the chunk count, so back-pressure never engages).
const WINDOWS: [usize; 3] = [1, 4, 1024];
const THREADS: [usize; 2] = [1, 4];

fn field() -> Dataset<f32> {
    // Smooth + oscillatory mix (~16 MB): enough chunks for overlap to
    // matter without making `cargo bench` crawl.
    Dataset::from_fn(vec![160, 160, 160], |i| {
        let (x, y, z) = (i[0] as f32, i[1] as f32, i[2] as f32);
        (x * 0.031).sin() * (y * 0.017).cos() + (z * 0.011).sin() * 0.5 + (x + y + z) * 1e-4
    })
}

/// Pinned chunk layout so every variant sees the same container bytes.
fn config(data: &Dataset<f32>) -> LossyConfig {
    LossyConfig::sz3(1e-3).with_chunk_points(Some(data.len() / 16 + 1))
}

fn bench_stream_overlap(c: &mut Criterion) {
    let data = field();
    let cfg = config(&data);
    let mut g = c.benchmark_group("stream_overlap");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(5);
    for threads in THREADS {
        let ex = ParallelExecutor::new(1).with_codec_threads(threads);
        g.bench_with_input(BenchmarkId::from_parameter(format!("staged/{threads}t")), &ex, |b, ex| {
            b.iter(|| ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip"))
        });
        for window in WINDOWS {
            let id = BenchmarkId::from_parameter(format!("streamed/w{window}/{threads}t"));
            g.bench_with_input(id, &ex, |b, ex| {
                b.iter(|| ex.stream_round_trip(&data, &cfg, window).expect("streamed round trip"))
            });
        }
    }
    g.finish();
}

/// Medians over `runs` timed calls (one untimed warm-up).
fn median_secs<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[derive(serde::Serialize)]
struct WindowTiming {
    window: usize,
    streamed_s: f64,
}

#[derive(serde::Serialize)]
struct ThreadSummary {
    codec_threads: usize,
    staged_s: f64,
    windows: Vec<WindowTiming>,
}

#[derive(serde::Serialize)]
struct StreamBenchSummary {
    bench: &'static str,
    dataset_bytes: usize,
    dims: Vec<usize>,
    results: Vec<ThreadSummary>,
}

/// Writes the staged/streamed medians to `BENCH_stream.json` in the
/// current directory (skipped when the target runs under `cargo test`).
fn emit_summary(_c: &mut Criterion) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let data = field();
    let cfg = config(&data);
    let mut results = Vec::new();
    for threads in THREADS {
        let ex = ParallelExecutor::new(1).with_codec_threads(threads);
        let staged = median_secs(3, || ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip"));
        let windows = WINDOWS
            .iter()
            .map(|&window| WindowTiming {
                window,
                streamed_s: median_secs(3, || ex.stream_round_trip(&data, &cfg, window).expect("streamed round trip")),
            })
            .collect();
        results.push(ThreadSummary { codec_threads: threads, staged_s: staged, windows });
    }
    let summary = StreamBenchSummary {
        bench: "stream_overlap",
        dataset_bytes: data.nbytes(),
        dims: data.dims().to_vec(),
        results,
    };
    let path = "BENCH_stream.json";
    match std::fs::write(path, serde_json::to_string_pretty(&summary).expect("summary serializes")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_stream_overlap, emit_summary);
criterion_main!(benches);
