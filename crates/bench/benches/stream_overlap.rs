//! Staged vs streamed chunk-pipeline wall-clock (the overlap measurement):
//! the streamed path ships each compressed chunk into a bounded in-process
//! lane and decodes it on arrival, so compress and decompress overlap
//! instead of running back to back. Same bytes either way — this bench
//! records what the overlap buys at different window sizes and thread
//! counts, and **appends** a record to the `BENCH_stream.json` trajectory
//! (in the bench crate directory, `ocelot::perf` format) so the perf
//! history accumulates run over run instead of being overwritten. The
//! staged-over-streamed margins land in the record's `meta`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot::executor::ParallelExecutor;
use ocelot_sz::{Dataset, LossyConfig};
use std::time::Instant;

/// Window sizes under test: tight, comfortable, and effectively unbounded
/// (larger than the chunk count, so back-pressure never engages).
const WINDOWS: [usize; 3] = [1, 4, 1024];
const THREADS: [usize; 2] = [1, 4];

fn field() -> Dataset<f32> {
    // Smooth + oscillatory mix (~16 MB): enough chunks for overlap to
    // matter without making `cargo bench` crawl.
    Dataset::from_fn(vec![160, 160, 160], |i| {
        let (x, y, z) = (i[0] as f32, i[1] as f32, i[2] as f32);
        (x * 0.031).sin() * (y * 0.017).cos() + (z * 0.011).sin() * 0.5 + (x + y + z) * 1e-4
    })
}

/// Pinned chunk layout so every variant sees the same container bytes.
fn config(data: &Dataset<f32>) -> LossyConfig {
    LossyConfig::sz3(1e-3).with_chunk_points(Some(data.len() / 16 + 1))
}

fn bench_stream_overlap(c: &mut Criterion) {
    let data = field();
    let cfg = config(&data);
    let mut g = c.benchmark_group("stream_overlap");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(5);
    for threads in THREADS {
        let ex = ParallelExecutor::new(1).with_codec_threads(threads);
        g.bench_with_input(BenchmarkId::from_parameter(format!("staged/{threads}t")), &ex, |b, ex| {
            b.iter(|| ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip"))
        });
        for window in WINDOWS {
            let id = BenchmarkId::from_parameter(format!("streamed/w{window}/{threads}t"));
            g.bench_with_input(id, &ex, |b, ex| {
                b.iter(|| ex.stream_round_trip(&data, &cfg, window).expect("streamed round trip"))
            });
        }
    }
    g.finish();
}

/// Timed samples over `runs` calls (one untimed warm-up).
fn sample_secs<T>(runs: usize, mut f: impl FnMut() -> T) -> Vec<f64> {
    std::hint::black_box(f());
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// Appends the staged/streamed medians as one `ocelot::perf` record to the
/// `BENCH_stream.json` trajectory in the current directory (skipped when
/// the target runs under `cargo test`). Scenario names are
/// `staged_{t}t` / `streamed_w{w}_{t}t`, so `ocelot perf diff --file
/// crates/bench/BENCH_stream.json` compares consecutive bench runs; the
/// staged-over-streamed speedup per window lands in `meta.margins`.
fn emit_summary(_c: &mut Criterion) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    use serde_json::Value;
    let data = field();
    let cfg = config(&data);
    let bytes = data.nbytes() as u64;
    let mut record = ocelot::perf::PerfRecord::new("stream_overlap");
    let mut margins: Vec<(String, Value)> = Vec::new();
    for threads in THREADS {
        let ex = ParallelExecutor::new(1).with_codec_threads(threads);
        let staged = ocelot::perf::ScenarioResult::from_samples(
            format!("staged_{threads}t"),
            sample_secs(3, || ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip")),
            bytes,
        );
        let staged_median = staged.median_s;
        record.scenarios.push(staged);
        for window in WINDOWS {
            let streamed = ocelot::perf::ScenarioResult::from_samples(
                format!("streamed_w{window}_{threads}t"),
                sample_secs(3, || ex.stream_round_trip(&data, &cfg, window).expect("streamed round trip")),
                bytes,
            );
            if streamed.median_s > 0.0 {
                margins.push((
                    format!("staged_over_streamed_w{window}_{threads}t"),
                    Value::Float(staged_median / streamed.median_s),
                ));
            }
            record.scenarios.push(streamed);
        }
    }
    record.meta = Value::Object(vec![
        ("dataset_bytes".to_string(), Value::UInt(bytes)),
        ("dims".to_string(), Value::Array(data.dims().iter().map(|&d| Value::UInt(d as u64)).collect())),
        ("margins".to_string(), Value::Object(margins)),
    ]);
    let path = std::path::Path::new("BENCH_stream.json");
    match ocelot::perf::append_record(path, "stream_overlap", record) {
        Ok(traj) => println!("appended record #{} to {}", traj.records.len(), path.display()),
        Err(e) => eprintln!("could not append to {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_stream_overlap, emit_summary);
criterion_main!(benches);
