//! Staged vs streamed chunk-pipeline wall-clock (the overlap measurement):
//! the streamed path ships each compressed chunk into a bounded in-process
//! lane and decodes it on arrival, so compress and decompress overlap
//! instead of running back to back. Same bytes either way — this bench
//! records what the overlap buys at different window sizes and thread
//! counts, and **appends** a record to the `BENCH_stream.json` trajectory
//! (in the bench crate directory, `ocelot::perf` format) so the perf
//! history accumulates run over run instead of being overwritten. The
//! staged-over-streamed margins land in the record's `meta`, and each
//! scenario carries the per-kernel attribution captured from the
//! `ocelot_obs::prof` profiler, so kernel-seconds regressions show up in
//! the same trajectory as the wall-clock.
//!
//! Dataset sizing: the interactive criterion matrix runs on a ~16 MiB
//! field so `cargo bench` stays explorable; the recorded summary runs on
//! ≥256 MiB (override either with `OCELOT_STREAM_BENCH_MB`) because
//! overlap only pays once per-chunk work dwarfs channel startup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot::executor::ParallelExecutor;
use ocelot::perf::KernelSample;
use ocelot_sz::{Dataset, LossyConfig};
use std::time::Instant;

/// Window sizes under test: tight, comfortable, and effectively unbounded
/// (larger than the chunk count, so back-pressure never engages).
const WINDOWS: [usize; 3] = [1, 4, 1024];
const THREADS: [usize; 4] = [1, 4, 8, 16];

/// MiB for the recorded summary dataset (`OCELOT_STREAM_BENCH_MB`
/// overrides; floor keeps the record on a ≥256 MiB field).
const SUMMARY_MB: usize = 256;

fn env_mb(default_mb: usize) -> usize {
    std::env::var("OCELOT_STREAM_BENCH_MB").ok().and_then(|s| s.parse().ok()).unwrap_or(default_mb)
}

/// Smooth + oscillatory mix sized to ~`mb` MiB of `f32` (cube side from the
/// requested volume).
fn field(mb: usize) -> Dataset<f32> {
    let points = mb.max(1) * (1 << 20) / 4;
    let side = (points as f64).cbrt().round() as usize;
    Dataset::from_fn(vec![side, side, side], |i| {
        let (x, y, z) = (i[0] as f32, i[1] as f32, i[2] as f32);
        (x * 0.031).sin() * (y * 0.017).cos() + (z * 0.011).sin() * 0.5 + (x + y + z) * 1e-4
    })
}

/// Pinned chunk layout so every variant sees the same container bytes.
fn config(data: &Dataset<f32>) -> LossyConfig {
    LossyConfig::sz3(1e-3).with_chunk_points(Some(data.len() / 16 + 1))
}

fn bench_stream_overlap(c: &mut Criterion) {
    let data = field(env_mb(16));
    let cfg = config(&data);
    let mut g = c.benchmark_group("stream_overlap");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(5);
    for threads in THREADS {
        let ex = ParallelExecutor::new(1).with_codec_threads(threads);
        g.bench_with_input(BenchmarkId::from_parameter(format!("staged/{threads}t")), &ex, |b, ex| {
            b.iter(|| ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip"))
        });
        for window in WINDOWS {
            let id = BenchmarkId::from_parameter(format!("streamed/w{window}/{threads}t"));
            g.bench_with_input(id, &ex, |b, ex| {
                b.iter(|| ex.stream_round_trip(&data, &cfg, window).expect("streamed round trip"))
            });
        }
    }
    g.finish();
}

/// Timed samples over `runs` calls (one untimed warm-up).
fn sample_secs<T>(runs: usize, mut f: impl FnMut() -> T) -> Vec<f64> {
    std::hint::black_box(f());
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// Kernel attribution for the profiler epoch that just ran.
fn epoch_kernels(prof: &Option<std::sync::Arc<ocelot_obs::prof::Profiler>>, epoch: Option<u64>) -> Vec<KernelSample> {
    match (prof, epoch) {
        (Some(p), Some(e)) => p
            .epoch_kernels(e)
            .into_iter()
            .map(|k| KernelSample {
                kernel: k.kernel.name().to_string(),
                nanos: k.nanos,
                calls: k.calls,
                bytes: k.bytes,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Appends the staged/streamed medians (≥3 reps each, so `mad_s` is a real
/// spread) as one `ocelot::perf` record to the `BENCH_stream.json`
/// trajectory in the current directory (skipped when the target runs under
/// `cargo test`). Scenario names are `staged_{t}t` / `streamed_w{w}_{t}t`,
/// so `ocelot perf diff --file crates/bench/BENCH_stream.json` compares
/// consecutive bench runs; the staged-over-streamed speedup per window
/// lands in `meta.margins`.
fn emit_summary(_c: &mut Criterion) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    use serde_json::Value;
    ocelot_obs::prof::install_global(&ocelot_obs::prof::Profiler::with_obs(ocelot_obs::global()));
    let prof = ocelot_obs::prof::global();
    let data = field(env_mb(SUMMARY_MB).max(SUMMARY_MB));
    let cfg = config(&data);
    let bytes = data.nbytes() as u64;
    let mut record = ocelot::perf::PerfRecord::new("stream_overlap");
    let mut margins: Vec<(String, Value)> = Vec::new();
    for threads in THREADS {
        let ex = ParallelExecutor::new(1).with_codec_threads(threads);
        let epoch = prof.as_ref().map(|p| p.advance_epoch());
        let mut staged = ocelot::perf::ScenarioResult::from_samples(
            format!("staged_{threads}t"),
            sample_secs(3, || ex.stream_round_trip(&data, &cfg, 0).expect("staged round trip")),
            bytes,
        );
        staged.kernels = epoch_kernels(&prof, epoch);
        let staged_median = staged.median_s;
        record.scenarios.push(staged);
        for window in WINDOWS {
            let epoch = prof.as_ref().map(|p| p.advance_epoch());
            let mut streamed = ocelot::perf::ScenarioResult::from_samples(
                format!("streamed_w{window}_{threads}t"),
                sample_secs(3, || ex.stream_round_trip(&data, &cfg, window).expect("streamed round trip")),
                bytes,
            );
            streamed.kernels = epoch_kernels(&prof, epoch);
            if streamed.median_s > 0.0 {
                margins.push((
                    format!("staged_over_streamed_w{window}_{threads}t"),
                    Value::Float(staged_median / streamed.median_s),
                ));
            }
            record.scenarios.push(streamed);
        }
    }
    if let Some(p) = &prof {
        record.overhead_ratio = p.overhead_ratio();
    }
    record.meta = Value::Object(vec![
        ("dataset_bytes".to_string(), Value::UInt(bytes)),
        ("dims".to_string(), Value::Array(data.dims().iter().map(|&d| Value::UInt(d as u64)).collect())),
        ("margins".to_string(), Value::Object(margins)),
    ]);
    let path = std::path::Path::new("BENCH_stream.json");
    match ocelot::perf::append_record(path, "stream_overlap", record) {
        Ok(traj) => println!("appended record #{} to {}", traj.records.len(), path.display()),
        Err(e) => eprintln!("could not append to {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_stream_overlap, emit_summary);
criterion_main!(benches);
