//! File-grouping benchmarks behind Fig 11 / §VII-C: planning, packing, and
//! unpacking group files.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot::grouping::{group_blobs, plan_groups, plan_groups_by_count, ungroup_blobs};

fn blobs(n: usize, avg_size: usize) -> Vec<(String, Vec<u8>)> {
    (0..n)
        .map(|i| {
            let size = avg_size / 2 + (i * 2654435761) % avg_size;
            (format!("file{i:05}.sz"), vec![(i % 251) as u8; size])
        })
        .collect()
}

fn bench_planning(c: &mut Criterion) {
    let sizes: Vec<u64> = (0..10_000u64).map(|i| 1_000_000 + (i * 37) % 3_000_000).collect();
    let mut g = c.benchmark_group("fig11_planning");
    g.throughput(Throughput::Elements(sizes.len() as u64));
    g.bench_function("by_target_bytes", |b| b.iter(|| plan_groups(&sizes, 512_000_000)));
    g.bench_function("by_count", |b| b.iter(|| plan_groups_by_count(sizes.len(), 64)));
    g.finish();
}

fn bench_pack_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_pack");
    g.sample_size(10);
    for &(n, avg) in &[(256usize, 64 * 1024usize), (2048, 8 * 1024)] {
        let input = blobs(n, avg);
        let total: usize = input.iter().map(|(_, b)| b.len()).sum();
        let plan = plan_groups_by_count(n, 8);
        g.throughput(Throughput::Bytes(total as u64));
        g.bench_with_input(BenchmarkId::new("group", format!("{n}_files")), &input, |b, input| {
            b.iter(|| group_blobs(input, &plan))
        });
        let (groups, _) = group_blobs(&input, &plan);
        g.bench_with_input(BenchmarkId::new("ungroup", format!("{n}_files")), &groups, |b, groups| {
            b.iter(|| groups.iter().map(|g| ungroup_blobs(g).expect("valid group").len()).sum::<usize>())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_planning, bench_pack_unpack);
criterion_main!(benches);
