//! Transfer-simulator benchmarks behind Table II: the cost of the fluid
//! simulation itself across the paper's file-size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot_netsim::{
    simulate_shared_link, simulate_transfer, simulate_transfer_with_faults, BatchSpec, FaultModel, GridFtpConfig,
    SiteId, Topology,
};

fn bench_table2_sweep(c: &mut Criterion) {
    let topology = Topology::paper();
    let link = topology.route(SiteId::Cori, SiteId::Bebop).link;
    let cfg = GridFtpConfig::untuned();
    let mut g = c.benchmark_group("table2_simulation");
    g.sample_size(10);
    for &(size, total) in &[
        (1_000_000u64, 30_000_000_000u64),
        (10_000_000, 300_000_000_000),
        (100_000_000, 300_000_000_000),
        (1_000_000_000, 300_000_000_000),
    ] {
        let files = vec![size; (total / size) as usize];
        g.throughput(Throughput::Elements(files.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(format!("{}MB_files", size / 1_000_000)), &files, |b, f| {
            b.iter(|| simulate_transfer(f, &link, &cfg, 7))
        });
    }
    g.finish();
}

fn bench_tuned_vs_untuned(c: &mut Criterion) {
    let topology = Topology::paper();
    let link = topology.route(SiteId::Anvil, SiteId::Cori).link;
    let files = vec![200_000_000u64; 2000];
    let mut g = c.benchmark_group("table2_configs");
    g.sample_size(10);
    g.bench_function("untuned_c4", |b| b.iter(|| simulate_transfer(&files, &link, &GridFtpConfig::untuned(), 7)));
    g.bench_function("tuned_c32", |b| b.iter(|| simulate_transfer(&files, &link, &GridFtpConfig::default(), 7)));
    g.finish();
}

fn bench_faults_and_contention(c: &mut Criterion) {
    let topology = Topology::paper();
    let link = topology.route(SiteId::Anvil, SiteId::Bebop).link;
    let files = vec![100_000_000u64; 500];
    let mut g = c.benchmark_group("ext_reliability");
    g.sample_size(10);
    g.bench_function("faulty_transfer_p10", |b| {
        b.iter(|| simulate_transfer_with_faults(&files, &link, &GridFtpConfig::default(), &FaultModel::flaky(0.1), 3))
    });
    let batches = vec![
        BatchSpec { files: files.clone(), start_s: 0.0, config: GridFtpConfig::default() },
        BatchSpec { files: files.clone(), start_s: 20.0, config: GridFtpConfig::default() },
    ];
    g.bench_function("shared_link_two_batches", |b| b.iter(|| simulate_shared_link(&batches, &link, 3)));
    g.finish();
}

criterion_group!(benches, bench_table2_sweep, bench_tuned_vs_untuned, bench_faults_and_contention);
criterion_main!(benches);
