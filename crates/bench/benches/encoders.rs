//! Lossless-stage kernel benchmarks (the Huffman/LZ/RLE coders that
//! dominate compression time at tight bounds — the mechanism behind Fig 4
//! and Fig 14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot_sz::encode::{huffman_decode, huffman_encode, lz_compress, lz_decompress, rle_decode, rle_encode};

/// Synthetic quantization-bin stream with the given zero-bin probability.
fn bin_stream(n: usize, p0_percent: u32) -> Vec<u32> {
    let zero = 1u32 << 15;
    let mut state = 0x243F_6A88_85A3_08D3u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) as u32;
            if r % 100 < p0_percent {
                zero
            } else {
                zero + (r % 17) - 8
            }
        })
        .collect()
}

fn bench_huffman(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_huffman");
    g.sample_size(10);
    for p0 in [50u32, 90, 99] {
        let stream = bin_stream(1 << 20, p0);
        g.throughput(Throughput::Elements(stream.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", format!("p0_{p0}")), &stream, |b, s| {
            b.iter(|| huffman_encode(s))
        });
        let enc = huffman_encode(&stream);
        g.bench_with_input(BenchmarkId::new("decode", format!("p0_{p0}")), &enc, |b, e| {
            b.iter(|| huffman_decode(e).expect("valid stream"))
        });
    }
    g.finish();
}

fn bench_lz(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_lz");
    g.sample_size(10);
    let stream = bin_stream(1 << 19, 95);
    let bytes = huffman_encode(&stream);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("compress", |b| b.iter(|| lz_compress(&bytes)));
    let lz = lz_compress(&bytes);
    g.bench_function("decompress", |b| b.iter(|| lz_decompress(&lz).expect("valid stream")));
    g.finish();
}

fn bench_rle(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_rle");
    g.sample_size(10);
    let zero = 1u32 << 15;
    let stream = bin_stream(1 << 20, 98);
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("encode", |b| b.iter(|| rle_encode(&stream, zero)));
    let enc = rle_encode(&stream, zero);
    g.bench_function("decode", |b| b.iter(|| rle_decode(&enc, zero).expect("valid stream")));
    g.finish();
}

criterion_group!(benches, bench_huffman, bench_lz, bench_rle);
criterion_main!(benches);
