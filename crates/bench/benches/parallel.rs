//! Real-thread parallel compression scaling (the laptop analogue of Fig 9
//! left): the ParallelExecutor over 1/2/4/8 workers on real files.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot::executor::ParallelExecutor;
use ocelot_datagen::{Application, FieldSpec};
use ocelot_sz::{Dataset, LossyConfig};

fn files(n: usize) -> Vec<Dataset<f32>> {
    (0..n as u64)
        .map(|seed| FieldSpec::new(Application::Miranda, "density").with_scale(16).with_seed(seed).generate())
        .collect()
}

fn bench_thread_scaling(c: &mut Criterion) {
    let data = files(16);
    let bytes: usize = data.iter().map(|d| d.nbytes()).sum();
    let cfg = LossyConfig::sz3(1e-3);
    let mut g = c.benchmark_group("fig9_threads");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let ex = ParallelExecutor::new(threads);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{threads}_threads")), &ex, |b, ex| {
            b.iter(|| ex.compress_all(&data, &cfg).expect("compression succeeds"))
        });
    }
    g.finish();
}

fn bench_parallel_decompression(c: &mut Criterion) {
    let data = files(16);
    let cfg = LossyConfig::sz3(1e-3);
    let blobs = ParallelExecutor::new(4).compress_all(&data, &cfg).expect("compression succeeds");
    let mut g = c.benchmark_group("fig9_threads_decompress");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let ex = ParallelExecutor::new(threads);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{threads}_threads")), &ex, |b, ex| {
            b.iter(|| ex.decompress_all(&blobs).expect("decompression succeeds"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_parallel_decompression);
criterion_main!(benches);
