//! Real-codec kernel benchmarks behind Table V / Fig 13: compression and
//! decompression throughput per predictor and backend, plus the
//! transform-based (ZFP-style) baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_sz::config::{LosslessBackend, PredictorKind};
use ocelot_sz::{compress, decompress, Codec, CodecConfig, LossyConfig, ZfpCodec};

fn bench_predictors(c: &mut Criterion) {
    let data = FieldSpec::new(Application::Miranda, "density").with_scale(8).generate();
    let mut g = c.benchmark_group("table5_compress_by_predictor");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(10);
    for predictor in PredictorKind::ALL {
        let cfg = LossyConfig::sz3(1e-3).with_predictor(predictor);
        g.bench_with_input(BenchmarkId::from_parameter(predictor.name()), &cfg, |b, cfg| {
            b.iter(|| compress(&data, cfg).expect("compression succeeds"))
        });
    }
    g.finish();
}

fn bench_backends(c: &mut Criterion) {
    let data = FieldSpec::new(Application::Cesm, "LHFLX").with_scale(8).generate();
    let mut g = c.benchmark_group("table5_compress_by_backend");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(10);
    for backend in [LosslessBackend::Huffman, LosslessBackend::HuffmanLz, LosslessBackend::RleHuffman] {
        let cfg = LossyConfig::sz3(1e-3).with_backend(backend);
        g.bench_with_input(BenchmarkId::from_parameter(backend.name()), &cfg, |b, cfg| {
            b.iter(|| compress(&data, cfg).expect("compression succeeds"))
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let data = FieldSpec::new(Application::Rtm, "snapshot-1048").with_scale(12).generate();
    let mut g = c.benchmark_group("fig13_decompress");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(10);
    for eb in [1e-5, 1e-3, 1e-1] {
        let blob = compress(&data, &LossyConfig::sz3(eb)).expect("compression succeeds").blob;
        g.bench_with_input(BenchmarkId::from_parameter(format!("eb{eb:.0e}")), &blob, |b, blob| {
            b.iter(|| decompress::<f32>(blob).expect("decompression succeeds"))
        });
    }
    g.finish();
}

fn bench_zfp_baseline(c: &mut Criterion) {
    let data = FieldSpec::new(Application::Miranda, "pressure").with_scale(12).generate();
    let abs_eb = 1e-3 * data.value_range();
    let mut g = c.benchmark_group("baseline_zfp_transform");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(10);
    let cfg = CodecConfig::zfp_abs(abs_eb);
    g.bench_function("compress", |b| b.iter(|| ZfpCodec.compress(&data, &cfg).expect("zfp compression succeeds")));
    let blob = ZfpCodec.compress(&data, &cfg).expect("zfp compression succeeds").blob;
    g.bench_function("decompress", |b| b.iter(|| decompress::<f32>(&blob).expect("zfp decompression succeeds")));
    g.finish();
}

fn bench_chunk_scaling(c: &mut Criterion) {
    let data = FieldSpec::new(Application::Miranda, "density").with_scale(16).generate();
    let mut g = c.benchmark_group("chunk_parallel_scaling");
    g.throughput(Throughput::Bytes(data.nbytes() as u64));
    g.sample_size(10);
    for threads in [1usize, 4] {
        let cfg = LossyConfig::sz3(1e-3).with_threads(threads);
        g.bench_with_input(BenchmarkId::from_parameter(format!("t{threads}")), &cfg, |b, cfg| {
            b.iter(|| compress(&data, cfg).expect("compression succeeds"))
        });
    }
    let blob = compress(&data, &LossyConfig::sz3(1e-3).with_threads(4)).expect("compression succeeds").blob;
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("decompress_t{threads}")), &blob, |b, blob| {
            b.iter(|| ocelot_sz::decompress_with_threads::<f32>(blob, threads).expect("decompression succeeds"))
        });
    }
    g.finish();
}

fn bench_temporal_stream(c: &mut Criterion) {
    use ocelot::temporal::TemporalCompressor;
    use ocelot_datagen::series::snapshot_series;
    let spec = FieldSpec::new(Application::Miranda, "pressure").with_scale(12);
    let frames = snapshot_series(&spec, 8, 0.92, 7);
    let bytes: usize = frames.iter().map(|f| f.nbytes()).sum();
    let cfg = LossyConfig::sz3_abs(1e-3 * frames[0].value_range());
    let mut g = c.benchmark_group("ext_temporal");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(10);
    g.bench_function("spatial_per_frame", |b| {
        b.iter(|| frames.iter().map(|f| compress(f, &cfg).expect("compresses").blob.len()).sum::<usize>())
    });
    g.bench_function("temporal_key_plus_delta", |b| {
        b.iter(|| {
            let mut comp = TemporalCompressor::new(cfg);
            frames.iter().map(|f| comp.compress_next(f).expect("compresses").len()).sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_predictors,
    bench_backends,
    bench_decompress,
    bench_zfp_baseline,
    bench_chunk_scaling,
    bench_temporal_stream
);
criterion_main!(benches);
