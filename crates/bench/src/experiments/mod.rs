//! One module per paper table/figure.

pub mod ablations;
pub mod extensions;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig78;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table5;
pub mod table67;
pub mod table8;

/// Every experiment id accepted by the `repro` binary, in paper order.
pub const ALL_IDS: [&str; 19] = [
    "table1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table2",
    "fig12",
    "fig13",
    "fig14",
    "table5",
    "table6",
    "table7",
    "fig15",
    "table8",
    "ablations",
    "extensions",
];
