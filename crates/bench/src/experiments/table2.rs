//! Table II — file transfer patterns between Cori and Bebop: 300 GB moved
//! as 1 MB / 10 MB / 100 MB / 1000 MB files under an untuned (concurrency 4)
//! endpoint configuration.

use crate::support::{fmt_speed, write_artifact, TextTable};
use ocelot_netsim::{simulate_transfer, GridFtpConfig, SiteId, Topology};
use serde::Serialize;

/// One Table II row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Per-file size in bytes.
    pub file_size: u64,
    /// Number of files.
    pub n_files: usize,
    /// Effective speed (bytes/s).
    pub speed_bps: f64,
    /// Duration (s).
    pub duration_s: f64,
    /// The paper's measured speed in MB/s, for comparison.
    pub paper_speed_mbs: f64,
}

/// Runs the sweep. `total_bytes` defaults to the paper's 300 GB; pass a
/// smaller total for quick runs (speeds barely move, durations scale).
pub fn run(total_bytes: u64) -> Vec<Row> {
    let topology = Topology::paper();
    let link = topology.route(SiteId::Cori, SiteId::Bebop).link;
    let cfg = GridFtpConfig::untuned();
    let paper = [247.0, 921.1, 1120.0, 1060.0];
    [1_000_000u64, 10_000_000, 100_000_000, 1_000_000_000]
        .iter()
        .zip(paper)
        .map(|(&size, paper_speed_mbs)| {
            let n = (total_bytes / size).max(1) as usize;
            let report = simulate_transfer(&vec![size; n], &link, &cfg, 2023);
            Row {
                file_size: size,
                n_files: n,
                speed_bps: report.effective_speed_bps,
                duration_s: report.duration_s,
                paper_speed_mbs,
            }
        })
        .collect()
}

/// Runs at paper scale, prints, writes the artifact.
pub fn print() {
    let rows = run(300_000_000_000);
    let mut t = TextTable::new(["Total size", "File size", "# Files", "Speed", "Duration", "Paper speed"]);
    for r in &rows {
        t.row([
            "300GB".to_string(),
            format!("{}M", r.file_size / 1_000_000),
            r.n_files.to_string(),
            fmt_speed(r.speed_bps),
            format!("{:.0}s", r.duration_s),
            format!("{:.1}MB/s", r.paper_speed_mbs),
        ]);
    }
    println!("Table II — file transfer patterns, Cori<->Bebop (untuned endpoint)\n{t}");
    let _ = write_artifact("table2", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_increases_with_file_size_until_the_plateau() {
        let rows = run(30_000_000_000);
        assert!(rows[0].speed_bps < rows[1].speed_bps);
        assert!(rows[1].speed_bps < rows[2].speed_bps);
        // 100 MB and 1000 MB are both near the plateau (paper: 1120 vs 1060).
        let ratio = rows[3].speed_bps / rows[2].speed_bps;
        assert!((0.7..1.3).contains(&ratio), "plateau ratio {ratio}");
    }

    #[test]
    fn small_files_are_several_times_slower() {
        let rows = run(30_000_000_000);
        assert!(
            rows[2].speed_bps / rows[0].speed_bps > 3.0,
            "1MB files should be >3x slower: {} vs {}",
            rows[0].speed_bps,
            rows[2].speed_bps
        );
    }
}
