//! Extensions beyond the paper's evaluation:
//!
//! * **transform-codec quality prediction** — the paper's future work
//!   ("we lack effective time/ratio prediction methods for
//!   transformer-based compressors like ZFP"), implemented in
//!   `ocelot_qpred::transform` and evaluated here across applications;
//! * **codec family comparison** — prediction-based pipelines vs the
//!   transform baseline at equal error bounds.

use crate::pool::{build_app_pool, to_training, EBS11};
use crate::support::{write_artifact, TextTable};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_qpred::transform::{measure_transform_sample, TransformQualityModel, TransformSample};
use ocelot_qpred::{QualityModel, TreeConfig, FEATURE_NAMES};
use ocelot_sz::config::PredictorKind;
use ocelot_sz::{compress, Codec, CodecConfig, LossyConfig, ZfpCodec};
use serde::Serialize;

/// Transform-prediction evaluation for one application.
#[derive(Debug, Clone, Serialize)]
pub struct ZfpPredictionRow {
    /// Application.
    pub app: String,
    /// Held-out points.
    pub test_points: usize,
    /// Held-out log10-ratio RMSE.
    pub log_rmse: f64,
    /// Fraction of held-out predictions within 1.5× of truth.
    pub within_1_5x: f64,
}

fn build_samples(app: Application, fields: &[&str], seeds: std::ops::Range<u64>, scale: usize) -> Vec<TransformSample> {
    let mut out = Vec::new();
    for &field in fields {
        for seed in seeds.clone() {
            let data = FieldSpec::new(app, field).with_scale(scale).with_seed(seed).generate();
            let range = data.value_range().max(1e-30);
            for exp in 1..=5 {
                if let Ok(s) = measure_transform_sample(&data, 10f64.powi(-exp) * range, 8) {
                    out.push(s);
                }
            }
        }
    }
    out
}

/// Evaluates ZFP ratio prediction per application (train seeds 0–2, test 3–4).
pub fn run_zfp_prediction() -> Vec<ZfpPredictionRow> {
    [Application::Miranda, Application::Cesm, Application::Isabel]
        .iter()
        .map(|&app| {
            let fields: Vec<&str> = app.fields().iter().take(5).copied().collect();
            let scale = crate::pool::default_scale(app);
            let train = build_samples(app, &fields, 0..3, scale);
            let test = build_samples(app, &fields, 3..5, scale);
            let model = TransformQualityModel::train(&train, &TreeConfig::default());
            let mut se = 0.0;
            let mut close = 0usize;
            for s in &test {
                let pred = model.predict_ratio(&s.features);
                se += (pred.log10() - s.ratio.log10()).powi(2);
                if pred / s.ratio < 1.5 && s.ratio / pred < 1.5 {
                    close += 1;
                }
            }
            ZfpPredictionRow {
                app: app.name().to_string(),
                test_points: test.len(),
                log_rmse: (se / test.len() as f64).sqrt(),
                within_1_5x: close as f64 / test.len() as f64,
            }
        })
        .collect()
}

/// Feature-importance summary (validates the paper's Fig 3 grouping claim
/// quantitatively).
#[derive(Debug, Clone, Serialize)]
pub struct ImportanceRow {
    /// Feature name.
    pub feature: String,
    /// Importance for the ratio tree.
    pub ratio: f64,
    /// Importance for the time tree.
    pub time: f64,
    /// Importance for the PSNR tree.
    pub psnr: f64,
}

/// Trains a quality model across applications and reports per-feature
/// importance for each metric.
pub fn run_feature_importance() -> Vec<ImportanceRow> {
    let mut samples = Vec::new();
    for app in [Application::Miranda, Application::Cesm, Application::Rtm] {
        let fields: Vec<&str> = app.fields().iter().take(5).copied().collect();
        let scale = crate::pool::default_scale(app);
        samples.extend(to_training(&build_app_pool(app, &fields, 0..2, &EBS11, scale)));
    }
    let model = QualityModel::train(&samples, &TreeConfig::default());
    let (ratio, time, psnr) = model.feature_importance();
    FEATURE_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| ImportanceRow { feature: name.to_string(), ratio: ratio[i], time: time[i], psnr: psnr[i] })
        .collect()
}

/// Codec comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct CodecRow {
    /// Application/field.
    pub dataset: String,
    /// SZ3 (interp-cubic) ratio.
    pub sz3_ratio: f64,
    /// SZ2 (regression) ratio.
    pub sz2_ratio: f64,
    /// Lorenzo-pipeline ratio.
    pub lorenzo_ratio: f64,
    /// Transform-codec ratio.
    pub zfp_ratio: f64,
}

/// Compares codec families at eb 1e-3 across representative fields.
pub fn run_codec_comparison() -> Vec<CodecRow> {
    [
        (Application::Cesm, "LHFLX", 12usize),
        (Application::Miranda, "velocity-x", 12),
        (Application::Rtm, "snapshot-1048", 12),
        (Application::Nyx, "baryon_density", 16),
    ]
    .iter()
    .map(|&(app, field, scale)| {
        let data = FieldSpec::new(app, field).with_scale(scale).generate();
        let ratio = |p: PredictorKind| {
            compress(&data, &LossyConfig::sz3(1e-3).with_predictor(p)).expect("compression succeeds").ratio
        };
        let abs_eb = 1e-3 * data.value_range().max(1e-30);
        let zfp_blob = ZfpCodec.compress(&data, &CodecConfig::zfp_abs(abs_eb)).expect("zfp compression succeeds").blob;
        CodecRow {
            dataset: format!("{}/{}", app.name(), field),
            sz3_ratio: ratio(PredictorKind::InterpCubic),
            sz2_ratio: ratio(PredictorKind::Regression),
            lorenzo_ratio: ratio(PredictorKind::Lorenzo),
            zfp_ratio: data.nbytes() as f64 / zfp_blob.len() as f64,
        }
    })
    .collect()
}

/// Runs both extensions, prints, writes artifacts.
pub fn print() {
    let pred = run_zfp_prediction();
    let mut t = TextTable::new(["app", "test points", "log10-ratio RMSE", "within 1.5x"]);
    for r in &pred {
        t.row([
            r.app.clone(),
            r.test_points.to_string(),
            format!("{:.3}", r.log_rmse),
            format!("{:.0}%", r.within_1_5x * 100.0),
        ]);
    }
    println!("Extension — ZFP (transform codec) ratio prediction [paper future work]\n{t}");
    let _ = write_artifact("ext_zfp_prediction", &pred);

    let imp = run_feature_importance();
    let mut t = TextTable::new(["feature", "ratio", "time", "PSNR"]);
    for r in &imp {
        t.row([r.feature.clone(), format!("{:.3}", r.ratio), format!("{:.3}", r.time), format!("{:.3}", r.psnr)]);
    }
    println!("Extension — learned feature importance (cross-application model)\n{t}");
    let _ = write_artifact("ext_importance", &imp);

    let codecs = run_codec_comparison();
    let mut t = TextTable::new(["dataset", "SZ3", "SZ2", "Lorenzo", "ZFP"]);
    for r in &codecs {
        t.row([
            r.dataset.clone(),
            format!("{:.1}x", r.sz3_ratio),
            format!("{:.1}x", r.sz2_ratio),
            format!("{:.1}x", r.lorenzo_ratio),
            format!("{:.1}x", r.zfp_ratio),
        ]);
    }
    println!("Extension — codec family comparison at eb 1e-3\n{t}");
    let _ = write_artifact("ext_codecs", &codecs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zfp_ratio_prediction_generalizes() {
        for r in run_zfp_prediction() {
            assert!(r.log_rmse < 0.45, "{}: rmse {}", r.app, r.log_rmse);
            assert!(r.within_1_5x > 0.5, "{}: within-1.5x {}", r.app, r.within_1_5x);
        }
    }

    #[test]
    fn importance_is_normalized_and_nontrivial() {
        let rows = run_feature_importance();
        let sums: [f64; 3] =
            [rows.iter().map(|r| r.ratio).sum(), rows.iter().map(|r| r.time).sum(), rows.iter().map(|r| r.psnr).sum()];
        for s in sums {
            assert!((s - 1.0).abs() < 1e-9, "importance sums {sums:?}");
        }
        // More than one feature matters for ratio prediction.
        assert!(rows.iter().filter(|r| r.ratio > 0.02).count() >= 2);
    }

    #[test]
    fn sz3_wins_the_codec_comparison() {
        // The paper adopts SZ3 for its best-in-class ratios; our from-scratch
        // pipelines reproduce the ranking on most fields.
        let rows = run_codec_comparison();
        let sz3_wins = rows.iter().filter(|r| r.sz3_ratio >= r.zfp_ratio && r.sz3_ratio >= r.lorenzo_ratio).count();
        assert!(sz3_wins * 2 >= rows.len(), "SZ3 should lead on at least half the fields");
    }
}
