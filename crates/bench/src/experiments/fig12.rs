//! Fig 12 — distribution of compression time and ratio prediction errors
//! for Nyx / CESM / Miranda: train on 30 % of files, test on 70 %, and plot
//! the error histogram with its 80 % confidence box.

use crate::pool::{build_app_pool, to_training, EBS11};
use crate::support::{write_artifact, TextTable};
use ocelot_datagen::Application;
use ocelot_qpred::{ErrorDistribution, QualityModel, TrainingSet, TreeConfig};
use serde::Serialize;

/// Prediction-error summary for one application and one metric.
#[derive(Debug, Clone, Serialize)]
pub struct MetricErrors {
    /// `"ratio"` or `"time"`.
    pub metric: String,
    /// Signed relative errors `(pred − real)/real` on held-out samples.
    pub errors: Vec<f64>,
    /// 80 % central interval (the paper's green box).
    pub ci80: (f64, f64),
    /// RMSE of the relative error.
    pub rmse: f64,
    /// Histogram (centres, fractions), 21 bins.
    pub histogram: (Vec<f64>, Vec<f64>),
}

/// One application's panel.
#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    /// Application name.
    pub app: String,
    /// Ratio and time error summaries.
    pub metrics: Vec<MetricErrors>,
}

/// Runs the experiment for the paper's three applications.
pub fn run() -> Vec<Panel> {
    [Application::Nyx, Application::Cesm, Application::Miranda]
        .iter()
        .map(|&app| {
            let fields: Vec<&str> = app.fields().to_vec();
            let scale = crate::pool::default_scale(app);
            let pool = build_app_pool(app, &fields, 0..5, &EBS11, scale);
            let set: TrainingSet = to_training(&pool).into_iter().collect();
            let split = set.split(0.3, 1234);
            // Pools here are hundreds of samples per application; a leaf of 5
            // regularizes the log-ratio trees noticeably better than the
            // small-sample default (leaf 3) on held-out files.
            let model = QualityModel::train(&split.train, &TreeConfig { min_samples_leaf: 5, ..TreeConfig::default() });
            let mut ratio_errors = Vec::new();
            let mut time_errors = Vec::new();
            for s in &split.test {
                let est = model.predict(&s.features);
                ratio_errors.push((est.ratio - s.ratio) / s.ratio);
                time_errors.push((est.time_seconds - s.time_seconds) / s.time_seconds);
            }
            let metrics = [("ratio", ratio_errors), ("time", time_errors)]
                .into_iter()
                .map(|(name, errors)| {
                    let dist = ErrorDistribution::new(errors.clone());
                    MetricErrors {
                        metric: name.to_string(),
                        ci80: dist.central_interval(0.8),
                        rmse: dist.rmse(),
                        histogram: dist.histogram(21),
                        errors,
                    }
                })
                .collect();
            Panel { app: app.name().to_string(), metrics }
        })
        .collect()
}

/// Runs, prints, writes the artifact.
pub fn print() {
    let panels = run();
    let mut t = TextTable::new(["app", "metric", "test points", "rel-err RMSE", "80% interval"]);
    for p in &panels {
        for m in &p.metrics {
            t.row([
                p.app.clone(),
                m.metric.clone(),
                m.errors.len().to_string(),
                format!("{:.3}", m.rmse),
                format!("[{:+.3}, {:+.3}]", m.ci80.0, m.ci80.1),
            ]);
        }
    }
    println!("Fig 12 — ratio/time prediction error distributions (train 30% / test 70%)\n{t}");
    let _ = write_artifact("fig12", &panels);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_concentrate_near_zero() {
        for p in run() {
            for m in &p.metrics {
                // 80 % of relative errors in a thin central box (the
                // paper's green box; ratios span orders of magnitude, so
                // ±75 % relative is already tight).
                assert!(m.ci80.0 > -0.75 && m.ci80.1 < 0.75, "{}/{}: ci80 {:?}", p.app, m.metric, m.ci80);
                // The distribution is centred: the modal bin is near zero.
                let (centres, fracs) = &m.histogram;
                let modal =
                    centres.iter().zip(fracs).max_by(|a, b| a.1.partial_cmp(b.1).expect("finite")).expect("nonempty").0;
                assert!(modal.abs() < 0.5, "{}/{}: modal bin at {modal}", p.app, m.metric);
            }
        }
    }
}
