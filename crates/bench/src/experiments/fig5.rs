//! Fig 5 — compressor-level features (`p0`, quantization entropy, `R_rle`)
//! vs the actual compression ratio on Nyx, including the Jin et al.
//! closed-form estimator that happens to track Nyx well.

use crate::pool::{build_app_pool, EBS11};
use crate::support::{pearson, write_artifact, TextTable};
use ocelot_datagen::Application;
use ocelot_sz::stats::jin_ratio_estimate;
use serde::Serialize;

/// One scatter point.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Fraction of zero bins.
    pub p0: f64,
    /// Quantization entropy (bits).
    pub quant_entropy: f64,
    /// Run-length estimator.
    pub r_rle: f64,
    /// Jin et al. estimate at `C1 = 1`.
    pub jin_estimate: f64,
    /// Actual compression ratio.
    pub ratio: f64,
}

/// Correlation summary.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Scatter points.
    pub points: Vec<Point>,
    /// corr(p0, log ratio).
    pub corr_p0: f64,
    /// corr(quant entropy, log ratio) — expected negative.
    pub corr_entropy: f64,
    /// corr(log R_rle, log ratio).
    pub corr_rrle: f64,
    /// corr(log Jin estimate, log actual ratio) — the "y = x" panel.
    pub corr_jin: f64,
}

/// Runs the experiment on the given application (Fig 5 uses Nyx).
pub fn run_for(app: Application, scale: usize) -> Summary {
    let fields: Vec<&str> = app.fields().to_vec();
    let pool = build_app_pool(app, &fields, 0..3, &EBS11, scale);
    let points: Vec<Point> = pool
        .iter()
        .map(|p| Point {
            p0: p.stats.p0,
            quant_entropy: p.stats.quant_entropy,
            r_rle: p.stats.r_rle.min(1e6),
            jin_estimate: jin_ratio_estimate(&p.stats, 1.0).min(1e6),
            ratio: p.ratio,
        })
        .collect();
    let logr: Vec<f64> = points.iter().map(|p| p.ratio.log10()).collect();
    Summary {
        corr_p0: pearson(&points.iter().map(|p| p.p0).collect::<Vec<_>>(), &logr),
        corr_entropy: pearson(&points.iter().map(|p| p.quant_entropy).collect::<Vec<_>>(), &logr),
        corr_rrle: pearson(&points.iter().map(|p| p.r_rle.log10()).collect::<Vec<_>>(), &logr),
        corr_jin: pearson(&points.iter().map(|p| p.jin_estimate.log10()).collect::<Vec<_>>(), &logr),
        points,
    }
}

/// Runs on Nyx, prints, writes the artifact.
pub fn print() {
    let s = run_for(Application::Nyx, 16);
    let mut t = TextTable::new(["feature", "corr with log10(ratio)"]);
    t.row(["p0".to_string(), format!("{:+.3}", s.corr_p0)]);
    t.row(["quant entropy".to_string(), format!("{:+.3}", s.corr_entropy)]);
    t.row(["log10 R_rle".to_string(), format!("{:+.3}", s.corr_rrle)]);
    t.row(["log10 Jin estimate (C1=1)".to_string(), format!("{:+.3}", s.corr_jin)]);
    println!("Fig 5 — Nyx compressor-level features vs compression ratio ({} points)\n{t}", s.points.len());
    let _ = write_artifact("fig5", &s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_correlate_with_ratio_on_nyx() {
        let s = run_for(Application::Nyx, 24);
        assert!(s.corr_p0 > 0.5, "p0 corr {}", s.corr_p0);
        assert!(s.corr_entropy < -0.5, "entropy corr {}", s.corr_entropy);
        assert!(s.corr_rrle > 0.5, "rrle corr {}", s.corr_rrle);
        // The Jin estimator tracks Nyx well (the paper's y = x panel).
        assert!(s.corr_jin > 0.6, "jin corr {}", s.corr_jin);
    }
}
