//! Fig 6 — on Miranda the run-length estimator alone fails to predict the
//! compression ratio, while the learned model combining all features stays
//! accurate.

use crate::pool::{build_app_pool, to_training, EBS11};
use crate::support::{write_artifact, TextTable};
use ocelot_datagen::Application;
use ocelot_qpred::{QualityModel, TrainingSet, TreeConfig};
use serde::Serialize;

/// Result of the comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Outcome {
    /// RMSE of `log10(pred) − log10(actual)` for the single-feature
    /// R_rle-as-estimate baseline.
    pub rrle_log_rmse: f64,
    /// RMSE of the learned model on held-out samples.
    pub model_log_rmse: f64,
    /// `(estimate, actual)` pairs for the R_rle baseline.
    pub rrle_points: Vec<(f64, f64)>,
    /// `(prediction, actual)` pairs for the model.
    pub model_points: Vec<(f64, f64)>,
}

/// Runs the experiment.
pub fn run() -> Outcome {
    let fields: Vec<&str> = Application::Miranda.fields().to_vec();
    let pool = build_app_pool(Application::Miranda, &fields, 0..3, &EBS11, 12);
    let set: TrainingSet = to_training(&pool).into_iter().collect();
    let split = set.split(0.3, 42);
    let model = QualityModel::train(&split.train, &TreeConfig::default());

    let mut rrle_points = Vec::new();
    let mut model_points = Vec::new();
    let mut rrle_se = 0.0;
    let mut model_se = 0.0;
    // Pair the held-out samples with their pool entries by matching feature
    // vectors (the split clones the samples).
    for s in &split.test {
        let p = pool.iter().find(|p| p.features == s.features).expect("held-out sample originates from the pool");
        let rrle_est = p.stats.r_rle.clamp(1.0, 1e6);
        let model_est = model.predict(&s.features).ratio.max(1e-9);
        rrle_points.push((rrle_est, s.ratio));
        model_points.push((model_est, s.ratio));
        rrle_se += (rrle_est.log10() - s.ratio.log10()).powi(2);
        model_se += (model_est.log10() - s.ratio.log10()).powi(2);
    }
    let n = split.test.len() as f64;
    Outcome { rrle_log_rmse: (rrle_se / n).sqrt(), model_log_rmse: (model_se / n).sqrt(), rrle_points, model_points }
}

/// Runs, prints, writes the artifact.
pub fn print() {
    let o = run();
    let mut t = TextTable::new(["estimator", "log10 RMSE vs actual ratio"]);
    t.row(["R_rle alone (Jin-style closed form)".to_string(), format!("{:.3}", o.rrle_log_rmse)]);
    t.row(["learned model (all 11 features)".to_string(), format!("{:.3}", o.model_log_rmse)]);
    println!(
        "Fig 6 — Miranda: single-feature estimator vs learned model ({} held-out points)\n{t}",
        o.model_points.len()
    );
    let _ = write_artifact("fig6", &o);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_beats_the_single_feature_estimator() {
        let o = run();
        assert!(
            o.model_log_rmse < o.rrle_log_rmse * 0.8,
            "model {} should clearly beat rrle {}",
            o.model_log_rmse,
            o.rrle_log_rmse
        );
        assert!(o.model_log_rmse < 0.5, "model rmse {}", o.model_log_rmse);
    }
}
