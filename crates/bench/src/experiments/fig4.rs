//! Fig 4 — byte-level data entropy vs compression time for RTM at three
//! error bounds: entropy correlates positively with time at tight bounds
//! and loses its effect at loose bounds.

use crate::pool::{build_app_pool, SamplePoint};
use crate::support::{pearson, write_artifact, TextTable};
use ocelot_datagen::Application;
use serde::Serialize;

/// One scatter series (one error bound).
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Error bound.
    pub eb: f64,
    /// `(entropy, time)` scatter points.
    pub points: Vec<(f64, f64)>,
    /// Pearson correlation between entropy and compression time.
    pub correlation: f64,
}

/// Runs the experiment: RTM snapshots across seeds, eb ∈ {1e-6, 1e-4, 1e-2}.
pub fn run() -> Vec<Series> {
    let fields = ["snapshot-0594", "snapshot-1048", "snapshot-1982", "snapshot-2800", "snapshot-3400"];
    [1e-6, 1e-4, 1e-2]
        .iter()
        .map(|&eb| {
            let pool: Vec<SamplePoint> = build_app_pool(Application::Rtm, &fields, 0..4, &[eb], 12);
            let entropy: Vec<f64> = pool.iter().map(|p| p.byte_entropy).collect();
            let time: Vec<f64> = pool.iter().map(|p| p.time_s).collect();
            Series {
                eb,
                points: entropy.iter().copied().zip(time.iter().copied()).collect(),
                correlation: pearson(&entropy, &time),
            }
        })
        .collect()
}

/// Runs, prints, writes the artifact.
pub fn print() {
    let series = run();
    let mut t = TextTable::new(["error bound", "points", "entropy range", "time range (s)", "corr(entropy,time)"]);
    for s in &series {
        let (emin, emax) = min_max(s.points.iter().map(|p| p.0));
        let (tmin, tmax) = min_max(s.points.iter().map(|p| p.1));
        t.row([
            format!("{:.0e}", s.eb),
            s.points.len().to_string(),
            format!("{emin:.2}..{emax:.2}"),
            format!("{tmin:.1}..{tmax:.1}"),
            format!("{:+.3}", s.correlation),
        ]);
    }
    println!("Fig 4 — RTM data entropy vs compression time\n{t}");
    let _ = write_artifact("fig4", &series);
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_predicts_time_at_tight_bounds() {
        let series = run();
        // Tight bound: clear positive correlation.
        assert!(series[0].correlation > 0.4, "eb=1e-6 corr {}", series[0].correlation);
        // Loose bound: the effect weakens (paper: "entropy would lose its
        // effect").
        assert!(
            series[2].correlation < series[0].correlation,
            "1e-2 corr {} should be below 1e-6 corr {}",
            series[2].correlation,
            series[0].correlation
        );
    }
}
