//! Fig 15 — visual comparison of original vs lossy-reconstructed CESM
//! fields. The paper shows three fields at PSNR 59.64 / 96.80 / 146.05 and
//! reports no visible difference above 50 dB; here we reconstruct the same
//! fields, report PSNR, and dump PGM images for human inspection.

use crate::support::{results_dir, write_artifact, TextTable};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_sz::{compress, decompress, metrics, Dataset, LossyConfig};
use serde::Serialize;

/// One field's comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Field name.
    pub field: String,
    /// Error bound.
    pub eb: f64,
    /// Measured PSNR (dB).
    pub psnr: f64,
    /// Pearson correlation between original and reconstruction.
    pub correlation: f64,
    /// Compression ratio.
    pub ratio: f64,
    /// Whether PGM images were written.
    pub images_written: bool,
}

/// Runs the comparison (CLDMED / TMQ / TROP_Z at eb 1e-3, as in the paper's
/// Table VI selections), writing PGM pairs into `results/`.
pub fn run(write_images: bool) -> Vec<Row> {
    ["CLDMED", "TMQ", "TROP_Z"]
        .iter()
        .map(|&field| {
            let data = FieldSpec::new(Application::Cesm, field).with_scale(8).generate();
            let cfg = LossyConfig::sz3(1e-3);
            let blob = compress(&data, &cfg).expect("compression succeeds").blob;
            let ratio = data.nbytes() as f64 / blob.len() as f64;
            let restored = decompress::<f32>(&blob).expect("decompression succeeds");
            let q = metrics::compare(&data, &restored).expect("shapes match");
            let mut images_written = false;
            if write_images {
                let dir = results_dir();
                if std::fs::create_dir_all(&dir).is_ok() {
                    let a = write_pgm(&dir.join(format!("fig15_{field}_original.pgm")), &data);
                    let b = write_pgm(&dir.join(format!("fig15_{field}_reconstructed.pgm")), &restored);
                    images_written = a.is_ok() && b.is_ok();
                }
            }
            Row { field: field.to_string(), eb: 1e-3, psnr: q.psnr, correlation: q.correlation, ratio, images_written }
        })
        .collect()
}

/// Writes a 2-D dataset as an 8-bit PGM image (grayscale, min-max scaled).
fn write_pgm(path: &std::path::Path, data: &Dataset<f32>) -> std::io::Result<()> {
    assert_eq!(data.ndim(), 2, "PGM output requires 2-D data");
    let (h, w) = (data.dims()[0], data.dims()[1]);
    let (min, max) = data.min_max();
    let range = (max - min).max(f32::MIN_POSITIVE);
    let mut body = format!("P5\n{w} {h}\n255\n").into_bytes();
    body.extend(data.values().iter().map(|&v| (((v - min) / range) * 255.0).round().clamp(0.0, 255.0) as u8));
    std::fs::write(path, body)
}

/// Runs with image output, prints, writes the artifact.
pub fn print() {
    let rows = run(true);
    let mut t = TextTable::new(["Field", "eb", "PSNR (dB)", "correlation", "ratio", "PGM pair"]);
    for r in &rows {
        t.row([
            r.field.clone(),
            format!("{:.0e}", r.eb),
            format!("{:.2}", r.psnr),
            format!("{:.6}", r.correlation),
            format!("{:.1}", r.ratio),
            if r.images_written { "results/fig15_*.pgm".into() } else { "-".to_string() },
        ]);
    }
    println!("Fig 15 — CESM original vs reconstructed (PSNR > 50 dB: visually identical)\n{t}");
    let _ = write_artifact("fig15", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructions_exceed_the_visual_threshold() {
        for r in run(false) {
            assert!(r.psnr > 50.0, "{}: psnr {}", r.field, r.psnr);
            assert!(r.correlation > 0.999, "{}: corr {}", r.field, r.correlation);
        }
    }

    #[test]
    fn smoother_fields_reach_higher_psnr() {
        let rows = run(false);
        let by = |name: &str| rows.iter().find(|r| r.field == name).expect("field present").psnr;
        // TROP_Z (β=2.8) is the smoothest, CLDMED (patchy cloud) the least.
        assert!(by("TROP_Z") > by("CLDMED"), "TROP_Z {} vs CLDMED {}", by("TROP_Z"), by("CLDMED"));
    }

    #[test]
    fn pgm_writer_produces_valid_header() {
        let d = Dataset::from_fn(vec![4, 6], |i| (i[0] * 6 + i[1]) as f32);
        let path = std::env::temp_dir().join("ocelot_fig15_test.pgm");
        write_pgm(&path, &d).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n6 4\n255\n"));
        assert_eq!(bytes.len(), 11 + 24);
        std::fs::remove_file(path).ok();
    }
}
