//! Fig 10 — the sentinel: transfer without compression during node waiting
//! time. Compares a blocking pipeline (wait, then compress) against the
//! sentinel across queue-wait scenarios, including the worst case where
//! nodes never arrive.

use crate::support::{fmt_secs, write_artifact, TextTable};
use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::sentinel::sentinel_total_s;
use ocelot::workload::Workload;
use ocelot_datagen::Application;
use ocelot_faas::WaitTimeModel;
use ocelot_netsim::SiteId;
use serde::Serialize;

/// One wait-time scenario.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Queue wait in seconds (`inf` = nodes never granted).
    pub wait_s: f64,
    /// Plain transfer total (the NP floor/ceiling).
    pub direct_s: f64,
    /// Blocking pipeline total (wait + compress + transfer + decompress).
    pub blocking_s: f64,
    /// Sentinel pipeline total.
    pub sentinel_s: f64,
    /// Bytes that crossed the WAN under the sentinel.
    pub sentinel_bytes: u64,
}

/// Runs the scenario sweep on Miranda Anvil→Bebop.
pub fn run() -> Vec<Row> {
    let orch = Orchestrator::paper();
    let w = Workload::paper_default(Application::Miranda, 12).expect("workload");
    let direct = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Direct, &PipelineOptions::default());
    [0.0, 30.0, 120.0, 600.0, 3600.0, f64::INFINITY]
        .iter()
        .map(|&wait| {
            let finite_wait = if wait.is_finite() { wait } else { 1e9 };
            let blocking_opts = PipelineOptions {
                wait_model: WaitTimeModel::Fixed(finite_wait),
                sentinel: false,
                ..Default::default()
            };
            let sentinel_opts = PipelineOptions { sentinel: true, ..blocking_opts };
            let blocking = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &blocking_opts);
            let sent = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &sentinel_opts);
            Row {
                wait_s: wait,
                direct_s: direct.total_s(),
                blocking_s: blocking.total_s(),
                sentinel_s: if wait == 0.0 { sent.total_s() } else { sentinel_total_s(&sent).min(direct.total_s()) },
                sentinel_bytes: sent.bytes_transferred,
            }
        })
        .collect()
}

/// Runs, prints, writes the artifact.
pub fn print() {
    let rows = run();
    let mut t = TextTable::new(["queue wait", "direct (NP)", "blocking CP", "sentinel", "sentinel WAN bytes"]);
    for r in &rows {
        t.row([
            if r.wait_s.is_finite() { fmt_secs(r.wait_s) } else { "never granted".into() },
            fmt_secs(r.direct_s),
            fmt_secs(r.blocking_s),
            fmt_secs(r.sentinel_s),
            format!("{:.1} GB", r.sentinel_bytes as f64 / 1e9),
        ]);
    }
    println!("Fig 10 — sentinel vs blocking pipeline under node waiting (Miranda, Anvil->Bebop)\n{t}");
    let _ = write_artifact("fig10", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_never_loses_to_direct_or_blocking() {
        for r in run() {
            assert!(
                r.sentinel_s <= r.direct_s * 1.02,
                "wait {}: sentinel {} vs direct {}",
                r.wait_s,
                r.sentinel_s,
                r.direct_s
            );
            assert!(
                r.sentinel_s <= r.blocking_s * 1.02,
                "wait {}: sentinel {} vs blocking {}",
                r.wait_s,
                r.sentinel_s,
                r.blocking_s
            );
        }
    }

    #[test]
    fn worst_case_equals_plain_transfer() {
        let rows = run();
        let worst = rows.last().expect("rows");
        assert!((worst.sentinel_s - worst.direct_s).abs() / worst.direct_s < 0.05);
    }

    #[test]
    fn longer_waits_push_more_raw_bytes() {
        let rows = run();
        assert!(
            rows[3].sentinel_bytes > rows[1].sentinel_bytes,
            "600s {} vs 30s {}",
            rows[3].sentinel_bytes,
            rows[1].sentinel_bytes
        );
    }
}
