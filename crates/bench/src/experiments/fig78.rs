//! Figs 7 & 8 — PSNR vs compressor-level features for CESM (Fig 7) and
//! ISABEL (Fig 8): the same bin statistics that predict ratio also track
//! the reconstruction distortion.

use crate::pool::{build_app_pool, EBS11};
use crate::support::{pearson, write_artifact, TextTable};
use ocelot_datagen::Application;
use serde::Serialize;

/// Correlations of PSNR against each compressor-level feature.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Application name.
    pub app: String,
    /// Scatter `(p0, quant_entropy, r_rle, psnr)` tuples.
    pub points: Vec<(f64, f64, f64, f64)>,
    /// corr(p0, PSNR) — negative: large p0 means loose bounds.
    pub corr_p0: f64,
    /// corr(quant entropy, PSNR) — positive: tight bounds spread bins.
    pub corr_entropy: f64,
    /// corr(log R_rle, PSNR) — negative.
    pub corr_rrle: f64,
}

/// Runs for one application.
pub fn run_for(app: Application) -> Summary {
    let fields: Vec<&str> = app.fields().to_vec();
    let scale = crate::pool::default_scale(app);
    let pool = build_app_pool(app, &fields, 0..2, &EBS11, scale);
    let points: Vec<(f64, f64, f64, f64)> =
        pool.iter().map(|p| (p.stats.p0, p.stats.quant_entropy, p.stats.r_rle.min(1e6), p.psnr)).collect();
    let psnr: Vec<f64> = points.iter().map(|p| p.3).collect();
    Summary {
        app: app.name().to_string(),
        corr_p0: pearson(&points.iter().map(|p| p.0).collect::<Vec<_>>(), &psnr),
        corr_entropy: pearson(&points.iter().map(|p| p.1).collect::<Vec<_>>(), &psnr),
        corr_rrle: pearson(&points.iter().map(|p| p.2.log10()).collect::<Vec<_>>(), &psnr),
        points,
    }
}

/// Runs both figures, prints, writes artifacts.
pub fn print() {
    for (fig, app) in [("fig7", Application::Cesm), ("fig8", Application::Isabel)] {
        let s = run_for(app);
        let mut t = TextTable::new(["feature", "corr with PSNR"]);
        t.row(["p0".to_string(), format!("{:+.3}", s.corr_p0)]);
        t.row(["quant entropy".to_string(), format!("{:+.3}", s.corr_entropy)]);
        t.row(["log10 R_rle".to_string(), format!("{:+.3}", s.corr_rrle)]);
        println!(
            "{} — {} PSNR vs compressor-level features ({} points)\n{t}",
            fig.to_uppercase(),
            s.app,
            s.points.len()
        );
        let _ = write_artifact(fig, &s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psnr_tracks_bin_statistics_on_both_apps() {
        for app in [Application::Cesm, Application::Isabel] {
            let s = run_for(app);
            assert!(s.corr_p0 < -0.4, "{}: corr_p0 {}", s.app, s.corr_p0);
            assert!(s.corr_entropy > 0.4, "{}: corr_entropy {}", s.app, s.corr_entropy);
            assert!(s.corr_rrle < -0.25, "{}: corr_rrle {}", s.app, s.corr_rrle);
        }
    }
}
