//! Fig 14 — RTM compression time vs compressor-level features: the bin
//! statistics explain the per-error-bound time variation.

use crate::pool::{build_app_pool, EBS11};
use crate::support::{pearson, write_artifact, TextTable};
use ocelot_datagen::Application;
use serde::Serialize;

/// Correlation summary for the RTM time panel.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// `(p0, P0, quant_entropy, time)` scatter tuples.
    pub points: Vec<(f64, f64, f64, f64)>,
    /// corr(p0, time) — negative: predictable data code fast.
    pub corr_p0: f64,
    /// corr(P0, time).
    pub corr_cap_p0: f64,
    /// corr(quant entropy, time) — positive (coding cost grows).
    pub corr_entropy: f64,
}

/// Runs the experiment.
pub fn run() -> Summary {
    let fields = ["snapshot-0594", "snapshot-1048", "snapshot-1982", "snapshot-2800", "snapshot-3400"];
    let pool = build_app_pool(Application::Rtm, &fields, 0..3, &EBS11, 12);
    let points: Vec<(f64, f64, f64, f64)> =
        pool.iter().map(|p| (p.stats.p0, p.stats.cap_p0, p.stats.quant_entropy, p.time_s)).collect();
    let time: Vec<f64> = points.iter().map(|p| p.3).collect();
    Summary {
        corr_p0: pearson(&points.iter().map(|p| p.0).collect::<Vec<_>>(), &time),
        corr_cap_p0: pearson(&points.iter().map(|p| p.1).collect::<Vec<_>>(), &time),
        corr_entropy: pearson(&points.iter().map(|p| p.2).collect::<Vec<_>>(), &time),
        points,
    }
}

/// Runs, prints, writes the artifact.
pub fn print() {
    let s = run();
    let mut t = TextTable::new(["feature", "corr with compression time"]);
    t.row(["p0".to_string(), format!("{:+.3}", s.corr_p0)]);
    t.row(["P0".to_string(), format!("{:+.3}", s.corr_cap_p0)]);
    t.row(["quant entropy".to_string(), format!("{:+.3}", s.corr_entropy)]);
    println!("Fig 14 — RTM compression time vs compressor-level features ({} points)\n{t}", s.points.len());
    let _ = write_artifact("fig14", &s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_tracks_bin_statistics() {
        let s = run();
        assert!(s.corr_entropy > 0.6, "entropy corr {}", s.corr_entropy);
        assert!(s.corr_p0 < -0.5, "p0 corr {}", s.corr_p0);
    }
}
