//! Table VIII / Fig 16 — end-to-end transfers among Anvil, Bebop and Cori
//! for CESM, RTM and Miranda: direct (NP), compressed (CP), and
//! compressed + grouped (OP), with compression/decompression times and the
//! total-time reduction.

use crate::support::{fmt_secs, fmt_speed, write_artifact, TextTable};
use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::workload::Workload;
use ocelot_datagen::Application;
use ocelot_netsim::SiteId;
use serde::Serialize;

/// One Table VIII row (one application × one route).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Application name.
    pub dataset: String,
    /// Number of files.
    pub n_files: usize,
    /// Total uncompressed bytes.
    pub total_bytes: u64,
    /// Route label, e.g. `"Anvil->Cori"`.
    pub direction: String,
    /// Direct transfer time (s).
    pub t_np: f64,
    /// Direct effective speed (B/s).
    pub speed_np: f64,
    /// Compressed transfer time (s).
    pub t_cp: f64,
    /// Compressed effective speed (B/s).
    pub speed_cp: f64,
    /// Grouped transfer time (s).
    pub t_op: f64,
    /// Grouped effective speed (B/s).
    pub speed_op: f64,
    /// Compression time (s).
    pub cptime: f64,
    /// Decompression time (s).
    pub dptime: f64,
    /// Total time of the full solution (s).
    pub total_t: f64,
    /// `(T(NP) − Total T) / T(NP)`.
    pub reduced: f64,
    /// The paper's reported reduction, for comparison.
    pub paper_reduced: f64,
    /// Group count used for OP.
    pub op_groups: usize,
}

/// Paper `Reduced` values per (app, route), for side-by-side printing.
fn paper_reduced(app: Application, from: SiteId, to: SiteId) -> f64 {
    match (app, from, to) {
        (Application::Cesm, SiteId::Anvil, SiteId::Cori) => 0.60,
        (Application::Cesm, SiteId::Anvil, SiteId::Bebop) => 0.76,
        (Application::Cesm, SiteId::Bebop, SiteId::Cori) => 0.72,
        (Application::Rtm, SiteId::Anvil, SiteId::Cori) => 0.77,
        (Application::Rtm, SiteId::Anvil, SiteId::Bebop) => 0.91,
        (Application::Rtm, SiteId::Bebop, SiteId::Cori) => 0.85,
        (Application::Miranda, SiteId::Anvil, SiteId::Cori) => 0.41,
        (Application::Miranda, SiteId::Anvil, SiteId::Bebop) => 0.72,
        (Application::Miranda, SiteId::Bebop, SiteId::Cori) => 0.74,
        _ => f64::NAN,
    }
}

/// OP group count per application: the paper groups "by world_size";
/// Miranda's 768 files were packed into 8 groups (the case that regressed).
fn op_groups(app: Application, n_files: usize) -> usize {
    match app {
        Application::Miranda => 8,
        _ => n_files.min(2048),
    }
}

/// Runs the full 3 × 3 matrix.
pub fn run(profile_scale: usize) -> Vec<Row> {
    let orch = Orchestrator::paper();
    let routes = [(SiteId::Anvil, SiteId::Cori), (SiteId::Anvil, SiteId::Bebop), (SiteId::Bebop, SiteId::Cori)];
    let mut rows = Vec::new();
    for app in [Application::Cesm, Application::Rtm, Application::Miranda] {
        let w = Workload::paper_default(app, profile_scale).expect("transfer workload");
        for (from, to) in routes {
            let opts = PipelineOptions::default();
            let np = orch.run(&w, from, to, Strategy::Direct, &opts);
            let cp = orch.run(&w, from, to, Strategy::Compressed, &opts);
            let groups = op_groups(app, w.file_count());
            let op = orch.run(&w, from, to, Strategy::grouped_by_count(groups), &opts);
            let total_t = op.compression_s + op.grouping_s + op.transfer_s + op.decompression_s;
            rows.push(Row {
                dataset: app.name().to_string(),
                n_files: w.file_count(),
                total_bytes: w.total_bytes(),
                direction: format!("{from}->{to}"),
                t_np: np.transfer_s,
                speed_np: np.effective_speed_bps(),
                t_cp: cp.transfer_s,
                speed_cp: cp.effective_speed_bps(),
                t_op: op.transfer_s,
                speed_op: op.effective_speed_bps(),
                cptime: op.compression_s + op.grouping_s,
                dptime: op.decompression_s,
                total_t,
                reduced: (np.transfer_s - total_t) / np.transfer_s,
                paper_reduced: paper_reduced(app, from, to),
                op_groups: groups,
            });
        }
    }
    rows
}

/// Prints Table VIII and writes the artifact.
pub fn print() {
    let rows = run(8);
    let mut t = TextTable::new([
        "Dataset",
        "Direction",
        "T(NP)",
        "Sp(NP)",
        "T(CP)",
        "Sp(CP)",
        "T(OP)",
        "Sp(OP)",
        "CPTime",
        "DPTime",
        "Total T",
        "Reduced",
        "Paper",
    ]);
    for r in &rows {
        t.row([
            format!("{} ({} files)", r.dataset, r.n_files),
            r.direction.clone(),
            fmt_secs(r.t_np),
            fmt_speed(r.speed_np),
            fmt_secs(r.t_cp),
            fmt_speed(r.speed_cp),
            fmt_secs(r.t_op),
            fmt_speed(r.speed_op),
            fmt_secs(r.cptime),
            fmt_secs(r.dptime),
            fmt_secs(r.total_t),
            format!("{:.0}%", r.reduced * 100.0),
            format!("{:.0}%", r.paper_reduced * 100.0),
        ]);
    }
    println!("Table VIII — end-to-end transfer with parallel compression\n{t}");
    let _ = write_artifact("table8", &rows);
}

/// Prints the Fig 16 view (stacked time components for the two Anvil
/// routes) and writes the artifact.
pub fn print_fig16() {
    let rows: Vec<Row> = run(8).into_iter().filter(|r| r.direction.starts_with("Anvil")).collect();
    let mut t =
        TextTable::new(["Dataset", "Route", "direct", "compress", "transfer", "decompress", "total", "speed-up"]);
    for r in &rows {
        t.row([
            r.dataset.clone(),
            r.direction.clone(),
            fmt_secs(r.t_np),
            fmt_secs(r.cptime),
            fmt_secs(r.t_op),
            fmt_secs(r.dptime),
            fmt_secs(r.total_t),
            format!("{:.1}x", r.t_np / r.total_t),
        ]);
    }
    println!("Fig 16 — direct vs compress-and-transfer time breakdown\n{t}");
    let _ = write_artifact("fig16", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_wins_everywhere() {
        for r in run(8) {
            assert!(r.total_t < r.t_np, "{} {}: total {} vs np {}", r.dataset, r.direction, r.total_t, r.t_np);
            assert!(r.reduced > 0.2, "{} {}: reduced {}", r.dataset, r.direction, r.reduced);
        }
    }

    #[test]
    fn effective_speed_drops_after_compression_without_grouping() {
        // Table II pattern: smaller files, same file count → lower speed.
        for r in run(8) {
            if r.dataset != "miranda" {
                assert!(
                    r.speed_cp <= r.speed_np * 1.001,
                    "{} {}: cp speed {} vs np {}",
                    r.dataset,
                    r.direction,
                    r.speed_cp,
                    r.speed_np
                );
            }
        }
    }

    #[test]
    fn grouping_helps_cesm_and_rtm_but_not_miranda_on_the_fast_route() {
        let rows = run(8);
        let find = |d: &str, dir: &str| {
            rows.iter().find(|r| r.dataset == d && r.direction == dir).expect("row present").clone()
        };
        assert!(find("rtm", "Anvil->Cori").t_op < find("rtm", "Anvil->Cori").t_cp);
        assert!(find("cesm", "Anvil->Bebop").t_op <= find("cesm", "Anvil->Bebop").t_cp * 1.05);
        // Miranda's 8 groups cannot fill the fast link.
        assert!(find("miranda", "Anvil->Cori").t_op > find("miranda", "Anvil->Cori").t_cp);
    }

    #[test]
    fn reductions_are_in_the_paper_band() {
        for r in run(8) {
            // Within ±0.35 absolute of the paper's Reduced column.
            assert!(
                (r.reduced - r.paper_reduced).abs() < 0.35,
                "{} {}: reduced {:.2} vs paper {:.2}",
                r.dataset,
                r.direction,
                r.reduced,
                r.paper_reduced
            );
        }
    }
}
