//! Fig 9 — parallel compression and decompression time vs node count on
//! Anvil (128 cores/node): compression keeps scaling until cores ≈ files;
//! decompression degrades at high node counts from filesystem contention.

use crate::support::{fmt_secs, write_artifact, TextTable};
use ocelot::orchestrator::{Orchestrator, Strategy};
use ocelot::workload::Workload;
use ocelot_datagen::Application;
use ocelot_faas::Cluster;
use ocelot_netsim::SiteId;
use serde::Serialize;

/// One application's scaling curves.
#[derive(Debug, Clone, Serialize)]
pub struct AppCurve {
    /// Application name.
    pub app: String,
    /// Node counts swept.
    pub nodes: Vec<usize>,
    /// Compression time per node count (s).
    pub compression_s: Vec<f64>,
    /// Decompression time per node count (s).
    pub decompression_s: Vec<f64>,
}

/// Runs the sweep over `nodes` (paper: 1..16 on Anvil).
pub fn run(nodes: &[usize]) -> Vec<AppCurve> {
    let orch = Orchestrator::paper();
    let anvil = *orch.topology().site(SiteId::Anvil);
    [Application::Cesm, Application::Rtm, Application::Miranda]
        .iter()
        .map(|&app| {
            let w = Workload::paper_default(app, 12).expect("transfer workload");
            let mut compression_s = Vec::new();
            let mut decompression_s = Vec::new();
            for &n in nodes {
                let cluster = Cluster::new(n, anvil.cores_per_node, anvil.core_speed);
                compression_s.push(orch.compression_time(&w, &anvil, &cluster, Strategy::Compressed, 1));
                decompression_s.push(orch.decompression_time(&w, &anvil, &cluster, 1));
            }
            AppCurve { app: app.name().to_string(), nodes: nodes.to_vec(), compression_s, decompression_s }
        })
        .collect()
}

/// Runs the paper sweep, prints, writes the artifact.
pub fn print() {
    let nodes = [1usize, 2, 4, 8, 16];
    let curves = run(&nodes);
    let mut t = TextTable::new(["app", "nodes", "compression", "decompression"]);
    for c in &curves {
        for (i, &n) in c.nodes.iter().enumerate() {
            t.row([
                if i == 0 { c.app.clone() } else { String::new() },
                n.to_string(),
                fmt_secs(c.compression_s[i]),
                fmt_secs(c.decompression_s[i]),
            ]);
        }
    }
    println!("Fig 9 — parallel (de)compression vs node count on Anvil (128 cores/node)\n{t}");
    let _ = write_artifact("fig9", &curves);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_scales_down_decompression_turns_up() {
        let nodes = [1usize, 2, 4, 8, 16, 32];
        for c in run(&nodes) {
            // Compression: monotone non-increasing over the paper range.
            assert!(
                c.compression_s[0] > c.compression_s[4],
                "{}: compression should speed up with nodes ({:?})",
                c.app,
                c.compression_s
            );
            // Decompression: the 32-node point must be worse than the best
            // point (the Fig 9-right degradation).
            let best = c.decompression_s.iter().cloned().fold(f64::INFINITY, f64::min);
            let last = *c.decompression_s.last().expect("nonempty");
            assert!(
                last > best,
                "{}: decompression should degrade at high node counts ({:?})",
                c.app,
                c.decompression_s
            );
        }
    }
}
