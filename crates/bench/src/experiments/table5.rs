//! Table V — predicted vs real compression ratio and time on example
//! datasets (Nyx baryon density, CESM LHFLX/SNOWHICE, RTM snapshots,
//! Miranda velocity-x) at the paper's error bounds.

use crate::pool::{build_app_pool, measure_point_set, to_training, SamplePoint, EBS11};
use crate::support::{write_artifact, TextTable};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_qpred::{QualityModel, TreeConfig};
use serde::Serialize;

/// One Table V row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset label.
    pub dataset: String,
    /// Error bound.
    pub eb: f64,
    /// Predicted compression ratio.
    pub p_cr: f64,
    /// Real compression ratio.
    pub cr: f64,
    /// Predicted compression time (s, full-size reference core).
    pub p_cptime: f64,
    /// Real (cost-model) compression time.
    pub cptime: f64,
}

/// Trains a model on a broad pool and evaluates the paper's example rows.
pub fn run() -> Vec<Row> {
    // Training pool spans the apps whose rows appear in the table.
    let mut training = Vec::new();
    for app in [Application::Nyx, Application::Cesm, Application::Rtm, Application::Miranda] {
        let fields: Vec<&str> = app.fields().to_vec();
        let scale = crate::pool::default_scale(app);
        training.extend(build_app_pool(app, &fields, 1..3, &EBS11, scale));
    }
    let model = QualityModel::train(&to_training(&training), &TreeConfig::default());

    // Evaluation rows: fresh seeds (seed 0) at the paper's error bounds.
    let cases: [(Application, &str, &[f64]); 5] = [
        (Application::Nyx, "baryon_density", &[1e-6, 1e-4, 1e-2]),
        (Application::Cesm, "LHFLX", &[1e-6, 1e-3, 1e-2]),
        (Application::Cesm, "SNOWHICE", &[1e-6, 1e-4, 1e-3]),
        (Application::Rtm, "snapshot-1048", &[1e-6, 1e-4]),
        (Application::Miranda, "velocity-x", &[1e-2, 1e-3, 1e-1]),
    ];
    let mut rows = Vec::new();
    for (app, field, ebs) in cases {
        let scale = crate::pool::default_scale(app);
        let data = FieldSpec::new(app, field).with_scale(scale).generate();
        let full_points: usize = app.default_dims().iter().product();
        let measured: Vec<SamplePoint> = measure_point_set(app, field, 0, &data, ebs, full_points);
        for p in measured {
            let est = model.predict(&p.features);
            rows.push(Row {
                dataset: format!("{}/{}", app.name(), field),
                eb: p.eb,
                p_cr: est.ratio,
                cr: p.ratio,
                p_cptime: est.time_seconds,
                cptime: p.time_s,
            });
        }
    }
    rows
}

/// Runs, prints, writes the artifact.
pub fn print() {
    let rows = run();
    let mut t = TextTable::new(["Dataset", "EB", "P-CR", "CR", "P-CPTime", "CPTime"]);
    for r in &rows {
        t.row([
            r.dataset.clone(),
            format!("{:.0e}", r.eb),
            format!("{:.2}", r.p_cr),
            format!("{:.2}", r.cr),
            format!("{:.1}", r.p_cptime),
            format!("{:.1}", r.cptime),
        ]);
    }
    println!("Table V — compression ratio & time prediction examples\n{t}");
    let _ = write_artifact("table5", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_are_close_on_most_rows() {
        let rows = run();
        let within = |pred: f64, real: f64, f: f64| pred / real < f && real / pred < f;
        let good_cr = rows.iter().filter(|r| within(r.p_cr, r.cr, 2.0)).count();
        let good_t = rows.iter().filter(|r| within(r.p_cptime, r.cptime, 2.0)).count();
        assert!(good_cr * 3 >= rows.len() * 2, "CR within 2x on {good_cr}/{} rows", rows.len());
        assert!(good_t * 3 >= rows.len() * 2, "time within 2x on {good_t}/{} rows", rows.len());
    }
}
