//! Tables VI & VII — PSNR prediction for CESM and ISABEL: train on 50 % of
//! samples, report per-file real vs predicted PSNR and the overall RMSE
//! (paper: 13.05 dB for CESM, 14.23 dB for ISABEL — noticeably worse than
//! ratio/time prediction).

use crate::pool::{build_app_pool, to_training, EBS11};
use crate::support::{write_artifact, TextTable};
use ocelot_datagen::Application;
use ocelot_qpred::{QualityModel, TrainingSet, TreeConfig};
use serde::Serialize;

/// One prediction row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Field/eb label.
    pub filename: String,
    /// Error bound.
    pub eb: f64,
    /// Real PSNR (dB).
    pub real_psnr: f64,
    /// Predicted PSNR (dB).
    pub predicted_psnr: f64,
}

/// Table result: example rows plus the full-test-set RMSE.
#[derive(Debug, Clone, Serialize)]
pub struct Outcome {
    /// Application name.
    pub app: String,
    /// Ten sample rows (as in the paper's tables).
    pub rows: Vec<Row>,
    /// RMSE over the whole held-out set (dB).
    pub rmse: f64,
    /// Held-out set size.
    pub test_points: usize,
}

/// Runs for one application (Table VI = CESM, Table VII = ISABEL).
pub fn run_for(app: Application) -> Outcome {
    let fields: Vec<&str> = app.fields().to_vec();
    let scale = crate::pool::default_scale(app);
    let pool = build_app_pool(app, &fields, 0..2, &EBS11, scale);
    let set: TrainingSet = to_training(&pool).into_iter().collect();
    let split = set.split(0.5, 7);
    let model = QualityModel::train(&split.train, &TreeConfig::default());

    let mut se = 0.0;
    let mut rows = Vec::new();
    for (i, s) in split.test.iter().enumerate() {
        let est = model.predict(&s.features);
        se += (est.psnr - s.psnr).powi(2);
        if rows.len() < 10 {
            // Recover the label from the matching pool entry.
            let p = pool.iter().find(|p| p.features == s.features).expect("sample from pool");
            let _ = i;
            rows.push(Row {
                filename: format!("{}_{}.dat", p.field, p.seed),
                eb: p.eb,
                real_psnr: s.psnr,
                predicted_psnr: est.psnr,
            });
        }
    }
    Outcome {
        app: app.name().to_string(),
        rows,
        rmse: (se / split.test.len() as f64).sqrt(),
        test_points: split.test.len(),
    }
}

/// Runs both tables, prints, writes artifacts.
pub fn print() {
    for (name, app) in [("table6", Application::Cesm), ("table7", Application::Isabel)] {
        let o = run_for(app);
        let mut t = TextTable::new(["Filename", "eb", "Real PSNR", "Predicted PSNR"]);
        for r in &o.rows {
            t.row([
                r.filename.clone(),
                format!("{:.0e}", r.eb),
                format!("{:.2}", r.real_psnr),
                format!("{:.2}", r.predicted_psnr),
            ]);
        }
        println!(
            "{} — PSNR prediction for {} (RMSE {:.2} dB over {} held-out points)\n{t}",
            name.to_uppercase(),
            o.app,
            o.rmse,
            o.test_points
        );
        let _ = write_artifact(name, &o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psnr_rmse_is_in_the_paper_regime() {
        for app in [Application::Cesm, Application::Isabel] {
            let o = run_for(app);
            // Paper: 13.05 / 14.23 dB. Accept the same order of magnitude;
            // must be clearly worse than ratio prediction yet usable.
            assert!(o.rmse < 30.0, "{}: rmse {}", o.app, o.rmse);
            assert!(o.rows.len() == 10);
        }
    }

    #[test]
    fn predictions_follow_the_bound_direction() {
        let o = run_for(Application::Cesm);
        // Across the example rows, tighter bounds should trend to higher
        // predicted PSNR (check via rank correlation of -log(eb) and pred).
        let xs: Vec<f64> = o.rows.iter().map(|r| -r.eb.log10()).collect();
        let ys: Vec<f64> = o.rows.iter().map(|r| r.predicted_psnr).collect();
        assert!(crate::support::pearson(&xs, &ys) > 0.3, "corr {}", crate::support::pearson(&xs, &ys));
    }
}
