//! Ablations beyond the paper: quantify each design choice the paper
//! motivates qualitatively.
//!
//! * **grouping sweep** — transfer time vs group count: the optimum is
//!   interior (too many files pay handling costs; too few cannot fill the
//!   link), quantifying §VII-C's "strategically group files into multiple
//!   groups instead of simply connecting all compressed files into one".
//! * **sentinel sweep** — expected total time over the batch-queue
//!   waiting-time distributions with and without the sentinel.
//! * **model ablation** — closed-form estimator vs single tree vs bagged
//!   forest on held-out ratio prediction.
//! * **sampling ablation** — feature-sampling stride vs prediction
//!   accuracy (the cost/accuracy trade-off behind the paper's 1 % choice).
//! * **backend ablation** — compression ratio per lossless backend.

use crate::pool::{build_app_pool, to_training, EBS11};
use crate::support::{fmt_secs, write_artifact, TextTable};
use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::sentinel::sentinel_total_s;
use ocelot::workload::Workload;
use ocelot_datagen::{Application, FieldSpec};
use ocelot_faas::WaitTimeModel;
use ocelot_netsim::SiteId;
use ocelot_qpred::{QualityModel, RandomForest, TrainingSet, TreeConfig};
use ocelot_sz::config::LosslessBackend;
use ocelot_sz::stats::jin_ratio_estimate;
use ocelot_sz::{compress, LossyConfig};
use serde::Serialize;

/// Grouping-sweep row.
#[derive(Debug, Clone, Serialize)]
pub struct GroupingRow {
    /// Application.
    pub app: String,
    /// Number of groups.
    pub groups: usize,
    /// Transfer time of the grouped batch (s).
    pub transfer_s: f64,
}

/// Sweeps group counts for Miranda and RTM on the fast route.
pub fn run_grouping_sweep() -> Vec<GroupingRow> {
    let orch = Orchestrator::paper();
    let opts = PipelineOptions::default();
    let mut rows = Vec::new();
    for app in [Application::Miranda, Application::Rtm] {
        let w = Workload::paper_default(app, 12).expect("workload");
        for groups in [1usize, 2, 4, 8, 16, 32, 64, 128, 512, 2048] {
            let groups = groups.min(w.file_count());
            let b = orch.run(&w, SiteId::Anvil, SiteId::Cori, Strategy::grouped_by_count(groups), &opts);
            rows.push(GroupingRow { app: app.name().to_string(), groups, transfer_s: b.transfer_s });
        }
    }
    rows
}

/// Sentinel-sweep row.
#[derive(Debug, Clone, Serialize)]
pub struct SentinelRow {
    /// Waiting-time regime.
    pub regime: String,
    /// Mean total with the sentinel (s), over seeded draws.
    pub sentinel_mean_s: f64,
    /// Mean total without (blocking), over the same draws.
    pub blocking_mean_s: f64,
    /// Direct-transfer reference (s).
    pub direct_s: f64,
}

/// Expected totals under the paper's queue regimes (16 seeded draws each).
pub fn run_sentinel_sweep() -> Vec<SentinelRow> {
    let orch = Orchestrator::paper();
    let w = Workload::paper_default(Application::Miranda, 12).expect("workload");
    let direct = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Direct, &PipelineOptions::default());
    [
        ("immediate", WaitTimeModel::Immediate),
        ("idle-nodes", WaitTimeModel::idle_nodes()),
        ("busy-cluster", WaitTimeModel::busy_cluster()),
    ]
    .into_iter()
    .map(|(name, model)| {
        let mut sent_total = 0.0;
        let mut block_total = 0.0;
        const DRAWS: u64 = 16;
        for seed in 0..DRAWS {
            let sent_opts = PipelineOptions { wait_model: model, sentinel: true, seed, ..Default::default() };
            let block_opts = PipelineOptions { sentinel: false, ..sent_opts };
            let s = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &sent_opts);
            let b = orch.run(&w, SiteId::Anvil, SiteId::Bebop, Strategy::Compressed, &block_opts);
            sent_total += sentinel_total_s(&s).min(direct.total_s());
            block_total += b.total_s();
        }
        SentinelRow {
            regime: name.to_string(),
            sentinel_mean_s: sent_total / DRAWS as f64,
            blocking_mean_s: block_total / DRAWS as f64,
            direct_s: direct.total_s(),
        }
    })
    .collect()
}

/// Model-ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct ModelRow {
    /// Estimator name.
    pub estimator: String,
    /// Held-out log10-ratio RMSE.
    pub log_rmse: f64,
}

/// Closed-form vs tree vs forest on Miranda held-out ratio prediction.
pub fn run_model_ablation() -> Vec<ModelRow> {
    let fields: Vec<&str> = Application::Miranda.fields().to_vec();
    let pool = build_app_pool(Application::Miranda, &fields, 0..3, &EBS11, 12);
    let set: TrainingSet = to_training(&pool).into_iter().collect();
    let split = set.split(0.3, 11);
    let tree_model = QualityModel::train(&split.train, &TreeConfig::default());
    let x: Vec<Vec<f64>> = split.train.iter().map(|s| s.features.as_slice().to_vec()).collect();
    let y: Vec<f64> = split.train.iter().map(|s| s.ratio.log10()).collect();
    let forest = RandomForest::fit(&x, &y, 15, &TreeConfig::default(), 5);

    let mut jin_se = 0.0;
    let mut tree_se = 0.0;
    let mut forest_se = 0.0;
    for s in &split.test {
        let p = pool.iter().find(|p| p.features == s.features).expect("sample from pool");
        let truth = s.ratio.log10();
        jin_se += (jin_ratio_estimate(&p.stats, 1.0).clamp(1.0, 1e6).log10() - truth).powi(2);
        tree_se += (tree_model.predict(&s.features).ratio.log10() - truth).powi(2);
        forest_se += (forest.predict(s.features.as_slice()) - truth).powi(2);
    }
    let n = split.test.len() as f64;
    vec![
        ModelRow { estimator: "jin closed-form (C1=1)".into(), log_rmse: (jin_se / n).sqrt() },
        ModelRow { estimator: "single CART tree".into(), log_rmse: (tree_se / n).sqrt() },
        ModelRow { estimator: "bagged forest (15 trees)".into(), log_rmse: (forest_se / n).sqrt() },
    ]
}

/// Sampling-rate ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct SamplingRow {
    /// Feature-sampling stride.
    pub stride: usize,
    /// Held-out log10-ratio RMSE when features use this stride.
    pub log_rmse: f64,
}

/// How far can sampling be pushed before prediction accuracy suffers?
pub fn run_sampling_ablation() -> Vec<SamplingRow> {
    let fields = ["density", "pressure", "velocity-x", "viscosity"];
    [1usize, 5, 25, 100, 400]
        .iter()
        .map(|&stride| {
            // Rebuild features at this stride for the same measured labels.
            let mut samples = Vec::new();
            for &field in &fields {
                for seed in 0..3u64 {
                    let data = FieldSpec::new(Application::Miranda, field).with_scale(12).with_seed(seed).generate();
                    for &eb in &EBS11 {
                        let cfg = LossyConfig::sz3(eb);
                        let features = ocelot_qpred::extract(&data, &cfg, stride);
                        let outcome = compress(&data, &cfg).expect("compression succeeds");
                        samples.push(ocelot_qpred::TrainingSample {
                            features,
                            ratio: outcome.ratio,
                            time_seconds: 1.0,
                            psnr: 100.0,
                        });
                    }
                }
            }
            let set: TrainingSet = samples.into_iter().collect();
            let split = set.split(0.3, 21);
            let model = QualityModel::train(&split.train, &TreeConfig::default());
            let se: f64 =
                split.test.iter().map(|s| (model.predict(&s.features).ratio.log10() - s.ratio.log10()).powi(2)).sum();
            SamplingRow { stride, log_rmse: (se / split.test.len() as f64).sqrt() }
        })
        .collect()
}

/// Pipelining ablation row: additive (paper Table VIII accounting) vs
/// overlapped (files transfer as compression finishes, Fig 1's pipeline).
#[derive(Debug, Clone, Serialize)]
pub struct PipelineRow {
    /// Application.
    pub app: String,
    /// Route.
    pub route: String,
    /// Additive total (compress, then transfer, then decompress), seconds.
    pub additive_s: f64,
    /// Overlapped total, seconds.
    pub overlapped_s: f64,
}

/// Compares additive vs overlapped pipelines across apps on the Bebop→Cori
/// route (slow source cores make the overlap matter most).
pub fn run_pipelining_ablation() -> Vec<PipelineRow> {
    let orch = Orchestrator::paper();
    let opts = PipelineOptions::default();
    [Application::Cesm, Application::Rtm, Application::Miranda]
        .iter()
        .map(|&app| {
            let w = Workload::paper_default(app, 12).expect("workload");
            let additive = orch.run(&w, SiteId::Bebop, SiteId::Cori, Strategy::Compressed, &opts);
            let overlapped = orch.run_overlapped(&w, SiteId::Bebop, SiteId::Cori, &opts);
            PipelineRow {
                app: app.name().to_string(),
                route: "Bebop->Cori".to_string(),
                additive_s: additive.total_s(),
                overlapped_s: Orchestrator::overlapped_total_s(&overlapped),
            }
        })
        .collect()
}

/// Backend ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct BackendRow {
    /// Application/field.
    pub dataset: String,
    /// Backend name.
    pub backend: String,
    /// Compression ratio.
    pub ratio: f64,
}

/// Ratio per lossless backend across two applications.
pub fn run_backend_ablation() -> Vec<BackendRow> {
    let mut rows = Vec::new();
    for (app, field, scale) in [(Application::Cesm, "LHFLX", 12), (Application::Miranda, "velocity-x", 12)] {
        let data = FieldSpec::new(app, field).with_scale(scale).generate();
        for backend in [LosslessBackend::Huffman, LosslessBackend::HuffmanLz, LosslessBackend::RleHuffman] {
            let cfg = LossyConfig::sz3(1e-3).with_backend(backend);
            let out = compress(&data, &cfg).expect("compression succeeds");
            rows.push(BackendRow {
                dataset: format!("{}/{}", app.name(), field),
                backend: backend.name().to_string(),
                ratio: out.ratio,
            });
        }
    }
    rows
}

/// Runs and prints all ablations, writing artifacts.
pub fn print() {
    let grouping = run_grouping_sweep();
    let mut t = TextTable::new(["app", "groups", "transfer"]);
    for r in &grouping {
        t.row([r.app.clone(), r.groups.to_string(), fmt_secs(r.transfer_s)]);
    }
    println!("Ablation — grouping sweep (Anvil->Cori)\n{t}");
    let _ = write_artifact("ablation_grouping", &grouping);

    let sentinel = run_sentinel_sweep();
    let mut t = TextTable::new(["queue regime", "sentinel mean", "blocking mean", "direct"]);
    for r in &sentinel {
        t.row([r.regime.clone(), fmt_secs(r.sentinel_mean_s), fmt_secs(r.blocking_mean_s), fmt_secs(r.direct_s)]);
    }
    println!("Ablation — sentinel under queue regimes (Miranda, Anvil->Bebop, 16 draws)\n{t}");
    let _ = write_artifact("ablation_sentinel", &sentinel);

    let model = run_model_ablation();
    let mut t = TextTable::new(["estimator", "held-out log10-ratio RMSE"]);
    for r in &model {
        t.row([r.estimator.clone(), format!("{:.3}", r.log_rmse)]);
    }
    println!("Ablation — ratio estimator (Miranda)\n{t}");
    let _ = write_artifact("ablation_model", &model);

    let sampling = run_sampling_ablation();
    let mut t = TextTable::new(["stride", "held-out log10-ratio RMSE"]);
    for r in &sampling {
        t.row([format!("1/{}", r.stride), format!("{:.3}", r.log_rmse)]);
    }
    println!("Ablation — feature sampling rate (Miranda)\n{t}");
    let _ = write_artifact("ablation_sampling", &sampling);

    let backend = run_backend_ablation();
    let mut t = TextTable::new(["dataset", "backend", "ratio"]);
    for r in &backend {
        t.row([r.dataset.clone(), r.backend.clone(), format!("{:.1}", r.ratio)]);
    }
    println!("Ablation — lossless backend\n{t}");
    let _ = write_artifact("ablation_backend", &backend);

    let pipelining = run_pipelining_ablation();
    let mut t = TextTable::new(["app", "route", "additive", "overlapped", "saved"]);
    for r in &pipelining {
        t.row([
            r.app.clone(),
            r.route.clone(),
            fmt_secs(r.additive_s),
            fmt_secs(r.overlapped_s),
            format!("{:.0}%", (1.0 - r.overlapped_s / r.additive_s) * 100.0),
        ]);
    }
    println!("Ablation — additive vs overlapped pipeline\n{t}");
    let _ = write_artifact("ablation_pipelining", &pipelining);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_optimum_is_interior() {
        let rows = run_grouping_sweep();
        for app in ["miranda", "rtm"] {
            let series: Vec<&GroupingRow> = rows.iter().filter(|r| r.app == app).collect();
            let best = series
                .iter()
                .min_by(|a, b| a.transfer_s.partial_cmp(&b.transfer_s).expect("finite"))
                .expect("nonempty");
            let first = series.first().expect("nonempty");
            let last = series.last().expect("nonempty");
            assert!(best.transfer_s < first.transfer_s, "{app}: one big group should not be optimal");
            assert!(best.groups > 1, "{app}: best groups {}", best.groups);
            // Either extreme is dominated by the interior optimum.
            assert!(
                best.transfer_s <= last.transfer_s,
                "{app}: best {} vs max-groups {}",
                best.transfer_s,
                last.transfer_s
            );
        }
    }

    #[test]
    fn sentinel_never_hurts_in_expectation() {
        for r in run_sentinel_sweep() {
            assert!(
                r.sentinel_mean_s <= r.blocking_mean_s * 1.01,
                "{}: {} vs {}",
                r.regime,
                r.sentinel_mean_s,
                r.blocking_mean_s
            );
            assert!(r.sentinel_mean_s <= r.direct_s * 1.01, "{}: sentinel above direct", r.regime);
        }
    }

    #[test]
    fn learned_models_beat_closed_form() {
        let rows = run_model_ablation();
        let by = |name: &str| rows.iter().find(|r| r.estimator.contains(name)).expect("row present").log_rmse;
        assert!(by("tree") < by("jin"), "tree {} vs jin {}", by("tree"), by("jin"));
        assert!(by("forest") < by("jin"), "forest {} vs jin {}", by("forest"), by("jin"));
    }

    #[test]
    fn moderate_sampling_is_nearly_free() {
        let rows = run_sampling_ablation();
        let full = rows.iter().find(|r| r.stride == 1).expect("stride 1").log_rmse;
        let pct1 = rows.iter().find(|r| r.stride == 100).expect("stride 100").log_rmse;
        // 1 % sampling costs at most a modest accuracy hit vs full features.
        assert!(pct1 < full + 0.25, "1% sampling rmse {pct1} vs full {full}");
    }

    #[test]
    fn overlap_never_hurts_and_helps_compression_bound_runs() {
        let rows = run_pipelining_ablation();
        for r in &rows {
            assert!(r.overlapped_s <= r.additive_s * 1.02, "{}: {} vs {}", r.app, r.overlapped_s, r.additive_s);
        }
        // RTM from slow Bebop cores is compression-bound: clear win.
        let rtm = rows.iter().find(|r| r.app == "rtm").expect("rtm present");
        assert!(rtm.overlapped_s < rtm.additive_s * 0.9, "rtm {} vs {}", rtm.overlapped_s, rtm.additive_s);
    }

    #[test]
    fn lz_stage_helps_ratio() {
        let rows = run_backend_ablation();
        for dataset in ["cesm/LHFLX", "miranda/velocity-x"] {
            let by = |backend: &str| {
                rows.iter().find(|r| r.dataset == dataset && r.backend == backend).expect("row present").ratio
            };
            assert!(by("huffman+lz") >= by("huffman") * 0.99, "{dataset}: lz should not hurt");
        }
    }
}
