//! Fig 13 — (A) prediction-overhead analysis on Nyx: feature-extraction
//! cost vs full compression cost at 100 % / 10 % / 1 % sampling; (B)
//! compression-time ranges per application.

use crate::pool::{build_app_pool, EBS11};
use crate::support::{write_artifact, TextTable};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_qpred::extract;
use ocelot_sz::{compress, LossyConfig};
use serde::Serialize;
use std::time::Instant;

/// One sampling-rate measurement (panel A).
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Sampling stride (1 = 100 %, 10 = 10 %, 100 = 1 %).
    pub stride: usize,
    /// Wall-clock feature-extraction time (s).
    pub extract_s: f64,
    /// Wall-clock compression time (s).
    pub compress_s: f64,
    /// Overhead as a fraction of compression time.
    pub overhead_frac: f64,
}

/// One application's compression-time range (panel B).
#[derive(Debug, Clone, Serialize)]
pub struct RangeRow {
    /// Application name.
    pub app: String,
    /// Minimum modelled full-size compression time across fields/ebs (s).
    pub min_s: f64,
    /// Maximum (s).
    pub max_s: f64,
}

/// Panel A: measures real wall-clock extraction vs compression on a Nyx
/// field (the only wall-clock measurement in the harness — it is a
/// performance claim, not a simulation result).
pub fn run_overhead() -> Vec<OverheadRow> {
    let data = FieldSpec::new(Application::Nyx, "temperature").with_scale(8).generate();
    let config = LossyConfig::sz3(1e-3);
    // Median-of-3 compression time.
    let mut comp_times = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        let _ = compress(&data, &config).expect("compression succeeds");
        comp_times.push(t0.elapsed().as_secs_f64());
    }
    comp_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let compress_s = comp_times[1];
    [1usize, 10, 100]
        .iter()
        .map(|&stride| {
            let t0 = Instant::now();
            let _ = extract(&data, &config, stride);
            let extract_s = t0.elapsed().as_secs_f64();
            OverheadRow { stride, extract_s, compress_s, overhead_frac: extract_s / compress_s }
        })
        .collect()
}

/// Panel B: per-application modelled compression-time ranges at full size.
pub fn run_ranges() -> Vec<RangeRow> {
    [Application::Nyx, Application::Cesm, Application::Miranda, Application::Rtm, Application::Isabel]
        .iter()
        .map(|&app| {
            let fields: Vec<&str> = app.fields().to_vec();
            let scale = crate::pool::default_scale(app);
            let pool = build_app_pool(app, &fields[..fields.len().min(4)], 0..1, &EBS11, scale);
            let times: Vec<f64> = pool.iter().map(|p| p.time_s).collect();
            RangeRow {
                app: app.name().to_string(),
                min_s: times.iter().cloned().fold(f64::INFINITY, f64::min),
                max_s: times.iter().cloned().fold(0.0, f64::max),
            }
        })
        .collect()
}

/// Runs both panels, prints, writes artifacts.
pub fn print() {
    let overhead = run_overhead();
    let mut t = TextTable::new(["sampling", "extract (s)", "compress (s)", "overhead"]);
    for r in &overhead {
        t.row([
            format!("1/{} ({}%)", r.stride, 100 / r.stride),
            format!("{:.4}", r.extract_s),
            format!("{:.4}", r.compress_s),
            format!("{:.1}%", r.overhead_frac * 100.0),
        ]);
    }
    println!("Fig 13(A) — prediction overhead on Nyx (wall clock)\n{t}");

    let ranges = run_ranges();
    let mut t = TextTable::new(["app", "min time (s)", "max time (s)"]);
    for r in &ranges {
        t.row([r.app.clone(), format!("{:.2}", r.min_s), format!("{:.2}", r.max_s)]);
    }
    println!("Fig 13(B) — full-size compression time ranges (reference core)\n{t}");
    let _ = write_artifact("fig13a", &overhead);
    let _ = write_artifact("fig13b", &ranges);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_slashes_extraction_overhead() {
        let rows = run_overhead();
        // 1 % sampling must be far cheaper than 100 % extraction…
        assert!(rows[2].extract_s < rows[0].extract_s / 5.0, "{rows:?}");
        // …and a small fraction of the compression itself (paper: ≤ 5 %;
        // allow debug-build slack).
        assert!(rows[2].overhead_frac < 0.5, "overhead {}", rows[2].overhead_frac);
    }

    #[test]
    fn time_ranges_group_by_application() {
        let rows = run_ranges();
        let nyx = rows.iter().find(|r| r.app == "nyx").expect("nyx present");
        let cesm = rows.iter().find(|r| r.app == "cesm").expect("cesm present");
        // Nyx files (512³) are far slower than CESM 2-D fields (Fig 13B's
        // per-application grouping).
        assert!(nyx.min_s > cesm.max_s, "nyx {:?} vs cesm {:?}", (nyx.min_s, nyx.max_s), (cesm.min_s, cesm.max_s));
    }
}
