//! Table I — basic data-based features (min / max / value range) of CESM
//! and HACC fields.

use crate::support::{write_artifact, TextTable};
use ocelot_datagen::{Application, FieldSpec};
use ocelot_sz::stats::value_stats;
use serde::Serialize;

/// One Table I column.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset label as printed in the paper.
    pub dataset: String,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Value range.
    pub range: f64,
    /// The paper's reported range, for side-by-side comparison.
    pub paper_range: f64,
}

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let specs: [(Application, &str, usize, f64); 5] = [
        (Application::Cesm, "CLDHGH", 16, 0.92),
        (Application::Cesm, "FLDSC", 16, 325.40),
        (Application::Cesm, "PCONVT", 16, 64182.18),
        (Application::Hacc, "vx", 64, 7877.46),
        (Application::Hacc, "xx", 64, 256.00),
    ];
    specs
        .iter()
        .map(|&(app, field, scale, paper_range)| {
            let data = FieldSpec::new(app, field).with_scale(scale).generate();
            let s = value_stats(&data);
            Row {
                dataset: if app == Application::Hacc { format!("HACC-{field}") } else { field.to_string() },
                min: s.min,
                max: s.max,
                range: s.range,
                paper_range,
            }
        })
        .collect()
}

/// Runs, prints, and writes the artifact.
pub fn print() {
    let rows = run();
    let mut t = TextTable::new(["Dataset", "min", "max", "value range", "paper range"]);
    for r in &rows {
        t.row([
            r.dataset.clone(),
            format!("{:.2}", r.min),
            format!("{:.2}", r.max),
            format!("{:.2}", r.range),
            format!("{:.2}", r.paper_range),
        ]);
    }
    println!("Table I — basic data-based features\n{t}");
    let _ = write_artifact("table1", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_track_the_paper() {
        for r in run() {
            // Within 2× of the published range (synthetic fields target the
            // published [lo, hi] intervals directly).
            assert!(r.range > r.paper_range * 0.5 && r.range < r.paper_range * 2.0, "{r:?}");
        }
    }
}
