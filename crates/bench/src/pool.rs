//! Shared sample pool: (application, field, seed, error-bound) points with
//! measured compression outcomes, used by the quality-prediction
//! experiments (Figs 4–8, 12–14, Tables V–VII).

use ocelot_datagen::{Application, FieldSpec};
use ocelot_qpred::{extract, FeatureVector, TrainingSample};
use ocelot_sz::config::LossyConfig;
use ocelot_sz::cost::CostModel;
use ocelot_sz::stats::{byte_entropy, QuantBinStats};
use ocelot_sz::{compress, decompress, metrics, Dataset};
use serde::Serialize;

/// The paper's eleven error bounds, log-spaced from 1e-6 to 1e-1.
pub const EBS11: [f64; 11] =
    [1.0e-6, 3.16e-6, 1.0e-5, 3.16e-5, 1.0e-4, 3.16e-4, 1.0e-3, 3.16e-3, 1.0e-2, 3.16e-2, 1.0e-1];

/// Feature-extraction sampling stride used throughout the experiments
/// (scaled datasets are small, so a lighter stride than the paper's 100
/// keeps the sampled statistics meaningful).
pub const SAMPLE_STRIDE: usize = 25;

/// One measured sample.
#[derive(Debug, Clone, Serialize)]
pub struct SamplePoint {
    /// Application name.
    pub app: String,
    /// Field name.
    pub field: String,
    /// Snapshot seed.
    pub seed: u64,
    /// Relative error bound.
    pub eb: f64,
    /// Measured compression ratio.
    pub ratio: f64,
    /// Modelled full-size single-core compression time (seconds).
    pub time_s: f64,
    /// Measured PSNR (dB).
    pub psnr: f64,
    /// Byte-level entropy of the (sampled) data.
    pub byte_entropy: f64,
    /// Full-stream quantization-bin statistics.
    #[serde(skip)]
    pub stats: QuantBinStats,
    /// Extracted model features.
    #[serde(skip)]
    pub features: FeatureVector,
}

impl SamplePoint {
    /// Converts to a model training sample.
    pub fn to_training(&self) -> TrainingSample {
        TrainingSample { features: self.features, ratio: self.ratio, time_seconds: self.time_s, psnr: self.psnr }
    }
}

/// Builds sample points for an application: `fields × seeds × ebs`, with
/// fields generated once and reused across error bounds.
///
/// `scale` divides the paper dimensions; `full_points` (the label scale for
/// time) is taken from the application's default dims.
///
/// # Panics
/// Panics on compression failures (experiment configurations are known-good).
pub fn build_app_pool(
    app: Application,
    fields: &[&str],
    seeds: std::ops::Range<u64>,
    ebs: &[f64],
    scale: usize,
) -> Vec<SamplePoint> {
    let full_points: usize = app.default_dims().iter().product();
    let mut out = Vec::new();
    for field in fields {
        for seed in seeds.clone() {
            let data = FieldSpec::new(app, *field).with_scale(scale).with_seed(seed).generate();
            out.extend(measure_point_set(app, field, seed, &data, ebs, full_points));
        }
    }
    out
}

/// Measures one dataset at several error bounds.
pub fn measure_point_set(
    app: Application,
    field: &str,
    seed: u64,
    data: &Dataset<f32>,
    ebs: &[f64],
    full_points: usize,
) -> Vec<SamplePoint> {
    ebs.iter()
        .map(|&eb| {
            let config = LossyConfig::sz3(eb);
            let features = extract(data, &config, SAMPLE_STRIDE);
            let outcome = compress(data, &config).expect("experiment compression succeeds");
            let restored = decompress::<f32>(&outcome.blob).expect("experiment decompression succeeds");
            let quality = metrics::compare(data, &restored).expect("shapes match");
            let cost = CostModel::for_predictor(config.predictor);
            SamplePoint {
                app: app.name().to_string(),
                field: field.to_string(),
                seed,
                eb,
                ratio: outcome.ratio,
                time_s: cost.compression_seconds(full_points, &outcome.bin_stats),
                psnr: if quality.psnr.is_finite() { quality.psnr } else { 200.0 },
                byte_entropy: byte_entropy(data),
                stats: outcome.bin_stats,
                features,
            }
        })
        .collect()
}

/// Default pool scales per application (kept small enough for seconds-long
/// experiment runs while large enough for stable statistics).
pub fn default_scale(app: Application) -> usize {
    match app {
        Application::Cesm => 16,
        Application::Miranda => 12,
        Application::Rtm => 12,
        Application::Nyx => 16,
        Application::Isabel => 8,
        Application::Qmcpack => 24,
        Application::Hacc => 128,
    }
}

/// Converts a pool into model training samples.
pub fn to_training(pool: &[SamplePoint]) -> Vec<TrainingSample> {
    pool.iter().map(SamplePoint::to_training).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_covers_the_grid() {
        let pool = build_app_pool(Application::Miranda, &["density", "pressure"], 0..2, &[1e-3, 1e-2], 32);
        assert_eq!(pool.len(), 2 * 2 * 2);
        assert!(pool.iter().all(|p| p.ratio > 1.0 && p.psnr > 0.0 && p.time_s > 0.0));
    }

    #[test]
    fn looser_bounds_have_higher_ratio_within_a_point_set() {
        let data = FieldSpec::new(Application::Rtm, "snapshot-1048").with_scale(16).generate();
        let pts = measure_point_set(Application::Rtm, "snapshot-1048", 0, &data, &[1e-5, 1e-2], 1000);
        assert!(pts[1].ratio > pts[0].ratio);
        assert!(pts[1].psnr < pts[0].psnr);
    }

    #[test]
    fn ebs11_is_sorted_and_spans_the_paper_range() {
        assert_eq!(EBS11.len(), 11);
        assert!(EBS11.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(EBS11[0], 1e-6);
        assert_eq!(EBS11[10], 1e-1);
    }
}
