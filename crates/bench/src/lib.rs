//! Reproduction harness for every table and figure in the Ocelot paper.
//!
//! Each `experiments::*` module regenerates one evaluation artifact: it runs
//! the workload with the same parameters (scaled to laptop size where the
//! original used a supercomputer), returns typed rows, and can print them in
//! the paper's layout. The `repro` binary dispatches them; Criterion benches
//! under `benches/` measure the real kernels behind each experiment.
//!
//! Paper-vs-measured correspondence is recorded in `EXPERIMENTS.md`; shape
//! criteria (who wins, where the crossovers fall) are asserted in
//! `tests/shape_checks.rs`.

pub mod experiments;
pub mod pool;
pub mod support;
