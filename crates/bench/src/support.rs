//! Table printing, correlation helpers, and JSON artifact output shared by
//! the experiment runners.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// A printable, alignable text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(ncols) {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[c] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0 for degenerate inputs (length < 2 or zero variance).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series lengths differ");
    let n = x.len() as f64;
    if x.len() < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Directory where `repro` writes JSON artifacts (`results/` under the
/// workspace root, honouring `OCELOT_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("OCELOT_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).unwrap_or(manifest).join("results")
}

/// Writes an experiment's rows as pretty JSON under `results/<name>.json`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_artifact(name: &str, rows: &impl Serialize) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(rows).expect("experiment rows serialize");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Formats seconds compactly (`12.3s`, `4m32s`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 120.0 {
        format!("{}m{:02.0}s", (s / 60.0) as u64, s % 60.0)
    } else if s >= 10.0 {
        format!("{s:.0}s")
    } else {
        format!("{s:.2}s")
    }
}

/// Formats bytes/second with binary-ish units matching the paper (MB/s,
/// GB/s as powers of ten).
pub fn fmt_speed(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2}GB/s", bps / 1e9)
    } else {
        format!("{:.0}MB/s", bps / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(300.0), "5m00s");
        assert_eq!(fmt_secs(42.0), "42s");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_speed(2.5e9), "2.50GB/s");
        assert_eq!(fmt_speed(870.0e6), "870MB/s");
    }

    #[test]
    fn artifacts_round_trip() {
        std::env::set_var("OCELOT_RESULTS_DIR", std::env::temp_dir().join("ocelot_results_test"));
        let path = write_artifact("unit_test", &[1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains('2'));
        std::fs::remove_file(path).ok();
        std::env::remove_var("OCELOT_RESULTS_DIR");
    }
}
