//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment>...   run specific experiments (table1, fig4, …)
//! repro all               run everything, in paper order
//! repro list              list experiment ids
//! ```
//!
//! Each experiment prints its rows and writes a JSON artifact under
//! `results/`.

use ocelot_bench::experiments::{self, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    if args.iter().any(|a| a == "list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> =
        if args.iter().any(|a| a == "all") { ALL_IDS.to_vec() } else { args.iter().map(String::as_str).collect() };
    for id in ids {
        let started = std::time::Instant::now();
        match id {
            "table1" => experiments::table1::print(),
            "table2" => experiments::table2::print(),
            "fig4" => experiments::fig4::print(),
            "fig5" => experiments::fig5::print(),
            "fig6" => experiments::fig6::print(),
            "fig7" | "fig8" => experiments::fig78::print(),
            "fig9" => experiments::fig9::print(),
            "fig10" => experiments::fig10::print(),
            "fig12" => experiments::fig12::print(),
            "fig13" => experiments::fig13::print(),
            "fig14" => experiments::fig14::print(),
            "fig15" => experiments::fig15::print(),
            "table5" => experiments::table5::print(),
            "table6" | "table7" => experiments::table67::print(),
            "table8" => {
                experiments::table8::print();
                experiments::table8::print_fig16();
            }
            "fig16" => experiments::table8::print_fig16(),
            "ablations" => experiments::ablations::print(),
            "extensions" => experiments::extensions::print(),
            other => {
                eprintln!("unknown experiment '{other}' — run `repro list`");
                std::process::exit(2);
            }
        }
        ocelot_obs::info!("repro", "{id} done in {:.1}s", started.elapsed().as_secs_f64());
    }
}

fn usage() {
    eprintln!("usage: repro <experiment>... | all | list");
    eprintln!("experiments: {}", ALL_IDS.join(", "));
}
