//! Leveled diagnostic logging with a process-wide verbosity gate.
//!
//! Progress and debug chatter across the workspace routes through here
//! instead of raw `eprintln!`, so one knob (`OCELOT_LOG` or
//! [`set_verbosity`]) silences or amplifies everything. Final experiment
//! tables remain on stdout, untouched by this gate.
//!
//! The default level is [`Level::Info`], which preserves the CLI's existing
//! progress output; `OCELOT_LOG=warn` (or `error`, `debug`, `trace`, `off`)
//! overrides it.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Degraded but continuing (retries, fallbacks).
    Warn = 2,
    /// Progress milestones a CLI user wants by default.
    Info = 3,
    /// Per-stage diagnostics.
    Debug = 4,
    /// Per-item firehose.
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }

    /// Parses `error|warn|info|debug|trace|off` (case-insensitive);
    /// `off`/`none`/`0` yields `None`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            "off" | "none" | "0" => Some(None),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// 0 = off; otherwise the max enabled `Level as u8`.
static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Info as u8);
static INIT: Once = Once::new();

fn init_from_env() {
    INIT.call_once(|| {
        if let Ok(v) = std::env::var("OCELOT_LOG") {
            if let Some(parsed) = Level::parse(&v) {
                VERBOSITY.store(parsed.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
            }
        }
    });
}

/// Sets the gate explicitly (`None` disables all logging). Overrides
/// `OCELOT_LOG`.
pub fn set_verbosity(level: Option<Level>) {
    init_from_env(); // consume the env once so it can't override us later
    VERBOSITY.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// Current gate (`None` = all logging off).
pub fn verbosity() -> Option<Level> {
    init_from_env();
    Level::from_u8(VERBOSITY.load(Ordering::Relaxed))
}

/// True when messages at `level` pass the gate.
pub fn enabled(level: Level) -> bool {
    verbosity().is_some_and(|max| level <= max)
}

/// Writes one gated line to stderr. Prefer the [`error!`](crate::error),
/// [`warn!`](crate::warn), [`info!`](crate::info), [`debug!`](crate::debug),
/// and [`trace!`](crate::trace) macros, which skip argument formatting when
/// the gate is closed.
///
/// Records that pass the gate are also mirrored into the global flight ring
/// (when one is installed), so post-mortem dumps carry the log lines that
/// surrounded a failure. A record arriving mid-snapshot is counted in the
/// ring's drop counter rather than vanishing silently.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if enabled(level) {
        let message = args.to_string();
        eprintln!("[{:5} {target}] {message}", level.tag());
        let obs = crate::global();
        if let Some(flight) = obs.flight() {
            flight.record(None, crate::flight::FlightKind::Log { level, target: target.to_string(), message });
        }
    }
}

/// Logs at [`Level::Error`]: `obs::error!("target", "context: {e}")`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Trace) {
            $crate::log::log($crate::log::Level::Trace, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_gate() {
        assert_eq!(Level::parse("DEBUG"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("bogus"), None);

        set_verbosity(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_verbosity(None);
        assert!(!enabled(Level::Error));
        set_verbosity(Some(Level::Info));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }
}
