//! ocelot-obs: zero-dependency observability for the ocelot pipeline.
//!
//! Six pieces, one handle:
//!
//! - [`span::Recorder`] — nested stage spans on both the wall clock (real
//!   compression work) and the simulated clock (queueing, transfer,
//!   backoff), per job and per lane.
//! - [`metrics::Registry`] — named counters, gauges, and log-bucketed
//!   mergeable histograms with lock-free hot-path increments and per-bucket
//!   exemplars.
//! - [`export`] — Prometheus text exposition, JSON metrics, and Chrome
//!   `trace_event` JSON for `chrome://tracing` / Perfetto.
//! - [`critpath`] — critical-path analysis over sim-span trees with
//!   per-stage attribution ([`critpath::BottleneckReport`]).
//! - [`flight`] — an always-on bounded ring of recent structured events,
//!   snapshotted on failure for post-mortem dumps.
//! - [`slo`] — declarative burn-rate SLO rules evaluated incrementally
//!   against the registry, emitting typed [`slo::Alert`]s.
//! - [`prof`] — continuous kernel-level profiling: scoped probes on worker
//!   threads draining into lock-free epoch-tagged per-thread rings, with a
//!   measured self-overhead gauge and collapsed-stack ("folded") export.
//! - [`ledger`] — chunk-lifecycle event ledger: causal wide events per
//!   chunk (compressed → released → in-flight → arrived → decoded) in
//!   bounded per-thread sinks, replayable into per-chunk Gantt timelines.
//!
//! An [`Obs`] is a cheap-clone handle that is either *enabled* (wraps an
//! `Arc` of registry + recorder) or *disabled* (every call is a no-op).
//! Library crates that take no explicit handle read the process-wide one
//! via [`global()`]; binaries opt in with [`install_global`]. The default
//! global is disabled, so instrumented code costs one `RwLock` read per
//! *stage* (not per item) when observability is off.
//!
//! Metric names follow `ocelot_<crate>_<name>` with Prometheus unit
//! suffixes (`_seconds`, `_bytes`, `_total`); span names are dotted stage
//! paths (`compress.quantize`, `svc.retry`).

pub mod critpath;
pub mod export;
pub mod flight;
pub mod ledger;
pub mod log;
pub mod metrics;
pub mod prof;
pub mod slo;
pub mod span;

use flight::{FlightKind, FlightRecorder, FlightSnapshot};
use metrics::{Counter, Gauge, Histogram, Registry};
use span::{Recorder, WallSpanGuard};
use std::sync::{Arc, OnceLock, RwLock};

/// Registry counter mirroring [`FlightRecorder::dropped`]; synced on every
/// snapshot so exports surface drops even if no one polls the ring directly.
pub const FLIGHT_DROPPED_COUNTER: &str = "ocelot_obs_flight_dropped_total";

#[derive(Debug)]
struct ObsInner {
    registry: Registry,
    recorder: Recorder,
    flight: Arc<FlightRecorder>,
}

impl ObsInner {
    fn with_flight_capacity(capacity: usize) -> Self {
        let flight = Arc::new(FlightRecorder::new(capacity));
        ObsInner { registry: Registry::new(), recorder: Recorder::new().with_flight(flight.clone()), flight }
    }
}

/// Cheap-clone observability handle; disabled handles no-op everywhere.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A fresh enabled handle with its own registry, recorder, and flight
    /// ring (default capacity).
    pub fn enabled() -> Self {
        Obs::with_flight_capacity(flight::DEFAULT_CAPACITY)
    }

    /// Enabled handle whose flight ring holds `capacity` events.
    pub fn with_flight_capacity(capacity: usize) -> Self {
        Obs { inner: Some(Arc::new(ObsInner::with_flight_capacity(capacity))) }
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// The span recorder, if enabled.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.as_deref().map(|i| &i.recorder)
    }

    /// The always-on flight ring, if enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.inner.as_deref().map(|i| &*i.flight)
    }

    /// Snapshots the flight ring and syncs the
    /// [`FLIGHT_DROPPED_COUNTER`] registry counter to the ring's cumulative
    /// drop count (`None` when disabled).
    pub fn flight_snapshot(&self) -> Option<FlightSnapshot> {
        let i = self.inner.as_deref()?;
        let snap = i.flight.snapshot();
        let c = i.registry.counter(FLIGHT_DROPPED_COUNTER, "flight-ring events dropped during snapshots");
        let seen = c.get();
        if snap.dropped > seen {
            c.add(snap.dropped - seen);
        }
        Some(snap)
    }

    /// Records a labeled state-transition breadcrumb (simulated seconds) into
    /// the flight ring.
    pub fn flight_state(&self, job: Option<u64>, label: &str, t_s: f64) {
        if let Some(i) = &self.inner {
            i.flight.record(job, FlightKind::State { label: label.to_string(), t_s });
        }
    }

    /// Adds `n` to counter `name` (registered with `help` on first use).
    pub fn add(&self, name: &str, help: &str, n: u64) {
        if let Some(i) = &self.inner {
            i.registry.counter(name, help).add(n);
            i.flight.record(None, FlightKind::Counter { name: name.to_string(), delta: n });
        }
    }

    /// Adds one to counter `name`.
    pub fn inc(&self, name: &str, help: &str) {
        self.add(name, help, 1);
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, help: &str, v: f64) {
        if let Some(i) = &self.inner {
            i.registry.gauge(name, help).set(v);
        }
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&self, name: &str, help: &str, v: f64) {
        if let Some(i) = &self.inner {
            i.registry.histogram(name, help).observe(v);
        }
    }

    /// Cached counter handle for hot paths (`None` when disabled).
    pub fn counter_handle(&self, name: &str, help: &str) -> Option<Arc<Counter>> {
        self.inner.as_ref().map(|i| i.registry.counter(name, help))
    }

    /// Cached gauge handle for hot paths.
    pub fn gauge_handle(&self, name: &str, help: &str) -> Option<Arc<Gauge>> {
        self.inner.as_ref().map(|i| i.registry.gauge(name, help))
    }

    /// Cached histogram handle for hot paths.
    pub fn histogram_handle(&self, name: &str, help: &str) -> Option<Arc<Histogram>> {
        self.inner.as_ref().map(|i| i.registry.histogram(name, help))
    }

    /// Opens a wall-clock span (no-op guard when disabled).
    pub fn wall_span(&self, name: &str, job: Option<u64>, lane: u32) -> ObsSpanGuard<'_> {
        ObsSpanGuard { _guard: self.recorder().map(|r| r.wall_span(name, job, lane)) }
    }

    /// Records a root simulated-clock span; returns its id (0 when
    /// disabled — safe to pass back to [`Obs::sim_child`], which no-ops).
    pub fn sim_span(&self, name: &str, job: Option<u64>, lane: u32, start_s: f64, end_s: f64) -> u64 {
        self.recorder().map(|r| r.sim_span(name, job, lane, start_s, end_s)).unwrap_or(0)
    }

    /// Records a simulated-clock span under `parent`; returns its id.
    pub fn sim_child(&self, parent: u64, name: &str, job: Option<u64>, lane: u32, start_s: f64, end_s: f64) -> u64 {
        self.recorder().map(|r| r.sim_child(parent, name, job, lane, start_s, end_s)).unwrap_or(0)
    }
}

/// RAII wall-span guard that may be a no-op (disabled handle).
#[derive(Debug)]
pub struct ObsSpanGuard<'r> {
    _guard: Option<WallSpanGuard<'r>>,
}

static GLOBAL: OnceLock<RwLock<Obs>> = OnceLock::new();

fn global_cell() -> &'static RwLock<Obs> {
    GLOBAL.get_or_init(|| RwLock::new(Obs::disabled()))
}

/// Installs `obs` as the process-wide handle read by [`global()`].
/// Re-installable (unlike a `OnceLock`) so tests can swap in fresh handles.
pub fn install_global(obs: &Obs) {
    *global_cell().write().expect("obs global poisoned") = obs.clone();
}

/// The process-wide handle; disabled until [`install_global`] is called.
pub fn global() -> Obs {
    global_cell().read().expect("obs global poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.inc("ocelot_test_x_total", "x");
        obs.observe("ocelot_test_h_seconds", "h", 1.0);
        let id = obs.sim_span("pipeline", None, 0, 0.0, 1.0);
        obs.sim_child(id, "stage", None, 0, 0.0, 1.0);
        {
            let _g = obs.wall_span("w", None, 0);
        }
        assert!(!obs.is_enabled());
        assert!(obs.registry().is_none());
        assert!(obs.counter_handle("ocelot_test_x_total", "x").is_none());
    }

    #[test]
    fn enabled_handle_records() {
        let obs = Obs::enabled();
        obs.inc("ocelot_test_jobs_total", "jobs");
        obs.add("ocelot_test_jobs_total", "jobs", 2);
        obs.observe("ocelot_test_lat_seconds", "lat", 0.25);
        obs.set_gauge("ocelot_test_depth", "depth", 4.0);
        let id = obs.sim_span("pipeline", Some(1), 0, 0.0, 2.0);
        obs.sim_child(id, "transfer", Some(1), 0, 0.0, 2.0);
        {
            let _g = obs.wall_span("compress.real", Some(1), 0);
        }
        let reg = obs.registry().unwrap();
        assert_eq!(reg.counter("ocelot_test_jobs_total", "").get(), 3);
        assert_eq!(reg.histogram("ocelot_test_lat_seconds", "").count(), 1);
        let rec = obs.recorder().unwrap();
        assert_eq!(rec.spans().len(), 3);
        assert!(rec.validate(1).is_empty());
        // Clones share state.
        obs.clone().inc("ocelot_test_jobs_total", "");
        assert_eq!(reg.counter("ocelot_test_jobs_total", "").get(), 4);
    }

    #[test]
    fn enabled_handle_feeds_the_flight_ring() {
        let obs = Obs::with_flight_capacity(64);
        obs.add("ocelot_test_flight_total", "f", 2);
        obs.flight_state(Some(9), "admitted", 1.5);
        let id = obs.sim_span("pipeline", Some(9), 0, 0.0, 2.0);
        obs.sim_child(id, "transfer", Some(9), 0, 0.0, 2.0);
        {
            let _g = obs.wall_span("compress.real", Some(9), 0);
        }
        let snap = obs.flight_snapshot().unwrap();
        assert_eq!(snap.dropped, 0);
        let kinds: Vec<&'static str> = snap
            .events
            .iter()
            .map(|e| match e.kind {
                FlightKind::Log { .. } => "log",
                FlightKind::SpanOpen { .. } => "open",
                FlightKind::SpanClose { .. } => "close",
                FlightKind::Counter { .. } => "counter",
                FlightKind::State { .. } => "state",
            })
            .collect();
        assert!(kinds.contains(&"counter"));
        assert!(kinds.contains(&"state"));
        assert!(kinds.contains(&"open"));
        assert!(kinds.iter().filter(|k| **k == "close").count() >= 3);
        // The dropped counter is mirrored into the registry.
        assert_eq!(obs.registry().unwrap().counter(FLIGHT_DROPPED_COUNTER, "").get(), 0);
        assert!(obs.flight().unwrap().recorded() >= snap.events.len() as u64);
        // Disabled handles expose no ring.
        assert!(Obs::disabled().flight().is_none());
        assert!(Obs::disabled().flight_snapshot().is_none());
    }

    #[test]
    fn global_is_reinstallable() {
        let a = Obs::enabled();
        install_global(&a);
        global().inc("ocelot_test_g_total", "g");
        assert_eq!(a.registry().unwrap().counter("ocelot_test_g_total", "").get(), 1);
        let b = Obs::enabled();
        install_global(&b);
        global().inc("ocelot_test_g_total", "g");
        assert_eq!(a.registry().unwrap().counter("ocelot_test_g_total", "").get(), 1);
        assert_eq!(b.registry().unwrap().counter("ocelot_test_g_total", "").get(), 1);
        install_global(&Obs::disabled());
        assert!(!global().is_enabled());
    }
}
