//! Metrics primitives: counters, gauges, log-bucketed histograms, and the
//! name-keyed [`Registry`] that owns them.
//!
//! Increment paths are lock-free: counters and histogram buckets are plain
//! atomics, and gauges store `f64` bits in an atomic word. Only
//! *registration* (the first lookup of a name) takes the registry's write
//! lock; callers on genuinely hot paths should cache the returned `Arc`.
//!
//! Histograms are HDR-style: geometric buckets with [`SUB_BUCKETS`]
//! subdivisions per power of two, so any recorded value is attributed to a
//! bucket whose bounds are within a factor of `2^(1/SUB_BUCKETS)` (< 10 %)
//! of the true value. Two histograms [`Histogram::merge`] by adding bucket
//! counts, which makes per-thread histograms exactly poolable.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds to the value (CAS loop; gauges are not hot-path metrics).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-buckets per power of two: relative bucket width `2^(1/8) ≈ 1.0905`.
pub const SUB_BUCKETS: usize = 8;
/// Smallest distinguishable value; anything at or below lands in bucket 0.
pub const MIN_TRACKED: f64 = 1e-9;
/// Geometric buckets covering `[MIN_TRACKED, MIN_TRACKED × 2^(N/SUB)]`;
/// 576/8 = 72 octaves reaches ~4.7e12, enough for seconds and byte counts.
pub const N_BUCKETS: usize = 577;

/// Log-bucketed histogram with lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits (CAS-added).
    sum_bits: AtomicU64,
    /// Last `(job, value)` observed per bucket, so a p99 outlier can be
    /// traced to a concrete job. Side table off the lock-free path:
    /// only `observe_exemplar` (per-job, cold) touches it.
    exemplars: Mutex<HashMap<usize, (u64, f64)>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            exemplars: Mutex::new(HashMap::new()),
        }
    }

    /// Bucket index for a value. Non-finite and tiny values go to bucket 0,
    /// values beyond the tracked range to the last bucket.
    pub fn bucket_index(v: f64) -> usize {
        if !v.is_finite() || v <= MIN_TRACKED {
            return 0;
        }
        let i = ((v / MIN_TRACKED).log2() * SUB_BUCKETS as f64).floor() as isize + 1;
        i.clamp(1, (N_BUCKETS - 1) as isize) as usize
    }

    /// Upper bound of bucket `i`: bucket `i > 0` covers
    /// `(MIN·2^((i-1)/SUB), MIN·2^(i/SUB)]`; the last bucket is overflow
    /// (`+inf`), bucket 0 covers everything at or below [`MIN_TRACKED`].
    pub fn bucket_upper(i: usize) -> f64 {
        if i + 1 >= N_BUCKETS {
            f64::INFINITY
        } else {
            MIN_TRACKED * 2f64.powf(i as f64 / SUB_BUCKETS as f64)
        }
    }

    /// Representative value of bucket `i` (geometric midpoint of its bounds).
    pub fn bucket_mid(i: usize) -> f64 {
        if i == 0 {
            return MIN_TRACKED;
        }
        if i + 1 >= N_BUCKETS {
            return MIN_TRACKED * 2f64.powf((N_BUCKETS - 1) as f64 / SUB_BUCKETS as f64);
        }
        MIN_TRACKED * 2f64.powf((i as f64 - 0.5) / SUB_BUCKETS as f64)
    }

    /// Records one value.
    pub fn observe(&self, v: f64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let add = if v.is_finite() { v } else { 0.0 };
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one value and remembers `(job, v)` as its bucket's exemplar,
    /// so exported percentiles can point at a concrete job.
    pub fn observe_exemplar(&self, v: f64, job: u64) {
        self.observe(v);
        self.exemplars.lock().expect("exemplar table poisoned").insert(Self::bucket_index(v), (job, v));
    }

    /// Last `(job, value)` observed in bucket `i`, if any.
    pub fn exemplar(&self, i: usize) -> Option<(u64, f64)> {
        self.exemplars.lock().expect("exemplar table poisoned").get(&i).copied()
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Adds every bucket of `other` into `self` (per-thread histograms pool
    /// exactly: merged percentiles equal pooled percentiles).
    pub fn merge(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(&other.buckets) {
            let n = o.load(Ordering::Relaxed);
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        {
            // "Last observed" semantics: the merged-in histogram is the
            // newer source, so its exemplars win on collision.
            let theirs = other.exemplars.lock().expect("exemplar table poisoned").clone();
            self.exemplars.lock().expect("exemplar table poisoned").extend(theirs);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        let add = other.sum();
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`), reported as the geometric
    /// midpoint of the selected bucket — within a relative factor of
    /// `2^(1/SUB_BUCKETS)` of the exact order statistic. Returns 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]");
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_mid(i);
            }
        }
        Self::bucket_mid(N_BUCKETS - 1)
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs, ending
    /// with the `+inf` bucket (always present so `le="+Inf"` equals the
    /// count even for empty histograms).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        self.cumulative_buckets_indexed().into_iter().map(|(_, le, cum)| (le, cum)).collect()
    }

    /// Like [`Histogram::cumulative_buckets`] but with each entry's bucket
    /// index, for exemplar lookups alongside the bounds.
    pub fn cumulative_buckets_indexed(&self) -> Vec<(usize, f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((i, Self::bucket_upper(i), cum));
            }
        }
        if out.last().is_none_or(|&(_, le, _)| le.is_finite()) {
            out.push((N_BUCKETS - 1, f64::INFINITY, cum));
        }
        out
    }

    /// A snapshot of the raw per-bucket counts (length [`N_BUCKETS`]), used
    /// by the SLO engine to diff windows.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// What kind of metric a registry entry is.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Point-in-time gauge.
    Gauge(Arc<Gauge>),
    /// Distribution histogram.
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct Entry {
    metric: Metric,
    help: String,
}

/// Name-keyed metric registry. Names follow `ocelot_<crate>_<name>` with
/// Prometheus unit suffixes (`_seconds`, `_bytes`, `_total`).
#[derive(Debug, Default)]
pub struct Registry {
    entries: RwLock<BTreeMap<String, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter `name`, registering it (with `help`) on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        if let Some(e) = self.entries.read().expect("registry poisoned").get(name) {
            match &e.metric {
                Metric::Counter(c) => return c.clone(),
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let mut entries = self.entries.write().expect("registry poisoned");
        let entry = entries
            .entry(name.to_string())
            .or_insert_with(|| Entry { metric: Metric::Counter(Arc::new(Counter::new())), help: help.to_string() });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Returns the gauge `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        if let Some(e) = self.entries.read().expect("registry poisoned").get(name) {
            match &e.metric {
                Metric::Gauge(g) => return g.clone(),
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let mut entries = self.entries.write().expect("registry poisoned");
        let entry = entries
            .entry(name.to_string())
            .or_insert_with(|| Entry { metric: Metric::Gauge(Arc::new(Gauge::new())), help: help.to_string() });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Returns the histogram `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        if let Some(e) = self.entries.read().expect("registry poisoned").get(name) {
            match &e.metric {
                Metric::Histogram(h) => return h.clone(),
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let mut entries = self.entries.write().expect("registry poisoned");
        let entry = entries
            .entry(name.to_string())
            .or_insert_with(|| Entry { metric: Metric::Histogram(Arc::new(Histogram::new())), help: help.to_string() });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// All entries as `(name, help, metric)` in name order.
    pub fn snapshot(&self) -> Vec<(String, String, Metric)> {
        self.entries
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(name, e)| (name.clone(), e.help.clone(), e.metric.clone()))
            .collect()
    }

    /// Looks up one metric by name.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.entries.read().expect("registry poisoned").get(name).map(|e| e.metric.clone())
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("ocelot_test_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("ocelot_test_total", "ignored dup help").get(), 5);
        let g = r.gauge("ocelot_test_depth", "test gauge");
        g.set(3.5);
        g.add(-1.0);
        assert!((g.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_cover() {
        let mut prev = 0.0;
        for i in 0..N_BUCKETS {
            let u = Histogram::bucket_upper(i);
            assert!(u > prev, "bucket {i}");
            prev = if u.is_finite() { u } else { prev };
        }
        // Every positive value maps to a bucket whose bounds contain it.
        for v in [1e-9, 3.7e-4, 0.5, 1.0, 17.3, 9.9e8, 4.0e12, 1e30] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper(i), "v={v} i={i}");
            if i > 0 && i < N_BUCKETS - 1 {
                assert!(v >= Histogram::bucket_upper(i - 1) * 0.999999, "v={v} i={i}");
            }
        }
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-5.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
    }

    #[test]
    fn histogram_percentiles_are_close() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500_500.0).abs() < 1e-6);
        let tol = 2f64.powf(1.0 / SUB_BUCKETS as f64);
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (1.0, 1000.0)] {
            let p = h.percentile(q);
            assert!(p / exact <= tol && exact / p <= tol, "q={q} p={p} exact={exact}");
        }
        assert_eq!(Histogram::new().percentile(0.5), 0.0);
    }

    #[test]
    fn merge_equals_pooled() {
        let a = Histogram::new();
        let b = Histogram::new();
        let pooled = Histogram::new();
        for i in 0..500 {
            let v = (i as f64 * 0.77).exp() % 1e6 + 1e-6;
            if i % 2 == 0 { &a } else { &b }.observe(v);
            pooled.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        assert!((a.sum() - pooled.sum()).abs() < 1e-6 * pooled.sum().abs().max(1.0));
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), pooled.percentile(q), "q={q}");
        }
    }

    #[test]
    fn cumulative_buckets_end_with_inf() {
        let h = Histogram::new();
        assert_eq!(h.cumulative_buckets(), vec![(f64::INFINITY, 0)]);
        h.observe(1.0);
        h.observe(2.0);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 2);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn exemplars_remember_the_last_job_per_bucket() {
        let h = Histogram::new();
        h.observe_exemplar(0.5, 11);
        h.observe_exemplar(0.5, 12); // same bucket, newer job wins
        h.observe_exemplar(100.0, 13);
        h.observe(0.5); // plain observe leaves exemplars untouched
        let slow = Histogram::bucket_index(100.0);
        assert_eq!(h.exemplar(slow), Some((13, 100.0)));
        assert_eq!(h.exemplar(Histogram::bucket_index(0.5)), Some((12, 0.5)));
        assert_eq!(h.exemplar(0), None);
        assert_eq!(h.count(), 4);

        // Merging pulls the other histogram's exemplars across.
        let pooled = Histogram::new();
        pooled.observe_exemplar(100.0, 7);
        pooled.merge(&h);
        assert_eq!(pooled.exemplar(slow), Some((13, 100.0)), "merged-in exemplar wins");
    }

    #[test]
    fn indexed_buckets_align_with_plain_buckets() {
        let h = Histogram::new();
        h.observe(1.0);
        h.observe(2.0);
        let plain = h.cumulative_buckets();
        let indexed = h.cumulative_buckets_indexed();
        assert_eq!(plain.len(), indexed.len());
        for ((le, cum), (i, ile, icum)) in plain.iter().zip(&indexed) {
            assert_eq!((*le, *cum), (*ile, *icum));
            assert_eq!(Histogram::bucket_upper(*i), *ile);
        }
        assert_eq!(h.bucket_counts().len(), N_BUCKETS);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("ocelot_test_x", "");
        r.gauge("ocelot_test_x", "");
    }
}
