//! Span recorder: nested stage timings on two clocks.
//!
//! The pipeline runs on a two-layer time model — real compression work is
//! measured on the **wall clock**, while queueing, transfer, and backoff are
//! **simulated** seconds derived deterministically from seeds. A
//! [`SpanRecord`] therefore carries a [`Clock`] tag, and both kinds share
//! one id space so sim spans can parent wall spans and vice versa.
//!
//! Wall spans use RAII guards ([`Recorder::wall_span`]) and nest via a
//! per-thread stack, so orphan closes are impossible by construction. Sim
//! spans are emitted with explicit `[start_s, end_s]` bounds
//! ([`Recorder::sim_span`] / [`Recorder::sim_child`]) because simulated
//! timelines are computed, not lived through.

use crate::flight::{FlightKind, FlightRecorder};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which timeline a span's timestamps live on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Real elapsed time, microseconds since the recorder's epoch.
    Wall,
    /// Simulated pipeline time, microseconds since sim t=0.
    Sim,
}

/// One closed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (shared space across both clocks).
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Dotted stage name, e.g. `"compress.quantize"`.
    pub name: String,
    /// Job the span belongs to (`None` for jobless work such as profiling).
    pub job: Option<u64>,
    /// Display lane; maps to `tid` in Chrome traces so overlapping
    /// timelines (e.g. overlapped compress vs. transfer) render side by side.
    pub lane: u32,
    /// Which clock `start_us`/`end_us` are on.
    pub clock: Clock,
    /// Start, microseconds.
    pub start_us: u64,
    /// End, microseconds.
    pub end_us: u64,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_us.saturating_sub(self.start_us)) as f64 / 1e6
    }
}

thread_local! {
    static WALL_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Collects closed spans. Cheap to share behind an `Arc`; recording takes a
/// short mutex only when a span *closes* (stage granularity, not per-item).
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    next_id: AtomicU64,
    closed: Mutex<Vec<SpanRecord>>,
    open_wall: AtomicU64,
    /// Optional flight-recorder sink mirroring span opens/closes.
    flight: Option<Arc<FlightRecorder>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates a recorder whose wall epoch is "now".
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            closed: Mutex::new(Vec::new()),
            open_wall: AtomicU64::new(0),
            flight: None,
        }
    }

    /// Mirrors span opens/closes into `flight` for post-mortem dumps.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a wall-clock span; it closes (and is recorded) when the guard
    /// drops. Nesting follows the thread's guard stack.
    pub fn wall_span<'r>(&'r self, name: &str, job: Option<u64>, lane: u32) -> WallSpanGuard<'r> {
        let id = self.alloc_id();
        let parent = WALL_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        self.open_wall.fetch_add(1, Ordering::Relaxed);
        if let Some(flight) = &self.flight {
            flight.record(job, FlightKind::SpanOpen { name: name.to_string(), lane });
        }
        WallSpanGuard {
            recorder: self,
            record: Some(SpanRecord {
                id,
                parent,
                name: name.to_string(),
                job,
                lane,
                clock: Clock::Wall,
                start_us: self.now_us(),
                end_us: 0,
            }),
        }
    }

    /// Records a root simulated-clock span over `[start_s, end_s]` and
    /// returns its id for use as a parent.
    pub fn sim_span(&self, name: &str, job: Option<u64>, lane: u32, start_s: f64, end_s: f64) -> u64 {
        self.record_sim(name, None, job, lane, start_s, end_s)
    }

    /// Records a simulated-clock span nested under `parent`.
    pub fn sim_child(&self, parent: u64, name: &str, job: Option<u64>, lane: u32, start_s: f64, end_s: f64) -> u64 {
        self.record_sim(name, Some(parent), job, lane, start_s, end_s)
    }

    fn record_sim(
        &self,
        name: &str,
        parent: Option<u64>,
        job: Option<u64>,
        lane: u32,
        start_s: f64,
        end_s: f64,
    ) -> u64 {
        let id = self.alloc_id();
        let start_us = (start_s.max(0.0) * 1e6).round() as u64;
        let end_us = (end_s.max(0.0) * 1e6).round() as u64;
        let record = SpanRecord {
            id,
            parent,
            name: name.to_string(),
            job,
            lane,
            clock: Clock::Sim,
            start_us,
            end_us: end_us.max(start_us),
        };
        self.mirror_close(&record);
        self.closed.lock().expect("recorder poisoned").push(record);
        id
    }

    fn close(&self, mut record: SpanRecord) {
        record.end_us = self.now_us().max(record.start_us);
        WALL_STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.last().copied(), Some(record.id), "wall spans must close LIFO");
            s.retain(|&id| id != record.id);
        });
        self.open_wall.fetch_sub(1, Ordering::Relaxed);
        self.mirror_close(&record);
        self.closed.lock().expect("recorder poisoned").push(record);
    }

    fn mirror_close(&self, record: &SpanRecord) {
        if let Some(flight) = &self.flight {
            flight.record(
                record.job,
                FlightKind::SpanClose {
                    name: record.name.clone(),
                    clock: record.clock,
                    lane: record.lane,
                    start_us: record.start_us,
                    end_us: record.end_us,
                },
            );
        }
    }

    /// Number of wall spans currently open (should be 0 at export time).
    pub fn open_spans(&self) -> u64 {
        self.open_wall.load(Ordering::Relaxed)
    }

    /// Snapshot of all closed spans so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.closed.lock().expect("recorder poisoned").clone()
    }

    /// Closed spans belonging to `job`.
    pub fn for_job(&self, job: u64) -> Vec<SpanRecord> {
        self.closed.lock().expect("recorder poisoned").iter().filter(|s| s.job == Some(job)).cloned().collect()
    }

    /// Checks structural invariants over the closed spans: parents exist and
    /// share the child's clock, children lie within parent bounds (±`eps_us`
    /// for rounding), and no wall span is still open. Returns a list of
    /// violations (empty = valid).
    pub fn validate(&self, eps_us: u64) -> Vec<String> {
        let spans = self.spans();
        let mut errors = Vec::new();
        if self.open_spans() != 0 {
            errors.push(format!("{} wall span(s) still open", self.open_spans()));
        }
        let by_id: std::collections::HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
        for s in &spans {
            if s.end_us < s.start_us {
                errors.push(format!("span {} '{}' ends before it starts", s.id, s.name));
            }
            let Some(pid) = s.parent else { continue };
            let Some(p) = by_id.get(&pid) else {
                errors.push(format!("span {} '{}' has unknown parent {}", s.id, s.name, pid));
                continue;
            };
            if p.clock != s.clock {
                errors.push(format!("span {} '{}' crosses clocks with parent '{}'", s.id, s.name, p.name));
            }
            if s.start_us + eps_us < p.start_us || s.end_us > p.end_us + eps_us {
                errors.push(format!(
                    "span {} '{}' [{}, {}]us escapes parent '{}' [{}, {}]us",
                    s.id, s.name, s.start_us, s.end_us, p.name, p.start_us, p.end_us
                ));
            }
        }
        errors
    }
}

/// RAII guard for a wall-clock span; records the span on drop.
#[derive(Debug)]
pub struct WallSpanGuard<'r> {
    recorder: &'r Recorder,
    record: Option<SpanRecord>,
}

impl WallSpanGuard<'_> {
    /// Id of the span being recorded (usable as a sim-span parent only after
    /// the guard drops, since clocks must match; exposed for labeling).
    pub fn id(&self) -> u64 {
        self.record.as_ref().map(|r| r.id).unwrap_or(0)
    }
}

impl Drop for WallSpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(record) = self.record.take() {
            self.recorder.close(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_spans_nest_by_guard_stack() {
        let r = Recorder::new();
        {
            let _outer = r.wall_span("outer", Some(1), 0);
            {
                let _inner = r.wall_span("inner", Some(1), 0);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(r.validate(0).is_empty(), "{:?}", r.validate(0));
        assert!(inner.duration_s() > 0.0);
    }

    #[test]
    fn sim_spans_carry_explicit_bounds() {
        let r = Recorder::new();
        let root = r.sim_span("pipeline", Some(7), 0, 0.0, 10.0);
        r.sim_child(root, "compress", Some(7), 0, 0.0, 4.0);
        r.sim_child(root, "transfer", Some(7), 0, 4.0, 10.0);
        assert!(r.validate(1).is_empty(), "{:?}", r.validate(1));
        let spans = r.for_job(7);
        assert_eq!(spans.len(), 3);
        let total: f64 = spans.iter().filter(|s| s.parent.is_some()).map(|s| s.duration_s()).sum();
        assert!((total - 10.0).abs() < 1e-9);
        assert!(r.for_job(8).is_empty());
    }

    #[test]
    fn validate_catches_escaping_child() {
        let r = Recorder::new();
        let root = r.sim_span("pipeline", None, 0, 1.0, 2.0);
        r.sim_child(root, "rogue", None, 0, 0.5, 3.0);
        let errs = r.validate(0);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("escapes parent"));
    }

    #[test]
    fn validate_catches_open_span() {
        let r = Recorder::new();
        let guard = r.wall_span("never_closed", None, 0);
        let errs = r.validate(0);
        assert!(errs.iter().any(|e| e.contains("still open")), "{errs:?}");
        drop(guard);
        assert!(r.validate(0).is_empty());
    }
}
