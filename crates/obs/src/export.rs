//! Exporters: Prometheus text exposition, a JSON metrics dump, and a Chrome
//! `trace_event` JSON file that opens in `chrome://tracing` / Perfetto.
//!
//! The obs crate is zero-dependency, so JSON is emitted by hand; the format
//! is deliberately small (objects, arrays, strings, numbers) and the svc
//! layer re-parses exports with the workspace serde_json when validating.

use crate::metrics::{Metric, Registry};
use crate::span::{Clock, SpanRecord};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON-safe number (`NaN`/`inf` become `0`).
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // `{}` on f64 never prints exponents for typical magnitudes and always
    // round-trips; that is valid JSON as-is.
    format!("{v}")
}

/// Formats a histogram `le` bound for Prometheus (`+Inf` for the overflow
/// bucket).
fn prom_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{le:e}")
    }
}

/// Renders the registry in Prometheus text exposition format 0.0.4.
///
/// Histograms emit only their non-empty buckets (plus the mandatory `+Inf`),
/// keeping exposition size proportional to observed spread rather than the
/// ~577 internal buckets.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, help, metric) in registry.snapshot() {
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", json_num(g.get()));
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} histogram");
                for (le, cum) in h.cumulative_buckets() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", prom_le(le));
                }
                let _ = writeln!(out, "{name}_sum {}", json_num(h.sum()));
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

/// Renders the registry as a JSON document:
///
/// ```json
/// {"metrics": [
///   {"name": "...", "help": "...", "type": "counter", "value": 3},
///   {"name": "...", "help": "...", "type": "histogram",
///    "count": 9, "sum": 1.2, "p50": ..., "p90": ..., "p99": ...,
///    "buckets": [{"le": 0.5, "cumulative": 4,
///                 "exemplar": {"job": 3, "value": 0.41}}, ...]}
/// ]}
/// ```
///
/// A bucket's `exemplar` is the last `(job, value)` observed in it (present
/// only when the histogram was fed via `observe_exemplar`), so a p99
/// outlier can be traced to a concrete job.
pub fn metrics_json(registry: &Registry) -> String {
    let mut out = String::from("{\"metrics\":[");
    let mut first = true;
    for (name, help, metric) in registry.snapshot() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{{\"name\":\"{}\",\"help\":\"{}\"", json_escape(&name), json_escape(&help));
        match metric {
            Metric::Counter(c) => {
                let _ = write!(out, ",\"type\":\"counter\",\"value\":{}}}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = write!(out, ",\"type\":\"gauge\",\"value\":{}}}", json_num(g.get()));
            }
            Metric::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                    h.count(),
                    json_num(h.sum()),
                    json_num(h.percentile(0.50)),
                    json_num(h.percentile(0.90)),
                    json_num(h.percentile(0.99)),
                );
                let mut bfirst = true;
                for (i, le, cum) in h.cumulative_buckets_indexed() {
                    if !bfirst {
                        out.push(',');
                    }
                    bfirst = false;
                    if le.is_infinite() {
                        let _ = write!(out, "{{\"le\":\"+Inf\",\"cumulative\":{cum}");
                    } else {
                        let _ = write!(out, "{{\"le\":{},\"cumulative\":{cum}", json_num(le));
                    }
                    if let Some((job, value)) = h.exemplar(i) {
                        let _ = write!(out, ",\"exemplar\":{{\"job\":{job},\"value\":{}}}", json_num(value));
                    }
                    out.push('}');
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("]}");
    out
}

/// Renders spans as a Chrome `trace_event` JSON document.
///
/// Wall and sim spans live in separate Chrome *processes* (sim timestamps
/// start at pipeline t=0, wall timestamps at recorder epoch — mixing them on
/// one timeline would be misleading). Within a clock, `pid` is the job id
/// (+offset) and `tid` the span's lane, so overlapped compress/transfer
/// timelines render as parallel rows.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };

    // Metadata: name each (clock, job) process for the Perfetto sidebar.
    let mut seen: Vec<(Clock, Option<u64>)> = Vec::new();
    for s in spans {
        let key = (s.clock, s.job);
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    for (clock, job) in &seen {
        let label = match (clock, job) {
            (Clock::Sim, Some(j)) => format!("sim · job {j}"),
            (Clock::Sim, None) => "sim".to_string(),
            (Clock::Wall, Some(j)) => format!("wall · job {j}"),
            (Clock::Wall, None) => "wall".to_string(),
        };
        emit(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            pid_for(*clock, *job),
            json_escape(&label)
        ));
    }

    for s in spans {
        let cat = match s.clock {
            Clock::Wall => "wall",
            Clock::Sim => "sim",
        };
        emit(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            json_escape(&s.name),
            cat,
            s.start_us,
            s.end_us.saturating_sub(s.start_us),
            pid_for(s.clock, s.job),
            s.lane,
            s.id,
            s.parent.map_or("null".to_string(), |p| p.to_string()),
        ));
    }
    out.push_str("]}");
    out
}

/// Chrome trace `pid` for a (clock, job) pair: sim jobs keep their id (jobless
/// sim work is 0), wall processes are offset by 1e6 to avoid colliding.
fn pid_for(clock: Clock, job: Option<u64>) -> u64 {
    let base = job.map(|j| j + 1).unwrap_or(0);
    match clock {
        Clock::Sim => base,
        Clock::Wall => 1_000_000 + base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;

    #[test]
    fn prometheus_counter_gauge_histogram() {
        let r = Registry::new();
        r.counter("ocelot_test_jobs_total", "jobs").add(3);
        r.gauge("ocelot_test_queue_depth", "depth").set(2.0);
        let h = r.histogram("ocelot_test_latency_seconds", "latency");
        h.observe(0.5);
        h.observe(1.5);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE ocelot_test_jobs_total counter"));
        assert!(text.contains("ocelot_test_jobs_total 3"));
        assert!(text.contains("# TYPE ocelot_test_queue_depth gauge"));
        assert!(text.contains("# TYPE ocelot_test_latency_seconds histogram"));
        assert!(text.contains("ocelot_test_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ocelot_test_latency_seconds_count 2"));
    }

    #[test]
    fn metrics_json_is_parseable_shape() {
        let r = Registry::new();
        r.counter("ocelot_test_a_total", "with \"quotes\" and \\slash").inc();
        r.histogram("ocelot_test_h_seconds", "h").observe(1.0);
        let js = metrics_json(&r);
        assert!(js.starts_with("{\"metrics\":["));
        assert!(js.contains("\\\"quotes\\\""));
        assert!(js.contains("\"type\":\"histogram\""));
        assert!(js.contains("\"le\":\"+Inf\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(js.matches('{').count(), js.matches('}').count());
        assert_eq!(js.matches('[').count(), js.matches(']').count());
    }

    #[test]
    fn chrome_trace_contains_events_and_metadata() {
        let rec = Recorder::new();
        let root = rec.sim_span("pipeline", Some(3), 0, 0.0, 2.0);
        rec.sim_child(root, "transfer", Some(3), 0, 0.0, 2.0);
        {
            let _w = rec.wall_span("compress.real", Some(3), 0);
        }
        let trace = chrome_trace(&rec.spans());
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("sim · job 3"));
        assert!(trace.contains("\"name\":\"pipeline\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
