//! Chunk-lifecycle event ledger: causal wide events for every chunk a job
//! touches, cheap enough to leave on in production.
//!
//! The span recorder answers "where did this *job* spend its time"; the
//! flight ring answers "what happened recently"; `ledger` answers "what
//! happened to *this chunk*" — compressed, window-waited, released,
//! in-flight, faulted, retransmitted, arrived, decoded — as an append-only
//! sequence of structured events with causal parent links (each chunk event
//! links to the prior event for the same chunk and to its job span).
//!
//! Design, mirroring [`crate::prof`]:
//!
//! * **Emission** ([`emit`]) is one relaxed atomic load when no ledger is
//!   installed, so instrumented layers cost effectively nothing disabled.
//!   Enabled, events land in a per-thread bounded ring ([`LedgerSink`],
//!   owning thread is the only steady-state writer) stamped with a global
//!   sequence number, so cross-thread causal order is total and drains
//!   never stop the world.
//! * **Bounded**: each sink holds [`DEFAULT_SINK_CAPACITY`] events; overflow
//!   drops the oldest and counts it, published as the
//!   [`LEDGER_DROPPED_COUNTER`] registry counter on every drain.
//! * **Reconstruction** ([`Timeline::reconstruct`]) replays a drained
//!   ledger into per-chunk interval tracks (compress / window-wait /
//!   transfer / retransmit / reorder / decode) plus job-level phase
//!   boundaries whose derived stage sums ([`Timeline::stage_s`]) are
//!   consistent with [`crate::critpath`] stage attribution (≤ 1 %).
//! * **Rendering** ([`render_timeline`]) is an ASCII Gantt over simulated
//!   time only — wall timestamps never reach the output, so renderings are
//!   byte-stable across reruns.
//!
//! Resume (ROADMAP item 4) consumes the same record: replay a job's ledger
//! to the last `arrived` event per chunk and re-enqueue the rest.

use crate::metrics::Counter;
use crate::Obs;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Registry counter mirroring the ledger's cumulative dropped-event count;
/// synced on every [`Ledger::drain`].
pub const LEDGER_DROPPED_COUNTER: &str = "ocelot_ledger_dropped_total";

/// Events each per-thread sink retains before dropping the oldest.
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 16;

/// Version stamp for serialized ledger exports.
pub const LEDGER_VERSION: u32 = 1;

/// Number of event kinds (array dimension / export order length).
pub const N_EVENT_KINDS: usize = 17;

/// What happened to a chunk (or, for the four job-scope kinds, to the job).
///
/// Job-scope kinds carry `file: None, chunk: None` and pin the phase
/// boundaries the reconstructor aligns stage sums to; chunk-scope kinds
/// trace one chunk through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Job admitted; `t_sim` is the job-relative origin (0).
    JobBegin,
    /// Wire phase opens (end of queue wait).
    TransferBegin,
    /// Last byte arrived; decode tail begins.
    TransferEnd,
    /// Job done; `t_sim` is the job's total simulated seconds.
    JobEnd,
    /// Chunk compression started.
    CompressBegin,
    /// Chunk bytes sealed by the real streamed sink (wall clock only).
    Sealed,
    /// Chunk encode finished; ready for the wire.
    Encoded,
    /// Chunk ready but the stream window is full; `cause` says so.
    WindowWait,
    /// Back-pressure window admitted the chunk.
    Released,
    /// Transfer of the chunk actually activated on the link.
    InFlight,
    /// An attempt failed; `cause` carries the fault description.
    Fault,
    /// Chunk re-sent after a fault.
    Retransmit,
    /// Chunk fully received.
    Arrived,
    /// Chunk parked in the reorder/decode queue.
    ReorderEnter,
    /// Chunk left the reorder/decode queue.
    ReorderExit,
    /// Chunk decode started.
    DecodeBegin,
    /// Chunk decode finished.
    DecodeEnd,
}

impl EventKind {
    /// Every kind, in stable export order.
    pub const ALL: [EventKind; N_EVENT_KINDS] = [
        EventKind::JobBegin,
        EventKind::TransferBegin,
        EventKind::TransferEnd,
        EventKind::JobEnd,
        EventKind::CompressBegin,
        EventKind::Sealed,
        EventKind::Encoded,
        EventKind::WindowWait,
        EventKind::Released,
        EventKind::InFlight,
        EventKind::Fault,
        EventKind::Retransmit,
        EventKind::Arrived,
        EventKind::ReorderEnter,
        EventKind::ReorderExit,
        EventKind::DecodeBegin,
        EventKind::DecodeEnd,
    ];

    /// Stable snake_case label used in exports and schemas.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::JobBegin => "job_begin",
            EventKind::TransferBegin => "transfer_begin",
            EventKind::TransferEnd => "transfer_end",
            EventKind::JobEnd => "job_end",
            EventKind::CompressBegin => "compress_begin",
            EventKind::Sealed => "sealed",
            EventKind::Encoded => "encoded",
            EventKind::WindowWait => "window_wait",
            EventKind::Released => "released",
            EventKind::InFlight => "in_flight",
            EventKind::Fault => "fault",
            EventKind::Retransmit => "retransmit",
            EventKind::Arrived => "arrived",
            EventKind::ReorderEnter => "reorder_enter",
            EventKind::ReorderExit => "reorder_exit",
            EventKind::DecodeBegin => "decode_begin",
            EventKind::DecodeEnd => "decode_end",
        }
    }

    /// Inverse of [`EventKind::name`] (for deserializing exports).
    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// True for the four job-scope phase kinds.
    pub fn is_job_scope(&self) -> bool {
        matches!(self, EventKind::JobBegin | EventKind::TransferBegin | EventKind::TransferEnd | EventKind::JobEnd)
    }
}

/// One ledger record: a wide event with causal links.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEvent {
    /// Globally ordered sequence number (total order across threads).
    pub seq: u64,
    /// Sequence number of the prior event for the same chunk, if any.
    pub parent: Option<u64>,
    /// Span id of the job's root sim span, if known.
    pub span: Option<u64>,
    /// Job the event belongs to.
    pub job: Option<u64>,
    /// File index within the job's workload.
    pub file: Option<u32>,
    /// Chunk index within the file.
    pub chunk: Option<u32>,
    /// What happened.
    pub event: EventKind,
    /// Why (fault description, stall reason), when there is a why.
    pub cause: Option<String>,
    /// Simulated seconds, job-relative; `None` for wall-only events.
    pub t_sim: Option<f64>,
    /// Microseconds since the ledger was constructed (wall clock).
    pub t_wall_us: u64,
    /// Bytes the event concerns (chunk size, wasted bytes for faults).
    pub bytes: u64,
    /// Transfer attempt number (1-based; 0 when not transfer-related).
    pub attempt: u32,
}

/// Everything an emitter supplies; `seq` and `t_wall_us` are stamped by the
/// ledger. Construct with struct-update syntax over [`Draft::default`].
#[derive(Debug, Clone, Default)]
pub struct Draft {
    /// See [`LedgerEvent::parent`].
    pub parent: Option<u64>,
    /// See [`LedgerEvent::span`].
    pub span: Option<u64>,
    /// See [`LedgerEvent::job`].
    pub job: Option<u64>,
    /// See [`LedgerEvent::file`].
    pub file: Option<u32>,
    /// See [`LedgerEvent::chunk`].
    pub chunk: Option<u32>,
    /// See [`LedgerEvent::cause`].
    pub cause: Option<String>,
    /// See [`LedgerEvent::t_sim`].
    pub t_sim: Option<f64>,
    /// See [`LedgerEvent::bytes`].
    pub bytes: u64,
    /// See [`LedgerEvent::attempt`].
    pub attempt: u32,
}

impl Draft {
    /// Draft pre-addressed to one chunk of one job.
    pub fn chunk(job: u64, file: u32, chunk: u32) -> Draft {
        Draft { job: Some(job), file: Some(file), chunk: Some(chunk), ..Draft::default() }
    }

    /// Draft for a job-scope phase event at simulated time `t_sim`.
    pub fn job(job: u64, t_sim: f64) -> Draft {
        Draft { job: Some(job), t_sim: Some(t_sim), ..Draft::default() }
    }
}

/// Per-thread bounded event ring. The owning thread is the only
/// steady-state writer, so the mutex is uncontended except during drains.
pub struct LedgerSink {
    ring: Mutex<VecDeque<LedgerEvent>>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for LedgerSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LedgerSink").field("dropped", &self.dropped.load(Ordering::Relaxed)).finish()
    }
}

impl LedgerSink {
    fn new() -> Self {
        LedgerSink { ring: Mutex::new(VecDeque::new()), dropped: AtomicU64::new(0) }
    }

    fn push(&self, event: LedgerEvent, capacity: usize) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

thread_local! {
    /// Cached (ledger identity, sink) so an emit does not re-register.
    static SINK: RefCell<Option<(u64, Arc<LedgerSink>)>> = const { RefCell::new(None) };
}

/// The ledger: registry of per-thread sinks plus the global sequence
/// counter. Construct with [`Ledger::with_obs`] (publishes the dropped
/// counter) or [`Ledger::detached`], then [`install_global`] it so
/// [`emit`] activates.
pub struct Ledger {
    /// Process-unique identity; keys the per-thread sink cache. An address
    /// would suffer ABA reuse when a dropped ledger's allocation is recycled
    /// for its successor.
    id: u64,
    next_seq: AtomicU64,
    capacity: usize,
    sinks: Mutex<Vec<Arc<LedgerSink>>>,
    dropped_counter: Option<Arc<Counter>>,
    t0: Instant,
}

/// Source of process-unique [`Ledger::id`]s.
static NEXT_LEDGER_ID: AtomicU64 = AtomicU64::new(1);

impl std::fmt::Debug for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ledger").field("next_seq", &self.next_seq.load(Ordering::Relaxed)).finish()
    }
}

impl Ledger {
    /// Ledger that syncs its dropped-event count into `obs` as
    /// [`LEDGER_DROPPED_COUNTER`] on every drain.
    pub fn with_obs(obs: &Obs) -> Arc<Ledger> {
        Ledger::with_obs_and_capacity(obs, DEFAULT_SINK_CAPACITY)
    }

    /// [`Ledger::with_obs`] with an explicit per-sink capacity.
    pub fn with_obs_and_capacity(obs: &Obs, capacity: usize) -> Arc<Ledger> {
        Arc::new(Ledger {
            id: NEXT_LEDGER_ID.fetch_add(1, Ordering::Relaxed),
            next_seq: AtomicU64::new(1),
            capacity: capacity.max(1),
            sinks: Mutex::new(Vec::new()),
            dropped_counter: obs.counter_handle(LEDGER_DROPPED_COUNTER, "chunk-ledger events dropped by bounded sinks"),
            t0: Instant::now(),
        })
    }

    /// Ledger with no metrics side-channel.
    pub fn detached() -> Arc<Ledger> {
        Ledger::with_obs(&Obs::disabled())
    }

    fn register_sink(&self) -> Arc<LedgerSink> {
        let sink = Arc::new(LedgerSink::new());
        self.sinks.lock().unwrap_or_else(|e| e.into_inner()).push(sink.clone());
        sink
    }

    /// Appends one event, returning its sequence number (for parent links).
    pub fn append(&self, kind: EventKind, draft: Draft) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = LedgerEvent {
            seq,
            parent: draft.parent,
            span: draft.span,
            job: draft.job,
            file: draft.file,
            chunk: draft.chunk,
            event: kind,
            cause: draft.cause,
            t_sim: draft.t_sim,
            t_wall_us: self.t0.elapsed().as_micros() as u64,
            bytes: draft.bytes,
            attempt: draft.attempt,
        };
        let key = self.id;
        let sink = SINK.with(|s| {
            let mut s = s.borrow_mut();
            match &*s {
                Some((k, sink)) if *k == key => sink.clone(),
                _ => {
                    let sink = self.register_sink();
                    *s = Some((key, sink.clone()));
                    sink
                }
            }
        });
        sink.push(event, self.capacity);
        seq
    }

    /// Takes every buffered event from every sink, merged into global
    /// sequence order, and syncs the dropped counter.
    pub fn drain(&self) -> Vec<LedgerEvent> {
        let sinks = self.sinks.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut all = Vec::new();
        for sink in &sinks {
            let mut ring = sink.ring.lock().unwrap_or_else(|e| e.into_inner());
            all.extend(ring.drain(..));
        }
        all.sort_by_key(|e| e.seq);
        if let Some(c) = &self.dropped_counter {
            let dropped = self.dropped();
            let seen = c.get();
            if dropped > seen {
                c.add(dropped - seen);
            }
        }
        all
    }

    /// Cumulative events dropped across every sink.
    pub fn dropped(&self) -> u64 {
        self.sinks.lock().unwrap_or_else(|e| e.into_inner()).iter().map(|s| s.dropped.load(Ordering::Relaxed)).sum()
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CURRENT: OnceLock<RwLock<Option<Arc<Ledger>>>> = OnceLock::new();

fn current_cell() -> &'static RwLock<Option<Arc<Ledger>>> {
    CURRENT.get_or_init(|| RwLock::new(None))
}

/// Installs `ledger` as the process-wide ledger; [`emit`] activates on
/// every thread. Re-installable, like [`crate::prof::install_global`].
pub fn install_global(ledger: &Arc<Ledger>) {
    *current_cell().write().expect("ledger global poisoned") = Some(ledger.clone());
    ACTIVE.store(true, Ordering::Release);
}

/// Deactivates the ledger; subsequent emits are one relaxed load.
pub fn uninstall_global() {
    ACTIVE.store(false, Ordering::Release);
    *current_cell().write().expect("ledger global poisoned") = None;
}

/// The installed ledger, if any.
pub fn global() -> Option<Arc<Ledger>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    current_cell().read().expect("ledger global poisoned").clone()
}

/// True when a ledger is installed (one relaxed load — the per-event-site
/// fast-out).
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Emits one event into the installed ledger, returning its sequence
/// number for parent chaining. Disabled: one relaxed load, `None`.
#[inline]
pub fn emit(kind: EventKind, draft: Draft) -> Option<u64> {
    if !is_active() {
        return None;
    }
    let ledger = global()?;
    Some(ledger.append(kind, draft))
}

// ---------------------------------------------------------------------------
// Timeline reconstruction
// ---------------------------------------------------------------------------

/// One chunk's reconstructed interval track (simulated seconds).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChunkTrack {
    /// File index within the job.
    pub file: u32,
    /// Chunk index within the file.
    pub chunk: u32,
    /// `[compress_begin, encoded]`.
    pub compress: Option<(f64, f64)>,
    /// `[window_wait, released]` — back-pressure stall, if any.
    pub window_wait: Option<(f64, f64)>,
    /// `[released, arrived]` — time on (or waiting for) the wire.
    pub transfer: Option<(f64, f64)>,
    /// Failed-attempt segments inside the transfer interval, with causes.
    pub retransmits: Vec<(f64, f64, String)>,
    /// `[reorder_enter, reorder_exit]` — decode-queue residency, if any.
    pub reorder: Option<(f64, f64)>,
    /// `[decode_begin, decode_end]`.
    pub decode: Option<(f64, f64)>,
    /// Transfer attempts (1 = clean).
    pub attempts: u32,
    /// Chunk payload bytes on the wire.
    pub bytes: u64,
}

impl ChunkTrack {
    /// End of the last known interval (chunk completion time).
    pub fn end_s(&self) -> f64 {
        [self.compress, self.window_wait, self.transfer, self.reorder, self.decode]
            .iter()
            .flatten()
            .fold(0.0f64, |acc, (_, b)| acc.max(*b))
    }
}

/// A job's ledger replayed into phase boundaries and per-chunk tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// The job.
    pub job: u64,
    /// Queue-wait end / wire-phase start (from `transfer_begin`).
    pub transfer_begin_s: f64,
    /// Wire-phase end / decode-tail start (from `transfer_end`).
    pub transfer_end_s: f64,
    /// Total simulated seconds (from `job_end`).
    pub total_s: f64,
    /// Per-chunk tracks, sorted by (file, chunk).
    pub tracks: Vec<ChunkTrack>,
    /// Merged window-wait intervals, clipped to the wire phase.
    pub stalls: Vec<(f64, f64)>,
}

/// Merges possibly-overlapping intervals into a disjoint sorted union.
fn merge_intervals(mut ivs: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    ivs.retain(|(a, b)| b > a);
    ivs.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (a, b) in ivs {
        match out.last_mut() {
            Some((_, e)) if a <= *e => *e = e.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

impl Timeline {
    /// Replays `events` (any mix of jobs) into the timeline for `job`.
    /// `None` when the ledger holds nothing for that job.
    pub fn reconstruct(events: &[LedgerEvent], job: u64) -> Option<Timeline> {
        let evs: Vec<&LedgerEvent> = events.iter().filter(|e| e.job == Some(job)).collect();
        if evs.is_empty() {
            return None;
        }
        let mut transfer_begin_s = 0.0f64;
        let mut transfer_end_s = f64::NAN;
        let mut total_s = f64::NAN;
        let mut by_chunk: BTreeMap<(u32, u32), Vec<&LedgerEvent>> = BTreeMap::new();
        for e in &evs {
            match (e.event, e.t_sim) {
                (EventKind::TransferBegin, Some(t)) => transfer_begin_s = t,
                (EventKind::TransferEnd, Some(t)) => transfer_end_s = t,
                (EventKind::JobEnd, Some(t)) => total_s = t,
                _ => {}
            }
            if let (Some(f), Some(c)) = (e.file, e.chunk) {
                by_chunk.entry((f, c)).or_default().push(e);
            }
        }
        let mut tracks = Vec::with_capacity(by_chunk.len());
        for ((file, chunk), evs) in &by_chunk {
            let mut track = ChunkTrack { file: *file, chunk: *chunk, ..ChunkTrack::default() };
            let t_of = |kind: EventKind| evs.iter().find(|e| e.event == kind).and_then(|e| e.t_sim);
            if let (Some(a), Some(b)) = (t_of(EventKind::CompressBegin), t_of(EventKind::Encoded)) {
                track.compress = Some((a, b));
            }
            if let (Some(a), Some(b)) = (t_of(EventKind::WindowWait), t_of(EventKind::Released)) {
                track.window_wait = Some((a, b));
            }
            let sent = t_of(EventKind::Released).or_else(|| t_of(EventKind::InFlight));
            if let (Some(a), Some(b)) = (sent, t_of(EventKind::Arrived)) {
                track.transfer = Some((a, b));
            }
            if let (Some(a), Some(b)) = (t_of(EventKind::ReorderEnter), t_of(EventKind::ReorderExit)) {
                track.reorder = Some((a, b));
            }
            if let (Some(a), Some(b)) = (t_of(EventKind::DecodeBegin), t_of(EventKind::DecodeEnd)) {
                track.decode = Some((a, b));
            }
            // A failed attempt occupies [its fault's t_sim, the next
            // transfer event's t_sim] — retransmit or final arrival.
            for (i, e) in evs.iter().enumerate() {
                if e.event != EventKind::Fault {
                    continue;
                }
                let Some(t0) = e.t_sim else { continue };
                let t1 = evs[i + 1..]
                    .iter()
                    .find(|n| matches!(n.event, EventKind::Retransmit | EventKind::Arrived))
                    .and_then(|n| n.t_sim)
                    .unwrap_or(t0);
                let cause = e.cause.clone().unwrap_or_else(|| "fault".to_string());
                track.retransmits.push((t0, t1, cause));
            }
            track.attempts = evs.iter().map(|e| e.attempt).max().unwrap_or(0).max(1);
            track.bytes = evs.iter().map(|e| e.bytes).max().unwrap_or(0);
            tracks.push(track);
        }
        let chunk_end = tracks.iter().fold(0.0f64, |acc, t| acc.max(t.end_s()));
        if !transfer_end_s.is_finite() {
            transfer_end_s = tracks.iter().filter_map(|t| t.transfer).fold(transfer_begin_s, |acc, (_, b)| acc.max(b));
        }
        if !total_s.is_finite() {
            total_s = chunk_end.max(transfer_end_s);
        }
        let stalls = merge_intervals(
            tracks
                .iter()
                .filter_map(|t| t.window_wait)
                .map(|(a, b)| (a.max(transfer_begin_s), b.min(transfer_end_s)))
                .collect(),
        );
        Some(Timeline { job, transfer_begin_s, transfer_end_s, total_s, tracks, stalls })
    }

    /// Stage sums aligned with [`crate::critpath::Stage::ALL`] order
    /// (QueueWait, Compress, Group, Transfer, Stall, Decompress, Other).
    ///
    /// The derivation mirrors the critpath sweep over a streamed job's span
    /// tree: queue wait up to `transfer_begin`, stalls are the window-wait
    /// union inside the wire phase (deepest spans win), transfer is the
    /// rest of the wire phase, and the decode tail runs to `job_end`.
    /// Compression overlaps the wire phase on the overlap lane, so it is
    /// shadowed — exactly as the critpath tie-break shadows it.
    pub fn stage_s(&self) -> [f64; 7] {
        let queue = self.transfer_begin_s.max(0.0);
        let stall: f64 = self.stalls.iter().map(|(a, b)| b - a).sum();
        let wire = (self.transfer_end_s - self.transfer_begin_s).max(0.0);
        let transfer = (wire - stall).max(0.0);
        let decode = (self.total_s - self.transfer_end_s).max(0.0);
        [queue, 0.0, 0.0, transfer, stall, decode, 0.0]
    }

    /// Total retransmitted (failed) attempts across every chunk.
    pub fn total_retries(&self) -> u64 {
        self.tracks.iter().map(|t| t.retransmits.len() as u64).sum()
    }
}

/// Checks the causal invariants of a drained ledger for one job:
/// sequence numbers strictly increase, every chunk event's parent points
/// to an earlier event of the same chunk (or a job-scope event), and
/// per-chunk simulated times are monotone in causal order. Returns every
/// violation as a message; empty means consistent.
pub fn check_causality(events: &[LedgerEvent], job: u64) -> Vec<String> {
    let mut errors = Vec::new();
    let evs: Vec<&LedgerEvent> = events.iter().filter(|e| e.job == Some(job)).collect();
    for w in evs.windows(2) {
        if w[1].seq <= w[0].seq {
            errors.push(format!("seq not strictly increasing: {} then {}", w[0].seq, w[1].seq));
        }
    }
    let mut by_seq: BTreeMap<u64, &LedgerEvent> = BTreeMap::new();
    for e in &evs {
        by_seq.insert(e.seq, e);
    }
    let mut last_t: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for e in &evs {
        if let Some(p) = e.parent {
            match by_seq.get(&p) {
                None => errors.push(format!("seq {}: parent {p} not in the ledger", e.seq)),
                Some(pe) => {
                    if pe.seq >= e.seq {
                        errors.push(format!("seq {}: parent {p} is not earlier", e.seq));
                    }
                    let same_chunk = pe.file == e.file && pe.chunk == e.chunk;
                    if !same_chunk && !pe.event.is_job_scope() {
                        errors.push(format!(
                            "seq {}: parent {p} belongs to another chunk ({:?}/{:?})",
                            e.seq, pe.file, pe.chunk
                        ));
                    }
                }
            }
        }
        if let (Some(f), Some(c), Some(t)) = (e.file, e.chunk, e.t_sim) {
            let prev = last_t.entry((f, c)).or_insert(f64::NEG_INFINITY);
            if t < *prev - 1e-9 {
                errors.push(format!("seq {}: chunk {f}/{c} time went backwards ({t} < {prev})", e.seq));
            }
            *prev = prev.max(t);
        }
    }
    errors
}

// ---------------------------------------------------------------------------
// Rendering (simulated time only — byte-stable across reruns)
// ---------------------------------------------------------------------------

/// Gantt body width in columns.
const GANTT_COLS: usize = 48;

/// Above this many tracks the Gantt elides clean chunks down to
/// [`GANTT_CLEAN_BUDGET`] rows; retransmitted chunks are always rendered so
/// fault attribution survives on production-sized jobs (thousands of
/// chunks).
const GANTT_ELIDE_ABOVE: usize = 64;
const GANTT_CLEAN_BUDGET: usize = 48;

fn paint(row: &mut [u8], total: f64, iv: (f64, f64), ch: u8) {
    if total <= 0.0 {
        return;
    }
    let col = |t: f64| ((t / total) * GANTT_COLS as f64).floor().clamp(0.0, (GANTT_COLS - 1) as f64) as usize;
    let (a, b) = (col(iv.0), col(iv.1.max(iv.0)));
    for cell in row.iter_mut().take(b + 1).skip(a) {
        *cell = ch;
    }
}

/// Renders a reconstructed timeline as an ASCII Gantt of chunk tracks with
/// stall/retry annotations. Only simulated times appear, so the rendering
/// is byte-stable across reruns of the same seeded job.
pub fn render_timeline(tl: &Timeline) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let stage = tl.stage_s();
    let _ = writeln!(out, "timeline job {} — {} chunk(s), total {:.3}s simulated", tl.job, tl.tracks.len(), tl.total_s);
    let _ = writeln!(
        out,
        "  queue {:.3}s | transfer {:.3}s | stall {:.3}s | decode {:.3}s",
        stage[0], stage[3], stage[4], stage[5]
    );
    let _ = writeln!(out, "  [= compress  . window-wait  > transfer  ! retransmit  ~ reorder  # decode]");
    let mut clean_budget = if tl.tracks.len() > GANTT_ELIDE_ABOVE { GANTT_CLEAN_BUDGET } else { usize::MAX };
    let mut elided = 0usize;
    for t in &tl.tracks {
        if t.retransmits.is_empty() {
            if clean_budget == 0 {
                elided += 1;
                continue;
            }
            clean_budget -= 1;
        }
        let mut row = [b' '; GANTT_COLS];
        if let Some(iv) = t.compress {
            paint(&mut row, tl.total_s, iv, b'=');
        }
        if let Some(iv) = t.window_wait {
            paint(&mut row, tl.total_s, iv, b'.');
        }
        if let Some(iv) = t.transfer {
            paint(&mut row, tl.total_s, iv, b'>');
        }
        if let Some(iv) = t.reorder {
            paint(&mut row, tl.total_s, iv, b'~');
        }
        if let Some(iv) = t.decode {
            paint(&mut row, tl.total_s, iv, b'#');
        }
        for &(a, b, _) in &t.retransmits {
            paint(&mut row, tl.total_s, (a, b), b'!');
        }
        let bar = String::from_utf8_lossy(&row).into_owned();
        let note = if t.retransmits.is_empty() {
            format!("{} attempt(s)", t.attempts)
        } else {
            let causes: Vec<&str> = {
                let mut seen = Vec::new();
                for (_, _, c) in &t.retransmits {
                    if !seen.contains(&c.as_str()) {
                        seen.push(c.as_str());
                    }
                }
                seen
            };
            format!("{} attempt(s): {}", t.attempts, causes.join(", "))
        };
        let _ = writeln!(out, "  f{:02}/c{:02} |{bar}| {note}", t.file, t.chunk);
    }
    if elided > 0 {
        let _ = writeln!(out, "  … {elided} clean chunk(s) elided (every retransmitted chunk is shown)");
    }
    let stalled: f64 = tl.stalls.iter().map(|(a, b)| b - a).sum();
    let retried = tl.tracks.iter().filter(|t| !t.retransmits.is_empty()).count();
    let _ = writeln!(
        out,
        "  retries: {} retransmit(s) across {} chunk(s); stalls: {} window-wait(s) totalling {:.3}s",
        tl.total_retries(),
        retried,
        tl.stalls.len(),
        stalled
    );
    out
}

/// Renders the full event list for one chunk (the `--chunk N` detail view,
/// N indexing [`Timeline::tracks`] order). Only simulated times appear.
pub fn render_chunk_detail(events: &[LedgerEvent], tl: &Timeline, index: usize) -> Option<String> {
    use std::fmt::Write as _;
    let track = tl.tracks.get(index)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chunk f{:02}/c{:02} of job {} — {} attempt(s), {} bytes",
        track.file, track.chunk, tl.job, track.attempts, track.bytes
    );
    let _ = writeln!(out, "  {:<6} {:<15} {:>10} {:>12} {:>7}  cause", "seq", "event", "t_sim", "bytes", "attempt");
    for e in
        events.iter().filter(|e| e.job == Some(tl.job) && e.file == Some(track.file) && e.chunk == Some(track.chunk))
    {
        let t = match e.t_sim {
            Some(t) => format!("{t:.4}s"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<6} {:<15} {:>10} {:>12} {:>7}  {}",
            e.seq,
            e.event.name(),
            t,
            e.bytes,
            e.attempt,
            e.cause.as_deref().unwrap_or("-")
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-ledger tests share process state; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn event_kind_names_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::parse("quantum_leap"), None);
        assert!(EventKind::JobBegin.is_job_scope());
        assert!(!EventKind::Arrived.is_job_scope());
    }

    #[test]
    fn disabled_emit_records_nothing() {
        let _g = lock();
        uninstall_global();
        assert!(!is_active());
        assert_eq!(emit(EventKind::Arrived, Draft::chunk(1, 0, 0)), None);
        assert!(global().is_none());
    }

    #[test]
    fn emits_chain_and_drain_in_seq_order() {
        let _g = lock();
        let ledger = Ledger::detached();
        install_global(&ledger);
        let s1 = emit(EventKind::Encoded, Draft { bytes: 100, ..Draft::chunk(7, 0, 0) }).unwrap();
        let s2 = emit(EventKind::Released, Draft { parent: Some(s1), ..Draft::chunk(7, 0, 0) }).unwrap();
        let s3 = emit(EventKind::Arrived, Draft { parent: Some(s2), attempt: 1, ..Draft::chunk(7, 0, 0) }).unwrap();
        uninstall_global();
        assert!(s1 < s2 && s2 < s3);
        let events = ledger.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].event, EventKind::Encoded);
        assert_eq!(events[0].bytes, 100);
        assert_eq!(events[1].parent, Some(s1));
        assert_eq!(events[2].attempt, 1);
        assert!(check_causality(&events, 7).is_empty());
        // Drains are destructive.
        assert!(ledger.drain().is_empty());
    }

    #[test]
    fn cross_thread_emission_keeps_a_total_order() {
        let _g = lock();
        let ledger = Ledger::detached();
        install_global(&ledger);
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut parent = None;
                    for i in 0..32u32 {
                        parent =
                            emit(EventKind::Encoded, Draft { parent, t_sim: Some(i as f64), ..Draft::chunk(1, t, 0) });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        uninstall_global();
        let events = ledger.drain();
        assert_eq!(events.len(), 4 * 32);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq), "drain not seq-sorted");
        assert_eq!(check_causality(&events, 1), Vec::<String>::new());
    }

    #[test]
    fn bounded_sinks_drop_oldest_and_publish_the_counter() {
        let _g = lock();
        let obs = Obs::enabled();
        let ledger = Ledger::with_obs_and_capacity(&obs, 8);
        install_global(&ledger);
        for i in 0..20u32 {
            emit(EventKind::Sealed, Draft { bytes: i as u64, ..Draft::chunk(1, 0, i) });
        }
        uninstall_global();
        let events = ledger.drain();
        assert_eq!(events.len(), 8, "ring bounded at capacity");
        assert_eq!(ledger.dropped(), 12);
        // Oldest dropped: the survivors are the newest 8.
        assert_eq!(events[0].chunk, Some(12));
        let c = obs.registry().unwrap().counter(LEDGER_DROPPED_COUNTER, "");
        assert_eq!(c.get(), 12, "dropped count synced on drain");
    }

    #[test]
    fn reinstall_swaps_sinks() {
        let _g = lock();
        let a = Ledger::detached();
        install_global(&a);
        emit(EventKind::Sealed, Draft { bytes: 1, ..Draft::chunk(1, 0, 0) });
        let b = Ledger::detached();
        install_global(&b);
        emit(EventKind::Sealed, Draft { bytes: 2, ..Draft::chunk(1, 0, 0) });
        uninstall_global();
        assert_eq!(a.drain().iter().map(|e| e.bytes).sum::<u64>(), 1);
        assert_eq!(b.drain().iter().map(|e| e.bytes).sum::<u64>(), 2);
    }

    /// A synthetic clean-plus-faulted two-chunk job, exercised below.
    fn sample_events() -> Vec<LedgerEvent> {
        let ledger = Ledger::detached();
        let job = 3u64;
        ledger.append(EventKind::JobBegin, Draft::job(job, 0.0));
        ledger.append(EventKind::TransferBegin, Draft::job(job, 1.0));
        // Chunk 0: clean.
        let mut d = Draft { t_sim: Some(0.0), ..Draft::chunk(job, 0, 0) };
        let mut p = ledger.append(EventKind::CompressBegin, d.clone());
        d = Draft { parent: Some(p), t_sim: Some(1.0), bytes: 1000, ..Draft::chunk(job, 0, 0) };
        p = ledger.append(EventKind::Encoded, d.clone());
        d = Draft { parent: Some(p), t_sim: Some(1.0), ..Draft::chunk(job, 0, 0) };
        p = ledger.append(EventKind::Released, d.clone());
        d = Draft { parent: Some(p), t_sim: Some(4.0), attempt: 1, bytes: 1000, ..Draft::chunk(job, 0, 0) };
        p = ledger.append(EventKind::Arrived, d.clone());
        d = Draft { parent: Some(p), t_sim: Some(4.0), ..Draft::chunk(job, 0, 0) };
        p = ledger.append(EventKind::DecodeBegin, d.clone());
        d = Draft { parent: Some(p), t_sim: Some(5.0), ..Draft::chunk(job, 0, 0) };
        ledger.append(EventKind::DecodeEnd, d);
        // Chunk 1: stalls on the window, faults once, retransmits.
        d = Draft { t_sim: Some(1.0), ..Draft::chunk(job, 0, 1) };
        p = ledger.append(EventKind::CompressBegin, d);
        d = Draft { parent: Some(p), t_sim: Some(2.0), bytes: 2000, ..Draft::chunk(job, 0, 1) };
        p = ledger.append(EventKind::Encoded, d);
        d = Draft {
            parent: Some(p),
            t_sim: Some(2.0),
            cause: Some("stream window full".to_string()),
            ..Draft::chunk(job, 0, 1)
        };
        p = ledger.append(EventKind::WindowWait, d);
        d = Draft { parent: Some(p), t_sim: Some(3.0), ..Draft::chunk(job, 0, 1) };
        p = ledger.append(EventKind::Released, d);
        d = Draft {
            parent: Some(p),
            t_sim: Some(5.0),
            attempt: 1,
            cause: Some("wan fault (p=0.50)".to_string()),
            ..Draft::chunk(job, 0, 1)
        };
        p = ledger.append(EventKind::Fault, d);
        d = Draft { parent: Some(p), t_sim: Some(5.5), attempt: 2, ..Draft::chunk(job, 0, 1) };
        p = ledger.append(EventKind::Retransmit, d);
        d = Draft { parent: Some(p), t_sim: Some(7.0), attempt: 2, bytes: 2000, ..Draft::chunk(job, 0, 1) };
        p = ledger.append(EventKind::Arrived, d);
        d = Draft { parent: Some(p), t_sim: Some(7.0), ..Draft::chunk(job, 0, 1) };
        p = ledger.append(EventKind::ReorderEnter, d);
        d = Draft { parent: Some(p), t_sim: Some(7.5), ..Draft::chunk(job, 0, 1) };
        p = ledger.append(EventKind::ReorderExit, d);
        d = Draft { parent: Some(p), t_sim: Some(7.5), ..Draft::chunk(job, 0, 1) };
        p = ledger.append(EventKind::DecodeBegin, d);
        d = Draft { parent: Some(p), t_sim: Some(8.0), ..Draft::chunk(job, 0, 1) };
        ledger.append(EventKind::DecodeEnd, d);
        ledger.append(EventKind::TransferEnd, Draft::job(job, 7.0));
        ledger.append(EventKind::JobEnd, Draft::job(job, 8.0));
        ledger.drain()
    }

    #[test]
    fn timeline_reconstructs_tracks_and_stage_sums() {
        let events = sample_events();
        assert!(check_causality(&events, 3).is_empty());
        let tl = Timeline::reconstruct(&events, 3).expect("job 3 in the ledger");
        assert_eq!(tl.tracks.len(), 2);
        assert_eq!(tl.transfer_begin_s, 1.0);
        assert_eq!(tl.transfer_end_s, 7.0);
        assert_eq!(tl.total_s, 8.0);
        let clean = &tl.tracks[0];
        assert_eq!(clean.transfer, Some((1.0, 4.0)));
        assert_eq!(clean.attempts, 1);
        assert!(clean.retransmits.is_empty());
        let faulted = &tl.tracks[1];
        assert_eq!(faulted.window_wait, Some((2.0, 3.0)));
        assert_eq!(faulted.transfer, Some((3.0, 7.0)));
        assert_eq!(faulted.reorder, Some((7.0, 7.5)));
        assert_eq!(faulted.attempts, 2);
        assert_eq!(faulted.retransmits, vec![(5.0, 5.5, "wan fault (p=0.50)".to_string())]);
        assert_eq!(tl.total_retries(), 1);
        // Stage sums: queue 1, stall 1 (the 2→3 window wait), transfer
        // (7-1)-1 = 5, decode 8-7 = 1; compress shadowed by the wire phase.
        assert_eq!(tl.stage_s(), [1.0, 0.0, 0.0, 5.0, 1.0, 1.0, 0.0]);
        // Missing job? None.
        assert!(Timeline::reconstruct(&events, 99).is_none());
    }

    #[test]
    fn render_names_faulted_chunks_and_is_byte_stable() {
        let events = sample_events();
        let tl = Timeline::reconstruct(&events, 3).unwrap();
        let text = render_timeline(&tl);
        assert!(text.contains("timeline job 3"), "{text}");
        assert!(text.contains("f00/c01"), "{text}");
        assert!(text.contains("wan fault (p=0.50)"), "{text}");
        assert!(text.contains('!'), "retransmit marker missing:\n{text}");
        assert!(text.contains('.'), "window-wait marker missing:\n{text}");
        assert!(text.contains("retries: 1 retransmit(s) across 1 chunk(s)"), "{text}");
        // Byte-stable: rendering is a pure function of simulated times.
        assert_eq!(text, render_timeline(&Timeline::reconstruct(&events, 3).unwrap()));
        let detail = render_chunk_detail(&events, &tl, 1).unwrap();
        assert!(detail.contains("fault"), "{detail}");
        assert!(detail.contains("wan fault (p=0.50)"), "{detail}");
        assert!(render_chunk_detail(&events, &tl, 9).is_none());
    }

    #[test]
    fn merge_intervals_unions_overlaps() {
        assert_eq!(merge_intervals(vec![(3.0, 4.0), (0.0, 1.0), (0.5, 2.0), (4.0, 4.0)]), vec![(0.0, 2.0), (3.0, 4.0)]);
        assert!(merge_intervals(vec![]).is_empty());
    }

    #[test]
    fn causality_checker_flags_violations() {
        let ledger = Ledger::detached();
        let s1 = ledger.append(EventKind::Encoded, Draft { t_sim: Some(5.0), ..Draft::chunk(1, 0, 0) });
        ledger.append(EventKind::Released, Draft { parent: Some(s1 + 100), t_sim: Some(4.0), ..Draft::chunk(1, 0, 0) });
        let events = ledger.drain();
        let errors = check_causality(&events, 1);
        assert!(errors.iter().any(|e| e.contains("not in the ledger")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("time went backwards")), "{errors:?}");
    }
}
