//! Critical-path analysis over recorded simulated-clock spans.
//!
//! The span trees a job leaves behind are *overlapped*: the orchestrator's
//! phase tree, the sentinel's concurrent compress/transfer lanes, and the
//! service's job envelope (retry rounds, backoff) all cover the same
//! simulated timeline. This module answers "where did the time actually
//! go?" by sweeping the timeline in elementary intervals and attributing
//! each interval to the *most specific* (deepest) span covering it, with
//! the primary lane winning ties — so an interval where transfer (lane 0)
//! and background compression (lane 1) overlap counts as transfer time,
//! matching what a user experiences.
//!
//! Two totals come out of the sweep:
//!
//! - `critical_path_s` — the union of covered simulated time: the span of
//!   wall-experienced latency. Per-stage attribution sums to it exactly.
//! - `total_s` — the serialized work: each span's *exclusive* time (its
//!   duration minus its children's coverage) summed over all spans. For an
//!   additive tree this equals the critical path; under overlap it
//!   exceeds it, and `total_s − critical_path_s` is the time saved by
//!   overlapping.

use crate::span::{Clock, SpanRecord};
use std::collections::HashMap;

/// Pipeline stage a span attributes its time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Waiting for remote compute (FuncX queue) or retry backoff.
    QueueWait,
    /// Lossy compression on source nodes.
    Compress,
    /// Packing compressed blobs into transfer groups.
    Group,
    /// Crossing the WAN, including retry re-offers.
    Transfer,
    /// Streaming back-pressure: a chunk ready to ship waiting for window
    /// space (distinct from transfer so overlap stalls are visible).
    Stall,
    /// Decompression on destination nodes.
    Decompress,
    /// Anything unclassified (root envelopes, custom spans).
    Other,
}

impl Stage {
    /// All stages, in attribution-report order.
    pub const ALL: [Stage; 7] = [
        Stage::QueueWait,
        Stage::Compress,
        Stage::Group,
        Stage::Transfer,
        Stage::Stall,
        Stage::Decompress,
        Stage::Other,
    ];

    /// Stable lowercase label used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Compress => "compress",
            Stage::Group => "group",
            Stage::Transfer => "transfer",
            Stage::Stall => "stall",
            Stage::Decompress => "decompress",
            Stage::Other => "other",
        }
    }

    /// Maps a dotted span name to a stage. Backoff counts as queue wait
    /// (the job is parked either way); retry re-offers count as transfer;
    /// streaming back-pressure stalls are checked first so a
    /// `…transfer.stream_stall` child is not swallowed by its transfer
    /// parent's keyword.
    pub fn classify(span_name: &str) -> Stage {
        if span_name.contains("stall") {
            Stage::Stall
        } else if span_name.contains("queue_wait") || span_name.contains("backoff") {
            Stage::QueueWait
        } else if span_name.contains("decompress") {
            Stage::Decompress
        } else if span_name.contains("compress") {
            Stage::Compress
        } else if span_name.contains("group") {
            Stage::Group
        } else if span_name.contains("transfer") || span_name.contains("retry") {
            Stage::Transfer
        } else {
            Stage::Other
        }
    }
}

/// Where one job's (or one aggregate's) simulated time went.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    /// Job the report describes (`None` for aggregates).
    pub job: Option<u64>,
    /// Union of covered simulated time — the experienced latency.
    pub critical_path_s: f64,
    /// Serialized work: sum of every span's exclusive time. Always
    /// `>= critical_path_s`; the excess is time hidden by overlap.
    pub total_s: f64,
    /// Seconds attributed to each stage, indexed like [`Stage::ALL`].
    /// Sums to `critical_path_s` (exactly, up to µs rounding).
    pub stage_s: [f64; Stage::ALL.len()],
    /// Stage with the most attributed time.
    pub dominant: Stage,
}

impl BottleneckReport {
    /// Seconds attributed to `stage`.
    pub fn stage(&self, stage: Stage) -> f64 {
        self.stage_s[Stage::ALL.iter().position(|&s| s == stage).expect("stage in ALL")]
    }

    /// `(stage, seconds)` pairs in [`Stage::ALL`] order.
    pub fn stages(&self) -> impl Iterator<Item = (Stage, f64)> + '_ {
        Stage::ALL.iter().zip(self.stage_s.iter()).map(|(&s, &v)| (s, v))
    }

    /// Simulated seconds saved by overlapping work (`total_s − critical_path_s`).
    pub fn overlap_savings_s(&self) -> f64 {
        (self.total_s - self.critical_path_s).max(0.0)
    }
}

/// Analyzes one job's spans (pass `Recorder::for_job` output). Only
/// simulated-clock spans participate; returns `None` when there are none.
pub fn analyze(spans: &[SpanRecord]) -> Option<BottleneckReport> {
    let sim: Vec<&SpanRecord> = spans.iter().filter(|s| s.clock == Clock::Sim && s.end_us > s.start_us).collect();
    if sim.is_empty() {
        return None;
    }

    // Depth of each span via its parent chain (bounded walk guards cycles).
    let parent_of: HashMap<u64, Option<u64>> = sim.iter().map(|s| (s.id, s.parent)).collect();
    let depth_of = |mut id: u64| -> u32 {
        let mut depth = 0;
        for _ in 0..sim.len() {
            match parent_of.get(&id) {
                Some(Some(p)) => {
                    depth += 1;
                    id = *p;
                }
                _ => break,
            }
        }
        depth
    };
    let depths: HashMap<u64, u32> = sim.iter().map(|s| (s.id, depth_of(s.id))).collect();

    // Serialized work: each span's duration minus its children's coverage.
    let mut children: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for s in &sim {
        if let Some(p) = s.parent {
            children.entry(p).or_default().push((s.start_us, s.end_us));
        }
    }
    let mut total_us: u64 = 0;
    for s in &sim {
        let covered = children.get(&s.id).map(|ivs| union_len_clipped(ivs, s.start_us, s.end_us)).unwrap_or(0);
        total_us += (s.end_us - s.start_us).saturating_sub(covered);
    }

    // Elementary-interval sweep: between consecutive span boundaries the
    // covering set is constant, so each interval is attributed whole.
    let mut cuts: Vec<u64> = sim.iter().flat_map(|s| [s.start_us, s.end_us]).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut stage_us = [0u64; Stage::ALL.len()];
    let mut critical_us: u64 = 0;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        // Deepest covering span wins; ties go to the lower (primary) lane,
        // then to the later-recorded span.
        let best = sim
            .iter()
            .filter(|s| s.start_us <= lo && s.end_us >= hi)
            .max_by_key(|s| (depths[&s.id], std::cmp::Reverse(s.lane), s.id));
        if let Some(span) = best {
            let len = hi - lo;
            critical_us += len;
            let idx = Stage::ALL.iter().position(|&s| s == Stage::classify(&span.name)).expect("stage in ALL");
            stage_us[idx] += len;
        }
    }

    let mut stage_s = [0.0; Stage::ALL.len()];
    for (out, &us) in stage_s.iter_mut().zip(&stage_us) {
        *out = us as f64 / 1e6;
    }
    Some(BottleneckReport {
        job: sim.iter().find_map(|s| s.job),
        critical_path_s: critical_us as f64 / 1e6,
        total_s: total_us as f64 / 1e6,
        dominant: dominant_stage(&stage_s),
        stage_s,
    })
}

/// Analyzes every job present in `spans`, one report per job id, ascending.
pub fn analyze_jobs(spans: &[SpanRecord]) -> Vec<BottleneckReport> {
    let mut jobs: Vec<u64> = spans.iter().filter_map(|s| s.job).collect();
    jobs.sort_unstable();
    jobs.dedup();
    jobs.into_iter()
        .filter_map(|j| {
            let own: Vec<SpanRecord> = spans.iter().filter(|s| s.job == Some(j)).cloned().collect();
            analyze(&own)
        })
        .collect()
}

/// Sums per-stage attribution across reports into one aggregate report
/// (`job: None`). Returns `None` for an empty input.
pub fn aggregate<'a>(reports: impl IntoIterator<Item = &'a BottleneckReport>) -> Option<BottleneckReport> {
    let mut any = false;
    let mut critical = 0.0;
    let mut total = 0.0;
    let mut stage_s = [0.0; Stage::ALL.len()];
    for r in reports {
        any = true;
        critical += r.critical_path_s;
        total += r.total_s;
        for (acc, v) in stage_s.iter_mut().zip(&r.stage_s) {
            *acc += v;
        }
    }
    any.then(|| BottleneckReport {
        job: None,
        critical_path_s: critical,
        total_s: total,
        dominant: dominant_stage(&stage_s),
        stage_s,
    })
}

/// Stage with the largest attribution; ties resolve in [`Stage::ALL`] order.
fn dominant_stage(stage_s: &[f64; Stage::ALL.len()]) -> Stage {
    let mut best = 0;
    for (i, &v) in stage_s.iter().enumerate() {
        if v > stage_s[best] {
            best = i;
        }
    }
    Stage::ALL[best]
}

/// Length of the union of `ivs` clipped to `[lo, hi]`, in µs.
fn union_len_clipped(ivs: &[(u64, u64)], lo: u64, hi: u64) -> u64 {
    let mut clipped: Vec<(u64, u64)> =
        ivs.iter().map(|&(a, b)| (a.max(lo), b.min(hi))).filter(|&(a, b)| b > a).collect();
    clipped.sort_unstable();
    let mut len = 0;
    let mut cursor = 0u64;
    let mut started = false;
    for (a, b) in clipped {
        if !started || a > cursor {
            len += b - a;
            cursor = b;
            started = true;
        } else if b > cursor {
            len += b - cursor;
            cursor = b;
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;

    #[test]
    fn additive_tree_attributes_exactly() {
        let r = Recorder::new();
        let root = r.sim_span("pipeline", Some(1), 0, 0.0, 10.0);
        r.sim_child(root, "pipeline.queue_wait", Some(1), 0, 0.0, 1.0);
        r.sim_child(root, "pipeline.compress", Some(1), 0, 1.0, 4.0);
        r.sim_child(root, "pipeline.group", Some(1), 0, 4.0, 4.5);
        r.sim_child(root, "pipeline.transfer", Some(1), 0, 4.5, 9.0);
        r.sim_child(root, "pipeline.decompress", Some(1), 0, 9.0, 10.0);
        let rep = analyze(&r.for_job(1)).unwrap();
        assert_eq!(rep.job, Some(1));
        assert!((rep.critical_path_s - 10.0).abs() < 1e-9);
        assert!((rep.total_s - 10.0).abs() < 1e-9, "additive tree has no overlap, total {}", rep.total_s);
        assert!((rep.stage(Stage::Transfer) - 4.5).abs() < 1e-9);
        assert!((rep.stage(Stage::Compress) - 3.0).abs() < 1e-9);
        assert_eq!(rep.dominant, Stage::Transfer);
        assert_eq!(rep.stage(Stage::Other), 0.0, "children fully cover the root");
        let sum: f64 = rep.stage_s.iter().sum();
        assert!((sum - rep.critical_path_s).abs() < 1e-9);
    }

    #[test]
    fn overlapped_lanes_prefer_the_primary_lane() {
        // Sentinel-style overlap: transfer on lane 0 from t=1, compression
        // running concurrently on lane 1 from t=1 to t=6.
        let r = Recorder::new();
        let root = r.sim_span("pipeline.overlapped", Some(2), 0, 0.0, 10.0);
        r.sim_child(root, "pipeline.queue_wait", Some(2), 0, 0.0, 1.0);
        r.sim_child(root, "pipeline.transfer", Some(2), 0, 1.0, 10.0);
        r.sim_child(root, "pipeline.compress", Some(2), 1, 1.0, 6.0);
        let rep = analyze(&r.for_job(2)).unwrap();
        assert!((rep.critical_path_s - 10.0).abs() < 1e-9);
        // Serialized work: 1 wait + 9 transfer + 5 compress = 15 s.
        assert!((rep.total_s - 15.0).abs() < 1e-9);
        assert!((rep.overlap_savings_s() - 5.0).abs() < 1e-9);
        // The overlap window [1, 6] counts as transfer (lane 0), not compress.
        assert!((rep.stage(Stage::Transfer) - 9.0).abs() < 1e-9);
        assert_eq!(rep.stage(Stage::Compress), 0.0);
        assert_eq!(rep.dominant, Stage::Transfer);
    }

    #[test]
    fn deeper_spans_win_and_backoff_counts_as_queue_wait() {
        // A service envelope over the pipeline tree, with a retry round
        // whose backoff/re-offer children sit deeper than the envelope.
        let r = Recorder::new();
        let job = r.sim_span("svc.job", Some(3), 2, 0.0, 20.0);
        let retry = r.sim_child(job, "svc.retry", Some(3), 2, 10.0, 20.0);
        r.sim_child(retry, "svc.retry.backoff", Some(3), 2, 10.0, 14.0);
        r.sim_child(retry, "svc.retry.transfer", Some(3), 2, 14.0, 20.0);
        let root = r.sim_span("pipeline", Some(3), 0, 0.0, 10.0);
        r.sim_child(root, "pipeline.transfer", Some(3), 0, 0.0, 10.0);
        let rep = analyze(&r.for_job(3)).unwrap();
        assert!((rep.critical_path_s - 20.0).abs() < 1e-9);
        assert!((rep.stage(Stage::QueueWait) - 4.0).abs() < 1e-9, "backoff window");
        assert!((rep.stage(Stage::Transfer) - 16.0).abs() < 1e-9, "first offer + retry re-offer");
        assert_eq!(rep.dominant, Stage::Transfer);
    }

    #[test]
    fn aggregate_sums_and_recomputes_dominant() {
        let r = Recorder::new();
        let a = r.sim_span("pipeline", Some(1), 0, 0.0, 4.0);
        r.sim_child(a, "pipeline.compress", Some(1), 0, 0.0, 4.0);
        let b = r.sim_span("pipeline", Some(2), 0, 0.0, 10.0);
        r.sim_child(b, "pipeline.transfer", Some(2), 0, 0.0, 10.0);
        let reports = analyze_jobs(&r.spans());
        assert_eq!(reports.len(), 2);
        let agg = aggregate(&reports).unwrap();
        assert_eq!(agg.job, None);
        assert!((agg.critical_path_s - 14.0).abs() < 1e-9);
        assert_eq!(agg.dominant, Stage::Transfer);
        assert!(aggregate(&[]).is_none());
    }

    #[test]
    fn stream_stalls_are_attributed_distinctly_from_transfer() {
        // Streamed pipeline: a transfer window with two back-pressure stalls
        // recorded as deeper children. The stall intervals must come out of
        // the transfer bucket and land in Stage::Stall.
        let r = Recorder::new();
        let root = r.sim_span("pipeline.streamed", Some(7), 0, 0.0, 12.0);
        let transfer = r.sim_child(root, "pipeline.transfer", Some(7), 0, 2.0, 12.0);
        r.sim_child(transfer, "pipeline.transfer.stream_stall", Some(7), 0, 3.0, 4.0);
        r.sim_child(transfer, "pipeline.transfer.stream_stall", Some(7), 0, 8.0, 10.5);
        r.sim_child(root, "pipeline.compress", Some(7), 1, 0.0, 9.0);
        let rep = analyze(&r.for_job(7)).unwrap();
        assert_eq!(Stage::classify("pipeline.transfer.stream_stall"), Stage::Stall);
        assert!((rep.critical_path_s - 12.0).abs() < 1e-9);
        assert!((rep.stage(Stage::Stall) - 3.5).abs() < 1e-9, "stall {}", rep.stage(Stage::Stall));
        assert!((rep.stage(Stage::Transfer) - 6.5).abs() < 1e-9, "transfer {}", rep.stage(Stage::Transfer));
        // Compress only shows where nothing deeper covers the lane-0 window.
        assert!((rep.stage(Stage::Compress) - 2.0).abs() < 1e-9);
        assert_eq!(rep.dominant, Stage::Transfer);
    }

    #[test]
    fn wall_spans_and_empty_input_are_ignored() {
        let r = Recorder::new();
        {
            let _g = r.wall_span("compress.real", Some(9), 0);
        }
        assert!(analyze(&r.for_job(9)).is_none(), "wall spans alone yield no sim report");
        assert!(analyze(&[]).is_none());
    }
}
