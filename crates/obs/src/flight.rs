//! Flight recorder: an always-on, lock-light ring of recent events.
//!
//! Post-mortem forensics need the *last few thousand things that happened*,
//! not a complete history: log records, span opens/closes, counter deltas,
//! and service state transitions land in a bounded [`FlightRecorder`] ring
//! that overwrites its oldest entries. When a job fails, a retry budget is
//! exhausted, or an SLO breaches, the service snapshots the ring into a
//! self-contained dump (see `ocelot-svc`'s forensics module).
//!
//! The hot path must never block behind a snapshot in progress, so
//! [`FlightRecorder::record`] only *tries* the ring lock (with a brief
//! spin). An event that cannot get the lock is **counted** in
//! [`FlightRecorder::dropped`] rather than silently vanishing — in the
//! happy path (no snapshot racing a recorder) that counter stays 0, and
//! tests assert it.

use crate::log::Level;
use crate::span::Clock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity, in events. Sized so a multi-tenant burst's worth
/// of stage-granularity events fits with room to spare.
pub const DEFAULT_CAPACITY: usize = 4096;

/// How many times `record` retries the ring lock before counting the event
/// as dropped. A push holds the lock for nanoseconds, so this only gives up
/// when a snapshot is cloning the ring.
const SPIN_TRIES: usize = 512;

/// What happened, structurally.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightKind {
    /// A log record that passed the verbosity gate.
    Log {
        /// Severity of the record.
        level: Level,
        /// Logging target (usually the crate or subsystem name).
        target: String,
        /// Formatted message text.
        message: String,
    },
    /// A wall-clock span opened (sim spans are recorded whole on close).
    SpanOpen {
        /// Dotted stage name.
        name: String,
        /// Display lane.
        lane: u32,
    },
    /// A span closed; carries its full bounds on its own clock.
    SpanClose {
        /// Dotted stage name.
        name: String,
        /// Which clock `start_us`/`end_us` are on.
        clock: Clock,
        /// Display lane.
        lane: u32,
        /// Span start, microseconds on `clock`.
        start_us: u64,
        /// Span end, microseconds on `clock`.
        end_us: u64,
    },
    /// A counter moved by `delta` (via `Obs::add`/`Obs::inc`; increments
    /// through cached `Arc<Counter>` handles bypass the recorder).
    Counter {
        /// Metric name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// A labelled state transition (job lifecycle, alert firings).
    State {
        /// Human-readable label, e.g. `"Retrying(2)"` or an alert rule name.
        label: String,
        /// Simulated seconds attached to the transition.
        t_s: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Global record order (gap-free unless events were dropped).
    pub seq: u64,
    /// Microseconds since the recorder's epoch, wall clock.
    pub wall_us: u64,
    /// Job the event belongs to, when known.
    pub job: Option<u64>,
    /// The event payload.
    pub kind: FlightKind,
}

/// A point-in-time copy of the ring plus its loss accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSnapshot {
    /// Events in record order (oldest first).
    pub events: Vec<FlightEvent>,
    /// Events that could not be recorded because the ring lock was held
    /// (e.g. by a concurrent snapshot). 0 in the happy path.
    pub dropped: u64,
    /// Ring capacity the recorder was built with.
    pub capacity: usize,
}

/// Bounded ring of recent [`FlightEvent`]s with non-blocking recording.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            epoch: Instant::now(),
            capacity,
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, evicting the oldest entry when full. Never
    /// blocks: if the ring lock stays contended (a snapshot is in
    /// progress), the event is counted in [`FlightRecorder::dropped`].
    pub fn record(&self, job: Option<u64>, kind: FlightKind) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent { seq, wall_us: self.epoch.elapsed().as_micros() as u64, job, kind };
        for _ in 0..SPIN_TRIES {
            if let Ok(mut ring) = self.ring.try_lock() {
                if ring.len() >= self.capacity {
                    ring.pop_front();
                }
                ring.push_back(event);
                return;
            }
            std::hint::spin_loop();
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Events recorded so far (including overwritten and dropped ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events lost to ring-lock contention (never silently — always counted).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the ring contents. Recorders racing this call drop (and
    /// count) rather than wait, so keep snapshots off hot paths.
    pub fn snapshot(&self) -> FlightSnapshot {
        let events: Vec<FlightEvent> = self.ring.lock().expect("flight ring poisoned").iter().cloned().collect();
        FlightSnapshot { events, dropped: self.dropped(), capacity: self.capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str) -> FlightKind {
        FlightKind::Counter { name: name.to_string(), delta: 1 }
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(Some(i), counter("x"));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(fr.recorded(), 5);
        assert_eq!(snap.dropped, 0, "no contention, nothing dropped");
    }

    #[test]
    fn happy_path_records_everything_with_zero_drops() {
        let fr = std::sync::Arc::new(FlightRecorder::new(DEFAULT_CAPACITY));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let fr = fr.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        fr.record(Some(t * 1000 + i), counter("spin"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Concurrent recorders contend only for nanoseconds; the spin
        // budget absorbs that, so nothing is dropped without a snapshot.
        assert_eq!(fr.dropped(), 0);
        assert_eq!(fr.len(), 800);
    }

    #[test]
    fn records_during_a_held_snapshot_are_counted_not_silent() {
        let fr = FlightRecorder::new(8);
        fr.record(None, counter("before"));
        let held = fr.ring.lock().unwrap(); // simulate a snapshot holding the ring
        fr.record(None, counter("during"));
        fr.record(None, counter("during"));
        drop(held);
        fr.record(None, counter("after"));
        assert_eq!(fr.dropped(), 2, "both contended records must be accounted for");
        let snap = fr.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 2);
        // Sequence numbers reveal the gap left by the dropped events.
        assert_eq!(snap.events.last().unwrap().seq, 3);
    }

    #[test]
    fn events_carry_kind_payloads() {
        let fr = FlightRecorder::new(8);
        fr.record(Some(7), FlightKind::Log { level: Level::Warn, target: "svc".into(), message: "retrying".into() });
        fr.record(
            Some(7),
            FlightKind::SpanClose {
                name: "pipeline.transfer".into(),
                clock: Clock::Sim,
                lane: 0,
                start_us: 0,
                end_us: 2_000_000,
            },
        );
        fr.record(Some(7), FlightKind::State { label: "Done".into(), t_s: 2.0 });
        let snap = fr.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert!(matches!(&snap.events[0].kind, FlightKind::Log { level: Level::Warn, .. }));
        assert!(matches!(&snap.events[1].kind, FlightKind::SpanClose { clock: Clock::Sim, .. }));
        assert!(matches!(&snap.events[2].kind, FlightKind::State { .. }));
        assert!(snap.events.iter().all(|e| e.job == Some(7)));
    }
}
