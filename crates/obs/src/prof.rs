//! Continuous profiling: kernel-level attribution for the compression hot
//! path, cheap enough to leave on in production.
//!
//! The span recorder answers "where did this *job* spend its time" at stage
//! granularity; `prof` answers "where did the *CPU* spend its cycles" at
//! kernel granularity — predict/quantize sweep, Huffman coding, dictionary
//! passes, framing/CRC — per chunk, on every worker thread.
//!
//! Design:
//!
//! * **Probes** ([`probe`]) are RAII guards around one kernel invocation.
//!   They record elapsed nanos, TSC ticks (x86-64; 0 elsewhere), and bytes
//!   into a plain thread-local accumulator — no atomics, no locks, two
//!   clock reads. When no profiler is installed the guard is a single
//!   relaxed atomic load and nothing else, so instrumented hot paths cost
//!   effectively nothing disabled.
//! * **Scopes** ([`scope`]) bracket a unit of work (one chunk task, one
//!   stream drain). On scope exit the thread-local accumulator is drained
//!   into the thread's [`ThreadSink`]: cumulative per-(scope, kernel)
//!   atomic totals plus one slot of an **epoch-tagged lock-free ring**
//!   (single-writer seqlock per slot), so a reader can attribute work to a
//!   specific measurement window ([`Profiler::advance_epoch`] /
//!   [`Profiler::epoch_kernels`]) without stopping the world.
//! * **Self-overhead** is measured, not assumed: probe cost is calibrated
//!   at construction and `probes × cost / profiled-time` is exported as the
//!   [`OVERHEAD_RATIO_GAUGE`] gauge and via
//!   [`Profiler::overhead_ratio`]. The budget is < 2 % of hot-path time.
//! * **Exports**: cumulative totals render as collapsed-stack "folded"
//!   text ([`Profiler::folded`], `scope;kernel <microseconds>` — feed it
//!   straight to `flamegraph.pl`), and per-kernel wall-seconds histograms /
//!   byte counters are published into the attached [`Obs`] registry under
//!   [`KERNEL_METRIC_PREFIX`] so `ocelot metrics` and the analyzer see
//!   kernel attribution alongside stage attribution.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::Obs;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Gauge name for the measured profiler self-overhead ratio
/// (`probe bookkeeping time / profiled scope time`).
pub const OVERHEAD_RATIO_GAUGE: &str = "ocelot_obs_prof_overhead_ratio";

/// Metric-name prefix for the per-kernel exports: histograms
/// `{prefix}{kernel}_seconds` (per-scope-drain wall seconds) and counters
/// `{prefix}{kernel}_bytes_total`. The kernels are the `sz` codec's, hence
/// the `ocelot_sz_` namespace even though publishing lives here.
pub const KERNEL_METRIC_PREFIX: &str = "ocelot_sz_kernel_";

/// Hot-path kernels the codec attributes cycles to.
///
/// `Predict` covers the fused predict+quantize sweep (SZx-style single
/// pass; the quantizer never runs as a separate loop, so splitting it would
/// itself distort the measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Fused predictor + quantizer sweep (compress) or reconstruction
    /// (decompress).
    Predict,
    /// Huffman table build + bit emission.
    HuffmanEncode,
    /// Huffman bit-stream decode.
    HuffmanDecode,
    /// LZ dictionary pass (either direction).
    Lz,
    /// Run-length pass (either direction).
    Rle,
    /// Chunk framing: section prefixes, container assembly, CRC-32.
    FrameCrc,
    /// ZFP-style block transform (either direction).
    Transform,
    /// Anything else bracketed by a probe.
    Other,
}

/// Number of kernels (array dimension for the per-thread tables).
pub const N_KERNELS: usize = 8;

impl Kernel {
    /// Every kernel, in stable export order.
    pub const ALL: [Kernel; N_KERNELS] = [
        Kernel::Predict,
        Kernel::HuffmanEncode,
        Kernel::HuffmanDecode,
        Kernel::Lz,
        Kernel::Rle,
        Kernel::FrameCrc,
        Kernel::Transform,
        Kernel::Other,
    ];

    /// Stable lowercase label used in metric names and folded stacks.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Predict => "predict",
            Kernel::HuffmanEncode => "huffman_encode",
            Kernel::HuffmanDecode => "huffman_decode",
            Kernel::Lz => "lz",
            Kernel::Rle => "rle",
            Kernel::FrameCrc => "frame_crc",
            Kernel::Transform => "transform",
            Kernel::Other => "other",
        }
    }

    fn index(&self) -> usize {
        *self as usize
    }

    /// Kernel with export index `i` (inverse of the `ALL` ordering).
    pub fn from_index(i: usize) -> Kernel {
        Kernel::ALL[i]
    }
}

/// A profiling scope: the folded-stack root a drain attributes its kernels
/// to. The set is closed so per-thread tables stay fixed-size arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeId(u8);

/// Number of scopes (array dimension for the per-thread tables).
pub const N_SCOPES: usize = 4;

impl ScopeId {
    /// One chunk compression task (worker thread) or the whole compress
    /// call (calling thread).
    pub const COMPRESS: ScopeId = ScopeId(0);
    /// One chunk decode task, including decode-on-arrival stream drains.
    pub const DECOMPRESS: ScopeId = ScopeId(1);
    /// Transfer-session / executor work that is neither codec direction.
    pub const SESSION: ScopeId = ScopeId(2);
    /// Fallback scope.
    pub const OTHER: ScopeId = ScopeId(3);

    /// Stable dotted label used as the folded-stack root frame.
    pub fn name(&self) -> &'static str {
        match self.0 {
            0 => "compress.chunk",
            1 => "decompress.chunk",
            2 => "session",
            _ => "other",
        }
    }

    /// Every scope, in stable export order.
    pub const ALL: [ScopeId; N_SCOPES] = [ScopeId(0), ScopeId(1), ScopeId(2), ScopeId(3)];
}

/// TSC ticks where the architecture exposes them cheaply; 0 elsewhere
/// (nanos remain the portable attribution unit).
#[inline]
fn ticks_now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: RDTSC has no preconditions; it only reads the TSC.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

/// Fields accumulated per (scope, kernel): calls, nanos, ticks, bytes.
const FIELDS: usize = 4;
const F_CALLS: usize = 0;
const F_NANOS: usize = 1;
const F_TICKS: usize = 2;
const F_BYTES: usize = 3;

/// Ring capacity per thread. A slot is one scope drain (one chunk), so 256
/// slots cover the recent past of even fine-grained chunking.
const RING_SLOTS: usize = 256;

#[derive(Default)]
struct LocalAccum {
    /// `[kernel][field]` running totals since the last drain.
    cells: [[u64; FIELDS]; N_KERNELS],
    /// Probe guards closed since the last drain (for overhead accounting).
    probes: u64,
    dirty: bool,
}

thread_local! {
    static ACCUM: RefCell<LocalAccum> = RefCell::new(LocalAccum::default());
    /// Cached (profiler identity, sink) so a drain does not re-register.
    static SINK: RefCell<Option<(usize, Arc<ThreadSink>)>> = const { RefCell::new(None) };
}

/// One epoch-tagged drain record in a thread's ring (single-writer seqlock).
struct RingSlot {
    /// Even = stable, odd = mid-write.
    seq: AtomicU64,
    epoch: AtomicU64,
    scope: AtomicU64,
    scope_nanos: AtomicU64,
    /// `[kernel * FIELDS + field]`.
    cells: Vec<AtomicU64>,
}

impl RingSlot {
    fn new() -> Self {
        RingSlot {
            seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            scope: AtomicU64::new(0),
            scope_nanos: AtomicU64::new(0),
            cells: (0..N_KERNELS * FIELDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Per-thread sink: cumulative totals plus the recent-drain ring. The
/// owning thread is the only writer; snapshots read concurrently.
pub struct ThreadSink {
    /// `[scope][kernel][field]` flattened; monotonically increasing.
    totals: Vec<AtomicU64>,
    /// `[scope]` wall nanos spent inside scopes.
    scope_nanos: Vec<AtomicU64>,
    ring: Vec<RingSlot>,
    head: AtomicU64,
}

impl std::fmt::Debug for ThreadSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadSink").field("drains", &self.head.load(Ordering::Relaxed)).finish()
    }
}

fn total_idx(scope: usize, kernel: usize, field: usize) -> usize {
    (scope * N_KERNELS + kernel) * FIELDS + field
}

impl ThreadSink {
    fn new() -> Self {
        ThreadSink {
            totals: (0..N_SCOPES * N_KERNELS * FIELDS).map(|_| AtomicU64::new(0)).collect(),
            scope_nanos: (0..N_SCOPES).map(|_| AtomicU64::new(0)).collect(),
            ring: (0..RING_SLOTS).map(|_| RingSlot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Writes one drain: bumps cumulative totals and stamps a ring slot.
    fn drain(&self, epoch: u64, scope: ScopeId, scope_ns: u64, accum: &LocalAccum) {
        let s = scope.0 as usize;
        for k in 0..N_KERNELS {
            for f in 0..FIELDS {
                let v = accum.cells[k][f];
                if v > 0 {
                    self.totals[total_idx(s, k, f)].fetch_add(v, Ordering::Relaxed);
                }
            }
        }
        self.scope_nanos[s].fetch_add(scope_ns, Ordering::Relaxed);
        let slot = &self.ring[(self.head.fetch_add(1, Ordering::Relaxed) as usize) % RING_SLOTS];
        slot.seq.fetch_add(1, Ordering::Release); // odd: writers in
        slot.epoch.store(epoch, Ordering::Relaxed);
        slot.scope.store(scope.0 as u64, Ordering::Relaxed);
        slot.scope_nanos.store(scope_ns, Ordering::Relaxed);
        for k in 0..N_KERNELS {
            for f in 0..FIELDS {
                slot.cells[k * FIELDS + f].store(accum.cells[k][f], Ordering::Relaxed);
            }
        }
        slot.seq.fetch_add(1, Ordering::Release); // even: stable
    }

    /// Reads one slot if it is stable and tagged `epoch`; retries a torn
    /// read a few times, then skips (stats ring, not a ledger).
    fn read_slot(&self, i: usize, epoch: u64) -> Option<(ScopeId, u64, [[u64; FIELDS]; N_KERNELS])> {
        let slot = &self.ring[i];
        for _ in 0..4 {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                return None; // never written, or mid-write
            }
            if slot.epoch.load(Ordering::Relaxed) != epoch {
                return None;
            }
            let scope = ScopeId(slot.scope.load(Ordering::Relaxed).min(N_SCOPES as u64 - 1) as u8);
            let scope_ns = slot.scope_nanos.load(Ordering::Relaxed);
            let mut cells = [[0u64; FIELDS]; N_KERNELS];
            for (k, row) in cells.iter_mut().enumerate() {
                for (f, cell) in row.iter_mut().enumerate() {
                    *cell = slot.cells[k * FIELDS + f].load(Ordering::Relaxed);
                }
            }
            if slot.seq.load(Ordering::Acquire) == s1 {
                return Some((scope, scope_ns, cells));
            }
        }
        None
    }
}

/// Attributed totals for one (scope, kernel) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStat {
    /// Folded-stack root the kernel ran under.
    pub scope: &'static str,
    /// The kernel.
    pub kernel: Kernel,
    /// Probe invocations.
    pub calls: u64,
    /// Attributed wall nanoseconds.
    pub nanos: u64,
    /// Attributed TSC ticks (0 on non-x86-64).
    pub ticks: u64,
    /// Bytes the kernel consumed or produced.
    pub bytes: u64,
}

impl KernelStat {
    /// Attributed wall seconds.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Kernel throughput over its attributed time (0 when unmeasured).
    pub fn bytes_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.bytes as f64 / self.seconds()
        }
    }
}

/// A point-in-time aggregation across every thread.
#[derive(Debug, Clone)]
pub struct ProfSnapshot {
    /// Non-empty (scope, kernel) totals in stable (scope, kernel) order.
    pub stats: Vec<KernelStat>,
    /// Wall nanos spent inside each scope, in scope order.
    pub scope_nanos: Vec<(&'static str, u64)>,
    /// Total probe guards closed.
    pub probes: u64,
    /// Measured bookkeeping overhead ratio (see [`Profiler::overhead_ratio`]).
    pub overhead_ratio: f64,
}

/// The profiler: registry of per-thread sinks plus calibration state.
/// Construct with [`Profiler::with_obs`] (publishes kernel metrics) or
/// [`Profiler::detached`], then [`install_global`] it so probes activate.
pub struct Profiler {
    obs: Obs,
    epoch: AtomicU64,
    sinks: Mutex<Vec<Arc<ThreadSink>>>,
    probe_cost_nanos: f64,
    probes_total: AtomicU64,
    scope_nanos_total: AtomicU64,
    overhead_gauge: Option<Arc<Gauge>>,
    kernel_seconds: Vec<Option<Arc<Histogram>>>,
    kernel_bytes: Vec<Option<Arc<Counter>>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("probes", &self.probes_total.load(Ordering::Relaxed))
            .finish()
    }
}

impl Profiler {
    /// Profiler that publishes per-kernel histograms/counters and the
    /// overhead gauge into `obs` on every scope drain.
    pub fn with_obs(obs: Obs) -> Arc<Profiler> {
        let (overhead_gauge, kernel_seconds, kernel_bytes) = match obs.registry() {
            Some(reg) => {
                let g = reg.gauge(OVERHEAD_RATIO_GAUGE, "Measured profiler self-overhead / profiled time");
                let hs = Kernel::ALL
                    .iter()
                    .map(|k| {
                        Some(reg.histogram(
                            &format!("{KERNEL_METRIC_PREFIX}{}_seconds", k.name()),
                            "Wall seconds one scope drain attributed to this hot-path kernel",
                        ))
                    })
                    .collect();
                let cs = Kernel::ALL
                    .iter()
                    .map(|k| {
                        Some(reg.counter(
                            &format!("{KERNEL_METRIC_PREFIX}{}_bytes_total", k.name()),
                            "Bytes processed by this hot-path kernel",
                        ))
                    })
                    .collect();
                (Some(g), hs, cs)
            }
            None => (None, vec![None; N_KERNELS], vec![None; N_KERNELS]),
        };
        Arc::new(Profiler {
            obs,
            epoch: AtomicU64::new(0),
            sinks: Mutex::new(Vec::new()),
            probe_cost_nanos: calibrate_probe_cost(),
            probes_total: AtomicU64::new(0),
            scope_nanos_total: AtomicU64::new(0),
            overhead_gauge,
            kernel_seconds,
            kernel_bytes,
        })
    }

    /// Profiler with no metrics side-channel (rings and folded export only).
    pub fn detached() -> Arc<Profiler> {
        Profiler::with_obs(Obs::disabled())
    }

    /// The observability handle this profiler publishes into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Current epoch tag.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Starts a new measurement window; subsequent drains carry the new
    /// tag. Returns the new epoch.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Calibrated cost of one probe open/close, in nanoseconds.
    pub fn probe_cost_nanos(&self) -> f64 {
        self.probe_cost_nanos
    }

    /// Measured self-overhead: calibrated probe cost × probes closed,
    /// divided by total profiled scope time. 0 until something was profiled.
    pub fn overhead_ratio(&self) -> f64 {
        let scope_ns = self.scope_nanos_total.load(Ordering::Relaxed);
        if scope_ns == 0 {
            return 0.0;
        }
        self.probes_total.load(Ordering::Relaxed) as f64 * self.probe_cost_nanos / scope_ns as f64
    }

    fn register_sink(&self) -> Arc<ThreadSink> {
        let sink = Arc::new(ThreadSink::new());
        self.sinks.lock().expect("profiler sinks poisoned").push(sink.clone());
        sink
    }

    /// Cumulative totals across every thread.
    pub fn snapshot(&self) -> ProfSnapshot {
        let sinks = self.sinks.lock().expect("profiler sinks poisoned").clone();
        let mut cells = [[[0u64; FIELDS]; N_KERNELS]; N_SCOPES];
        let mut scope_ns = [0u64; N_SCOPES];
        for sink in &sinks {
            for (s, per_scope) in cells.iter_mut().enumerate() {
                scope_ns[s] += sink.scope_nanos[s].load(Ordering::Relaxed);
                for (k, per_kernel) in per_scope.iter_mut().enumerate() {
                    for (f, cell) in per_kernel.iter_mut().enumerate() {
                        *cell += sink.totals[total_idx(s, k, f)].load(Ordering::Relaxed);
                    }
                }
            }
        }
        let mut stats = Vec::new();
        for scope in ScopeId::ALL {
            for kernel in Kernel::ALL {
                let c = cells[scope.0 as usize][kernel.index()];
                if c[F_CALLS] > 0 {
                    stats.push(KernelStat {
                        scope: scope.name(),
                        kernel,
                        calls: c[F_CALLS],
                        nanos: c[F_NANOS],
                        ticks: c[F_TICKS],
                        bytes: c[F_BYTES],
                    });
                }
            }
        }
        ProfSnapshot {
            stats,
            scope_nanos: ScopeId::ALL.iter().map(|s| (s.name(), scope_ns[s.0 as usize])).collect(),
            probes: self.probes_total.load(Ordering::Relaxed),
            overhead_ratio: self.overhead_ratio(),
        }
    }

    /// Kernel totals attributed to drains tagged `epoch`, merged across
    /// scopes and threads, in kernel order. Bounded by ring capacity: only
    /// the most recent `RING_SLOTS`-ish drains per thread are visible.
    pub fn epoch_kernels(&self, epoch: u64) -> Vec<KernelStat> {
        let sinks = self.sinks.lock().expect("profiler sinks poisoned").clone();
        let mut cells = [[0u64; FIELDS]; N_KERNELS];
        for sink in &sinks {
            for i in 0..RING_SLOTS {
                if let Some((_, _, slot)) = sink.read_slot(i, epoch) {
                    for k in 0..N_KERNELS {
                        for f in 0..FIELDS {
                            cells[k][f] += slot[k][f];
                        }
                    }
                }
            }
        }
        Kernel::ALL
            .iter()
            .filter(|k| cells[k.index()][F_CALLS] > 0)
            .map(|&kernel| {
                let c = cells[kernel.index()];
                KernelStat {
                    scope: "epoch",
                    kernel,
                    calls: c[F_CALLS],
                    nanos: c[F_NANOS],
                    ticks: c[F_TICKS],
                    bytes: c[F_BYTES],
                }
            })
            .collect()
    }

    /// Collapsed-stack ("folded") export of the cumulative totals, one
    /// `scope;kernel <microseconds>` line per attributed pair plus a
    /// `scope <microseconds>` self-time line for time inside the scope not
    /// attributed to any kernel. Pipe to `flamegraph.pl` as-is.
    pub fn folded(&self) -> String {
        use std::fmt::Write as _;
        let snap = self.snapshot();
        let mut out = String::new();
        for (scope, total_ns) in &snap.scope_nanos {
            if *total_ns == 0 {
                continue;
            }
            let kernel_ns: u64 = snap.stats.iter().filter(|s| s.scope == *scope).map(|s| s.nanos).sum();
            let self_us = total_ns.saturating_sub(kernel_ns) / 1_000;
            if self_us > 0 || kernel_ns == 0 {
                let _ = writeln!(out, "{scope} {self_us}");
            }
            for s in snap.stats.iter().filter(|s| s.scope == *scope) {
                let _ = writeln!(out, "{scope};{} {}", s.kernel.name(), (s.nanos / 1_000).max(1));
            }
        }
        out
    }

    /// Test/golden hook: records one synthetic drain directly, bypassing
    /// the clock, so exports are reproducible.
    pub fn record_sample(&self, scope: ScopeId, kernel: Kernel, nanos: u64, bytes: u64) {
        let mut accum = LocalAccum::default();
        let cell = &mut accum.cells[kernel.index()];
        cell[F_CALLS] = 1;
        cell[F_NANOS] = nanos;
        cell[F_BYTES] = bytes;
        accum.probes = 1;
        let sink = self.register_sink();
        sink.drain(self.epoch(), scope, nanos, &accum);
        self.probes_total.fetch_add(1, Ordering::Relaxed);
        self.scope_nanos_total.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Publishes a drained accumulation into the obs registry.
    fn publish(&self, accum: &LocalAccum) {
        for k in 0..N_KERNELS {
            let c = accum.cells[k];
            if c[F_CALLS] == 0 {
                continue;
            }
            if let Some(h) = &self.kernel_seconds[k] {
                h.observe(c[F_NANOS] as f64 / 1e9);
            }
            if let Some(b) = &self.kernel_bytes[k] {
                if c[F_BYTES] > 0 {
                    b.add(c[F_BYTES]);
                }
            }
        }
        if let Some(g) = &self.overhead_gauge {
            g.set(self.overhead_ratio());
        }
    }
}

/// Times the real probe bookkeeping (two clock reads + a TSC read + the
/// thread-local update) so the overhead gauge reflects this machine.
fn calibrate_probe_cost() -> f64 {
    const N: u32 = 4096;
    let t0 = Instant::now();
    for _ in 0..N {
        let g = ProbeGuard { start: Some((Instant::now(), ticks_now())), kernel: Kernel::Other, bytes: 0 };
        drop(g);
    }
    let per = t0.elapsed().as_nanos() as f64 / N as f64;
    // Discard what the calibration loop itself accumulated.
    ACCUM.with(|a| *a.borrow_mut() = LocalAccum::default());
    per
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CURRENT: OnceLock<RwLock<Option<Arc<Profiler>>>> = OnceLock::new();

fn current_cell() -> &'static RwLock<Option<Arc<Profiler>>> {
    CURRENT.get_or_init(|| RwLock::new(None))
}

/// Installs `profiler` as the process-wide profiler; probes and scopes
/// activate on every thread. Re-installable, like [`crate::install_global`].
pub fn install_global(profiler: &Arc<Profiler>) {
    *current_cell().write().expect("prof global poisoned") = Some(profiler.clone());
    ACTIVE.store(true, Ordering::Release);
}

/// Deactivates profiling; in-flight thread-local accumulations are
/// discarded at their next scope exit.
pub fn uninstall_global() {
    ACTIVE.store(false, Ordering::Release);
    *current_cell().write().expect("prof global poisoned") = None;
}

/// The installed profiler, if any.
pub fn global() -> Option<Arc<Profiler>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    current_cell().read().expect("prof global poisoned").clone()
}

/// True when a profiler is installed (one relaxed load — the hot-path
/// fast-out).
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Opens a kernel probe. Disabled: one relaxed load, no clock read.
#[inline]
pub fn probe(kernel: Kernel, bytes: usize) -> ProbeGuard {
    if !is_active() {
        return ProbeGuard { start: None, kernel, bytes: 0 };
    }
    ProbeGuard { start: Some((Instant::now(), ticks_now())), kernel, bytes: bytes as u64 }
}

/// RAII guard for one kernel invocation; accumulates into thread-local
/// state on drop (no locks, no atomics).
#[derive(Debug)]
pub struct ProbeGuard {
    start: Option<(Instant, u64)>,
    kernel: Kernel,
    bytes: u64,
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        let Some((t0, ticks0)) = self.start.take() else { return };
        let nanos = t0.elapsed().as_nanos() as u64;
        let ticks = ticks_now().saturating_sub(ticks0);
        ACCUM.with(|a| {
            let mut a = a.borrow_mut();
            let cell = &mut a.cells[self.kernel.index()];
            cell[F_CALLS] += 1;
            cell[F_NANOS] += nanos;
            cell[F_TICKS] += ticks;
            cell[F_BYTES] += self.bytes;
            a.probes += 1;
            a.dirty = true;
        });
    }
}

/// Opens a profiling scope; on exit the thread-local accumulation since
/// scope entry is drained into the profiler (ring + totals + metrics).
/// Disabled: one relaxed load.
#[inline]
pub fn scope(scope: ScopeId) -> ScopeGuard {
    if !is_active() {
        return ScopeGuard { start: None, scope };
    }
    ScopeGuard { start: Some(Instant::now()), scope }
}

/// RAII guard for a profiling scope.
#[derive(Debug)]
pub struct ScopeGuard {
    start: Option<Instant>,
    scope: ScopeId,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let Some(t0) = self.start.take() else { return };
        let accum = ACCUM.with(|a| {
            let mut a = a.borrow_mut();
            if !a.dirty {
                return None;
            }
            Some(std::mem::take(&mut *a))
        });
        let Some(accum) = accum else { return };
        let Some(profiler) = global() else { return }; // raced uninstall: discard
        let scope_ns = t0.elapsed().as_nanos() as u64;
        let key = Arc::as_ptr(&profiler) as usize;
        let sink = SINK.with(|s| {
            let mut s = s.borrow_mut();
            match &*s {
                Some((k, sink)) if *k == key => sink.clone(),
                _ => {
                    let sink = profiler.register_sink();
                    *s = Some((key, sink.clone()));
                    sink
                }
            }
        });
        sink.drain(profiler.epoch(), self.scope, scope_ns, &accum);
        profiler.probes_total.fetch_add(accum.probes, Ordering::Relaxed);
        profiler.scope_nanos_total.fetch_add(scope_ns, Ordering::Relaxed);
        profiler.publish(&accum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-profiler tests share process state; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spin(iters: u64) -> u64 {
        let mut x = 1u64;
        for i in 0..iters {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x)
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = lock();
        uninstall_global();
        {
            let _s = scope(ScopeId::COMPRESS);
            let _p = probe(Kernel::Predict, 1024);
            spin(100);
        }
        assert!(global().is_none());
        assert!(!is_active());
    }

    #[test]
    fn probes_attribute_to_scope_and_kernel() {
        let _g = lock();
        let obs = Obs::enabled();
        let prof = Profiler::with_obs(obs.clone());
        install_global(&prof);
        {
            let _s = scope(ScopeId::COMPRESS);
            {
                let _p = probe(Kernel::Predict, 4096);
                spin(20_000);
            }
            {
                let _p = probe(Kernel::HuffmanEncode, 512);
                spin(5_000);
            }
        }
        {
            let _s = scope(ScopeId::DECOMPRESS);
            let _p = probe(Kernel::HuffmanDecode, 512);
            spin(5_000);
        }
        uninstall_global();
        let snap = prof.snapshot();
        let predict = snap.stats.iter().find(|s| s.kernel == Kernel::Predict).expect("predict recorded");
        assert_eq!(predict.scope, "compress.chunk");
        assert_eq!(predict.calls, 1);
        assert_eq!(predict.bytes, 4096);
        assert!(predict.nanos > 0);
        assert!(predict.bytes_per_sec() > 0.0);
        let decode = snap.stats.iter().find(|s| s.kernel == Kernel::HuffmanDecode).expect("decode recorded");
        assert_eq!(decode.scope, "decompress.chunk");
        assert!(snap.probes >= 3);
        // Kernel histograms landed in the registry.
        let reg = obs.registry().unwrap();
        let h = reg.histogram(&format!("{KERNEL_METRIC_PREFIX}predict_seconds"), "");
        assert_eq!(h.count(), 1);
        let b = reg.counter(&format!("{KERNEL_METRIC_PREFIX}predict_bytes_total"), "");
        assert_eq!(b.get(), 4096);
        // The overhead gauge is published and sane.
        let g = reg.gauge(OVERHEAD_RATIO_GAUGE, "");
        assert!(g.get() >= 0.0 && g.get() < 1.0, "ratio {}", g.get());
    }

    #[test]
    fn epochs_window_the_rings() {
        let _g = lock();
        let prof = Profiler::detached();
        install_global(&prof);
        let e1 = prof.advance_epoch();
        {
            let _s = scope(ScopeId::COMPRESS);
            let _p = probe(Kernel::Predict, 100);
            spin(10_000);
        }
        let e2 = prof.advance_epoch();
        {
            let _s = scope(ScopeId::COMPRESS);
            let _p = probe(Kernel::Lz, 200);
            spin(10_000);
        }
        uninstall_global();
        let k1 = prof.epoch_kernels(e1);
        assert_eq!(k1.len(), 1);
        assert_eq!(k1[0].kernel, Kernel::Predict);
        assert_eq!(k1[0].bytes, 100);
        let k2 = prof.epoch_kernels(e2);
        assert_eq!(k2.len(), 1);
        assert_eq!(k2[0].kernel, Kernel::Lz);
        assert!(prof.epoch_kernels(e2 + 7).is_empty());
    }

    #[test]
    fn folded_export_is_flamegraph_shaped() {
        let prof = Profiler::detached();
        prof.record_sample(ScopeId::COMPRESS, Kernel::Predict, 5_000_000, 1 << 20);
        prof.record_sample(ScopeId::COMPRESS, Kernel::HuffmanEncode, 2_000_000, 1 << 18);
        prof.record_sample(ScopeId::DECOMPRESS, Kernel::HuffmanDecode, 1_000_000, 1 << 18);
        let folded = prof.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"compress.chunk;predict 5000"), "{folded}");
        assert!(lines.contains(&"compress.chunk;huffman_encode 2000"), "{folded}");
        assert!(lines.contains(&"decompress.chunk;huffman_decode 1000"), "{folded}");
        // Every line is `frame[;frame] <integer>`.
        for line in &lines {
            let (stack, value) = line.rsplit_once(' ').expect("folded line has a value");
            assert!(!stack.is_empty());
            assert!(value.parse::<u64>().is_ok(), "value not integral in {line}");
        }
    }

    #[test]
    fn overhead_ratio_reflects_probe_cost() {
        let prof = Profiler::detached();
        assert_eq!(prof.overhead_ratio(), 0.0, "nothing profiled yet");
        assert!(prof.probe_cost_nanos() > 0.0);
        // One synthetic probe over a 1 ms scope: ratio = cost / 1 ms.
        prof.record_sample(ScopeId::COMPRESS, Kernel::Predict, 1_000_000, 0);
        let expect = prof.probe_cost_nanos() / 1e6;
        assert!((prof.overhead_ratio() - expect).abs() < 1e-12);
        assert!(prof.snapshot().overhead_ratio > 0.0);
    }

    #[test]
    fn reinstall_swaps_sinks() {
        let _g = lock();
        let a = Profiler::detached();
        install_global(&a);
        {
            let _s = scope(ScopeId::OTHER);
            let _p = probe(Kernel::Other, 1);
            spin(1_000);
        }
        let b = Profiler::detached();
        install_global(&b);
        {
            let _s = scope(ScopeId::OTHER);
            let _p = probe(Kernel::Other, 2);
            spin(1_000);
        }
        uninstall_global();
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa.stats.iter().map(|s| s.bytes).sum::<u64>(), 1);
        assert_eq!(sb.stats.iter().map(|s| s.bytes).sum::<u64>(), 2);
    }

    #[test]
    fn drains_cross_threads() {
        let _g = lock();
        let prof = Profiler::detached();
        install_global(&prof);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = scope(ScopeId::COMPRESS);
                    let _p = probe(Kernel::Predict, 10);
                    spin(10_000);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        uninstall_global();
        let snap = prof.snapshot();
        let predict = snap.stats.iter().find(|s| s.kernel == Kernel::Predict).unwrap();
        assert_eq!(predict.calls, 4);
        assert_eq!(predict.bytes, 40);
    }
}
