//! Declarative SLOs with burn-rate windows, evaluated against a [`Registry`].
//!
//! Rules are *windowed*, not point thresholds: each rule is judged over a
//! fast and a slow sliding window (classic multi-window burn-rate
//! alerting), and fires only when **both** windows breach — a single slow
//! job cannot page, and a sustained regression cannot hide behind one good
//! sample. The engine is incremental: [`SloEngine::tick`] reads the current
//! registry values, appends a sample per rule, evicts samples older than
//! the slow window, and returns the [`Alert`]s that *started* firing this
//! tick (rising edge only; a rule re-arms once its condition clears).
//!
//! Time is whatever monotone clock the caller passes as `now_s`. The
//! transfer service ticks with cumulative *simulated* seconds processed,
//! which makes alert behavior deterministic across machines and test runs.

use crate::metrics::{Histogram, Metric, Registry};
use std::collections::VecDeque;

/// How loudly a breached rule should alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Worth a ticket; not urgent.
    Warning,
    /// Page-worthy.
    Critical,
}

impl Severity {
    /// Stable lowercase label used in journals and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// What a rule measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Error budget burn: `error_counter / total_counter` over each window
    /// must stay below `target_ratio × burn_factor`.
    ErrorRateBurn {
        /// Counter of failed units (e.g. `ocelot_svc_jobs_failed_total`).
        error_counter: String,
        /// Counter of all units (e.g. `ocelot_svc_jobs_submitted_total`).
        total_counter: String,
        /// The SLO's long-term error budget (e.g. 0.01 for 99 %).
        target_ratio: f64,
        /// Burn multiplier that makes short windows actionable (e.g. 14.4).
        burn_factor: f64,
    },
    /// Windowed p99 of a histogram must stay at or below `max_s`.
    LatencyP99 {
        /// Histogram name (e.g. `ocelot_svc_latency_seconds`).
        histogram: String,
        /// Latency objective in the histogram's unit.
        max_s: f64,
    },
    /// Windowed byte rate of a counter must stay at or above `min_bps`.
    /// Only judged once a window has at least half its span of data.
    ThroughputFloor {
        /// Byte counter name (e.g. `ocelot_svc_bytes_transferred_total`).
        bytes_counter: String,
        /// Minimum acceptable rate, units of the counter per second.
        min_bps: f64,
    },
    /// A gauge must stay at or above `min` (e.g. worst delivered PSNR).
    /// Skipped until the gauge is first registered, so an unset quality
    /// gauge cannot fire.
    GaugeFloor {
        /// Gauge name (e.g. `ocelot_svc_worst_psnr_db`).
        gauge: String,
        /// Floor value.
        min: f64,
    },
}

/// One declarative SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name, used in alerts and journals (kebab-case by convention).
    pub name: String,
    /// Alert severity when breached.
    pub severity: Severity,
    /// Fast window, seconds of the caller's clock.
    pub fast_window_s: f64,
    /// Slow window, seconds (≥ fast window).
    pub slow_window_s: f64,
    /// What to measure.
    pub kind: SloKind,
}

/// A rule that started breaching this tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the breached rule.
    pub rule: String,
    /// Severity copied from the rule.
    pub severity: Severity,
    /// Clock value (`now_s`) at which the breach was detected.
    pub t_s: f64,
    /// Measured value over the fast window.
    pub value: f64,
    /// Threshold the value crossed.
    pub threshold: f64,
    /// Human-readable summary.
    pub message: String,
}

#[derive(Debug, Clone)]
struct Sample {
    t_s: f64,
    a: f64,
    b: f64,
    /// Histogram bucket counts at sample time (LatencyP99 rules only).
    buckets: Vec<u64>,
}

#[derive(Debug)]
struct RuleState {
    samples: VecDeque<Sample>,
    firing: bool,
}

/// Evaluates a fixed rule set incrementally. Not `Sync`; callers serialize
/// ticks (the service holds it behind a mutex).
#[derive(Debug)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
}

impl SloEngine {
    /// Creates an engine for `rules`.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let states = rules.iter().map(|_| RuleState { samples: VecDeque::new(), firing: false }).collect();
        SloEngine { rules, states }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// True when `rule` is currently in breach.
    pub fn is_firing(&self, rule: &str) -> bool {
        self.rules.iter().zip(&self.states).any(|(r, s)| r.name == rule && s.firing)
    }

    /// Samples the registry at `now_s` (monotone, caller's clock) and
    /// returns alerts for rules that *started* breaching this tick.
    pub fn tick(&mut self, registry: &Registry, now_s: f64) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for (rule, state) in self.rules.iter().zip(&mut self.states) {
            let Some(sample) = read_sample(&rule.kind, registry, now_s) else {
                state.firing = false;
                continue;
            };
            state.samples.push_back(sample);
            // Keep one sample older than the slow window as the baseline.
            let horizon = now_s - rule.slow_window_s.max(rule.fast_window_s);
            while state.samples.len() >= 2 && state.samples[1].t_s <= horizon {
                state.samples.pop_front();
            }
            match evaluate(rule, &state.samples, now_s) {
                Some((value, threshold, message)) => {
                    if !state.firing {
                        state.firing = true;
                        alerts.push(Alert {
                            rule: rule.name.clone(),
                            severity: rule.severity,
                            t_s: now_s,
                            value,
                            threshold,
                            message,
                        });
                    }
                }
                None => state.firing = false,
            }
        }
        alerts
    }
}

/// Reads the metrics a rule depends on; `None` skips the rule this tick
/// (metric not registered yet, or registered with an unexpected kind).
fn read_sample(kind: &SloKind, registry: &Registry, now_s: f64) -> Option<Sample> {
    let counter = |name: &str| match registry.get(name) {
        Some(Metric::Counter(c)) => Some(c.get() as f64),
        _ => None,
    };
    match kind {
        SloKind::ErrorRateBurn { error_counter, total_counter, .. } => {
            // Errors default to 0 when absent; the total must exist for the
            // ratio to mean anything.
            let total = counter(total_counter)?;
            Some(Sample { t_s: now_s, a: counter(error_counter).unwrap_or(0.0), b: total, buckets: Vec::new() })
        }
        SloKind::LatencyP99 { histogram, .. } => match registry.get(histogram) {
            Some(Metric::Histogram(h)) => {
                Some(Sample { t_s: now_s, a: h.count() as f64, b: 0.0, buckets: h.bucket_counts() })
            }
            _ => None,
        },
        SloKind::ThroughputFloor { bytes_counter, .. } => {
            Some(Sample { t_s: now_s, a: counter(bytes_counter)?, b: 0.0, buckets: Vec::new() })
        }
        SloKind::GaugeFloor { gauge, .. } => match registry.get(gauge) {
            Some(Metric::Gauge(g)) => Some(Sample { t_s: now_s, a: g.get(), b: 0.0, buckets: Vec::new() }),
            _ => None,
        },
    }
}

/// Latest sample at or before `now_s − window_s`, else the oldest one.
fn baseline(samples: &VecDeque<Sample>, now_s: f64, window_s: f64) -> &Sample {
    let cutoff = now_s - window_s;
    samples.iter().rev().find(|s| s.t_s <= cutoff).unwrap_or(&samples[0])
}

/// Evaluates one rule over both windows; `Some((value, threshold, message))`
/// when breached.
fn evaluate(rule: &SloRule, samples: &VecDeque<Sample>, now_s: f64) -> Option<(f64, f64, String)> {
    let cur = samples.back().expect("tick pushed a sample");
    let windows = [rule.fast_window_s, rule.slow_window_s];
    match &rule.kind {
        SloKind::ErrorRateBurn { target_ratio, burn_factor, .. } => {
            let threshold = target_ratio * burn_factor;
            let mut fast_ratio = 0.0;
            for (i, &w) in windows.iter().enumerate() {
                let base = baseline(samples, now_s, w);
                let errors = cur.a - base.a;
                let total = cur.b - base.b;
                if total <= 0.0 {
                    return None;
                }
                let ratio = errors / total;
                if i == 0 {
                    fast_ratio = ratio;
                }
                if ratio < threshold {
                    return None;
                }
            }
            Some((fast_ratio, threshold, format!("error rate {fast_ratio:.3} burned past {threshold:.3}")))
        }
        SloKind::LatencyP99 { max_s, .. } => {
            let mut fast_p99 = 0.0;
            for (i, &w) in windows.iter().enumerate() {
                let base = baseline(samples, now_s, w);
                let p99 = windowed_p99(&cur.buckets, &base.buckets);
                if i == 0 {
                    fast_p99 = p99;
                }
                if p99 <= *max_s {
                    return None;
                }
            }
            Some((fast_p99, *max_s, format!("windowed p99 latency {fast_p99:.3}s exceeds {max_s}s")))
        }
        SloKind::ThroughputFloor { min_bps, .. } => {
            let mut fast_rate = 0.0;
            for (i, &w) in windows.iter().enumerate() {
                let base = baseline(samples, now_s, w);
                let elapsed = now_s - base.t_s;
                if elapsed < 0.5 * w {
                    return None; // window too young to judge
                }
                let rate = (cur.a - base.a) / elapsed;
                if i == 0 {
                    fast_rate = rate;
                }
                if rate >= *min_bps {
                    return None;
                }
            }
            Some((fast_rate, *min_bps, format!("throughput {fast_rate:.3e}/s fell below {min_bps:.3e}/s")))
        }
        SloKind::GaugeFloor { min, .. } => {
            if cur.a >= *min {
                return None;
            }
            Some((cur.a, *min, format!("gauge value {:.3} fell below floor {min:.3}", cur.a)))
        }
    }
}

/// Nearest-rank p99 over the difference of two cumulative bucket snapshots.
fn windowed_p99(cur: &[u64], base: &[u64]) -> f64 {
    let delta = |i: usize| cur[i].saturating_sub(base.get(i).copied().unwrap_or(0));
    let total: u64 = (0..cur.len()).map(delta).sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((0.99 * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for i in 0..cur.len() {
        seen += delta(i);
        if seen >= rank {
            return Histogram::bucket_mid(i);
        }
    }
    Histogram::bucket_mid(cur.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_rule(max_s: f64) -> SloRule {
        SloRule {
            name: "latency-p99".into(),
            severity: Severity::Critical,
            fast_window_s: 10.0,
            slow_window_s: 50.0,
            kind: SloKind::LatencyP99 { histogram: "lat".into(), max_s },
        }
    }

    #[test]
    fn latency_rule_fires_on_rising_edge_only_and_rearms() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "");
        let mut eng = SloEngine::new(vec![latency_rule(1.0)]);
        assert!(eng.tick(&reg, 0.0).is_empty(), "no observations, no alert");

        for t in 1..=6 {
            h.observe(5.0);
            let alerts = eng.tick(&reg, t as f64 * 2.0);
            if t == 1 {
                assert_eq!(alerts.len(), 1, "first breaching tick fires");
                assert_eq!(alerts[0].rule, "latency-p99");
                assert_eq!(alerts[0].severity, Severity::Critical);
                assert!(alerts[0].value > 1.0);
                assert!((alerts[0].threshold - 1.0).abs() < 1e-12);
            } else {
                assert!(alerts.is_empty(), "still breached at t={t}: no re-fire");
            }
        }
        assert!(eng.is_firing("latency-p99"));

        // Fast traffic for longer than both windows clears the breach...
        for t in 7..=60 {
            h.observe(0.001);
            eng.tick(&reg, t as f64 * 2.0);
        }
        assert!(!eng.is_firing("latency-p99"));
        // ...and the rule re-arms: a fresh regression fires again.
        for _ in 0..200 {
            h.observe(5.0);
        }
        let alerts = eng.tick(&reg, 130.0);
        assert_eq!(alerts.len(), 1, "re-armed rule fires on the next sustained breach");
    }

    #[test]
    fn error_burn_needs_both_windows() {
        let reg = Registry::new();
        let errors = reg.counter("errs", "");
        let total = reg.counter("all", "");
        let rule = SloRule {
            name: "err-burn".into(),
            severity: Severity::Warning,
            fast_window_s: 4.0,
            slow_window_s: 20.0,
            kind: SloKind::ErrorRateBurn {
                error_counter: "errs".into(),
                total_counter: "all".into(),
                target_ratio: 0.01,
                burn_factor: 10.0,
            },
        };
        let mut eng = SloEngine::new(vec![rule]);
        // A long healthy stretch.
        for t in 0..20 {
            total.add(10);
            assert!(eng.tick(&reg, t as f64).is_empty());
        }
        // A short error spike: fast window burns, slow window still healthy.
        total.add(10);
        errors.add(5);
        let alerts = eng.tick(&reg, 20.0);
        assert!(alerts.is_empty(), "slow window must also breach before alerting");
        // Sustained errors push the slow window over too.
        let mut fired = 0;
        for t in 21..45 {
            total.add(10);
            errors.add(5);
            fired += eng.tick(&reg, t as f64).len();
        }
        assert_eq!(fired, 1, "sustained burn fires exactly once");
    }

    #[test]
    fn throughput_floor_waits_for_data_then_fires() {
        let reg = Registry::new();
        let bytes = reg.counter("bytes", "");
        let rule = SloRule {
            name: "tput".into(),
            severity: Severity::Warning,
            fast_window_s: 4.0,
            slow_window_s: 8.0,
            kind: SloKind::ThroughputFloor { bytes_counter: "bytes".into(), min_bps: 100.0 },
        };
        let mut eng = SloEngine::new(vec![rule]);
        assert!(eng.tick(&reg, 0.0).is_empty(), "young window is not judged");
        bytes.add(1000);
        assert!(eng.tick(&reg, 1.0).is_empty());
        // Healthy rate for a while.
        for t in 2..10 {
            bytes.add(1000);
            assert!(eng.tick(&reg, t as f64).is_empty(), "1000 B/s >= 100 B/s");
        }
        // Traffic stalls; both windows eventually starve.
        let mut fired = 0;
        for t in 10..30 {
            fired += eng.tick(&reg, t as f64).len();
        }
        assert_eq!(fired, 1, "stall fires once");
    }

    #[test]
    fn gauge_floor_skips_until_registered_then_guards() {
        let reg = Registry::new();
        let rule = SloRule {
            name: "psnr-floor".into(),
            severity: Severity::Critical,
            fast_window_s: 1.0,
            slow_window_s: 1.0,
            kind: SloKind::GaugeFloor { gauge: "psnr".into(), min: 40.0 },
        };
        let mut eng = SloEngine::new(vec![rule]);
        assert!(eng.tick(&reg, 0.0).is_empty(), "unregistered gauge cannot fire");
        let g = reg.gauge("psnr", "");
        g.set(62.0);
        assert!(eng.tick(&reg, 1.0).is_empty());
        g.set(31.5);
        let alerts = eng.tick(&reg, 2.0);
        assert_eq!(alerts.len(), 1);
        assert!((alerts[0].value - 31.5).abs() < 1e-12);
        assert!(alerts[0].message.contains("floor"));
    }
}
