//! Property-based tests for the critical-path analyzer: on *arbitrary*
//! overlapped span forests (random intervals, random parent links, random
//! lanes and stage names) the analyzer's two totals keep their contract.

use ocelot_obs::critpath::{analyze, Stage};
use ocelot_obs::span::{Clock, SpanRecord};
use proptest::prelude::*;

/// Stage-name pool covering every classification branch plus unknowns.
const NAMES: [&str; 8] = [
    "pipeline.queue_wait",
    "pipeline.compress",
    "pipeline.group",
    "pipeline.transfer",
    "pipeline.decompress",
    "svc.retry.backoff",
    "svc.job",
    "mystery.stage",
];

/// One raw span blueprint: (name index, lane, start µs, length µs, parent
/// pick). The parent pick selects among earlier spans (or none) modulo the
/// number of candidates, so any u8 is valid regardless of position.
fn blueprints(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(usize, u32, u64, u64, u8)>> {
    prop::collection::vec((0usize..NAMES.len(), 0u32..3, 0u64..5_000_000, 0u64..3_000_000, any::<u8>()), n)
}

/// Materializes blueprints into `SpanRecord`s with acyclic parent links
/// (a span's parent always has a smaller index).
fn build(blueprints: &[(usize, u32, u64, u64, u8)]) -> Vec<SpanRecord> {
    blueprints
        .iter()
        .enumerate()
        .map(|(i, &(name, lane, start, len, pick))| {
            // pick == 0 → root; otherwise parent is one of the i earlier ids.
            let parent = (pick as usize).checked_rem(i + 1).filter(|&p| p > 0).map(|p| p as u64);
            SpanRecord {
                id: (i + 1) as u64,
                parent,
                name: NAMES[name].to_string(),
                job: Some(42),
                lane,
                clock: Clock::Sim,
                start_us: start,
                end_us: start + len,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The critical path (union of covered time) never exceeds the
    /// serialized work (sum of exclusive span times), even when children
    /// escape their parents or overlap arbitrarily.
    #[test]
    fn critical_path_never_exceeds_total(bps in blueprints(1..40)) {
        let spans = build(&bps);
        if let Some(rep) = analyze(&spans) {
            prop_assert!(
                rep.critical_path_s <= rep.total_s + 1e-9,
                "critical {} > total {}", rep.critical_path_s, rep.total_s
            );
            prop_assert!(rep.overlap_savings_s() >= 0.0);
        }
    }

    /// Per-stage attribution partitions the critical path: the stage sums
    /// equal `critical_path_s` within 1% (they are exact up to µs rounding;
    /// 1% is the documented contract).
    #[test]
    fn stage_attribution_sums_to_critical_path(bps in blueprints(1..40)) {
        let spans = build(&bps);
        if let Some(rep) = analyze(&spans) {
            let sum: f64 = rep.stage_s.iter().sum();
            let tol = (rep.critical_path_s * 0.01).max(1e-9);
            prop_assert!(
                (sum - rep.critical_path_s).abs() <= tol,
                "stage sum {} vs critical {}", sum, rep.critical_path_s
            );
            // The dominant stage is an argmax of the attribution.
            let max = rep.stage_s.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!((rep.stage(rep.dominant) - max).abs() < 1e-12);
            // Every span name classifies somewhere in Stage::ALL.
            for s in &spans {
                prop_assert!(Stage::ALL.contains(&Stage::classify(&s.name)));
            }
        }
    }
}
