//! Property-based tests for the obs crate: histogram merge/percentile
//! invariants and span-nesting validity under arbitrary recording orders.

use ocelot_obs::metrics::{Histogram, SUB_BUCKETS};
use ocelot_obs::span::Recorder;
use proptest::prelude::*;

/// Positive durations spanning the tracked range (well above `MIN_TRACKED`,
/// well below the overflow bucket).
fn durations(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            1e-6f64..1e-3, // microseconds to milliseconds
            1e-3f64..1.0,  // sub-second stages
            1.0f64..1e4,   // simulated transfer times
            Just(0.0),     // clamps to the first bucket
        ],
        n,
    )
}

/// One full bucket width in relative terms: buckets are a factor of
/// 2^(1/SUB_BUCKETS) wide, and `percentile` reports the geometric bucket
/// midpoint, so any in-bucket value is within half a width of the report.
fn bucket_factor() -> f64 {
    2f64.powf(1.0 / SUB_BUCKETS as f64)
}

/// Exact nearest-rank percentile of a sample, for comparison.
fn exact_percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two independently-filled histograms is exactly the histogram
    /// of the pooled observations: same per-bucket counts, same total count,
    /// sums equal up to f64 accumulation order.
    #[test]
    fn merge_equals_pooled(a in durations(0..200), b in durations(0..200)) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let pooled = Histogram::new();
        for &v in &a {
            ha.observe(v);
            pooled.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            pooled.observe(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), pooled.count());
        prop_assert_eq!(ha.cumulative_buckets(), pooled.cumulative_buckets());
        let tol = 1e-9 * (1.0 + pooled.sum().abs());
        prop_assert!((ha.sum() - pooled.sum()).abs() <= tol,
            "merged sum {} vs pooled {}", ha.sum(), pooled.sum());
        // Percentiles read only bucket counts, so they agree exactly.
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.percentile(q).to_bits(), pooled.percentile(q).to_bits());
        }
    }

    /// The histogram percentile lands within one bucket width of the exact
    /// nearest-rank percentile of the same sample.
    #[test]
    fn percentile_within_bucket_error(vals in durations(1..300), qi in 1u32..100) {
        // Keep values strictly inside the tracked range for a clean
        // relative-error statement (0.0 clamps into the first bucket).
        let mut vals: Vec<f64> = vals.into_iter().filter(|v| *v > 1e-8).collect();
        if vals.is_empty() {
            vals.push(1.0);
        }
        let q = qi as f64 / 100.0;
        let h = Histogram::new();
        for &v in &vals {
            h.observe(v);
        }
        let approx = h.percentile(q);
        let exact = exact_percentile(&vals, q);
        let factor = bucket_factor();
        prop_assert!(approx <= exact * factor && approx >= exact / factor,
            "p{qi}: approx {approx} not within {factor}x of exact {exact}");
    }

    /// Percentiles are monotone in q and bounded by the observed extremes
    /// (up to one bucket width).
    #[test]
    fn percentiles_are_monotone_and_bounded(vals in durations(1..200)) {
        let mut vals: Vec<f64> = vals.into_iter().filter(|v| *v > 1e-8).collect();
        if vals.is_empty() {
            vals.push(1.0);
        }
        let h = Histogram::new();
        for &v in &vals {
            h.observe(v);
        }
        let qs = [0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let ps: Vec<f64> = qs.iter().map(|&q| h.percentile(q)).collect();
        for w in ps.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles not monotone: {ps:?}");
        }
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(0.0f64, f64::max);
        let factor = bucket_factor();
        prop_assert!(ps[0] >= lo / factor && *ps.last().unwrap() <= hi * factor);
    }

    /// Arbitrary depth-first trees of sim spans plus nested wall spans
    /// always validate: parents exist, children stay inside parents, clocks
    /// match, and no wall span is left open.
    #[test]
    fn recorded_span_trees_validate(
        splits in prop::collection::vec((1usize..5, 0.1f64..0.9), 1..6),
        wall_depth in 1usize..5,
    ) {
        let rec = Recorder::new();
        // Sim: each level splits its window into children inside the parent.
        let mut frontier = vec![(rec.sim_span("pipeline", Some(7), 0, 0.0, 1000.0), 0.0f64, 1000.0f64)];
        for (fanout, shrink) in splits {
            let mut next = Vec::new();
            for (parent, lo, hi) in frontier {
                let span = (hi - lo) * shrink;
                let step = span / fanout as f64;
                for k in 0..fanout {
                    let s = lo + step * k as f64;
                    let e = s + step;
                    let id = rec.sim_child(parent, "stage", Some(7), 0, s, e);
                    next.push((id, s, e));
                }
            }
            frontier = next;
        }
        // Wall: strictly nested guards, closed in LIFO order by drop.
        fn nest(rec: &Recorder, depth: usize) {
            if depth == 0 {
                return;
            }
            let _g = rec.wall_span("work", None, 0);
            nest(rec, depth - 1);
        }
        nest(&rec, wall_depth);
        prop_assert_eq!(rec.open_spans(), 0);
        let violations = rec.validate(2);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }
}
