//! Golden test: the Prometheus text exposition for a small, fully-known
//! registry must match byte-for-byte. Guards the output contract consumed
//! by scrapers (name ordering, HELP/TYPE lines, sparse cumulative buckets
//! with a trailing `+Inf`, `_sum`/`_count` pairs).

use ocelot_obs::export::prometheus_text;
use ocelot_obs::metrics::Registry;

#[test]
fn prometheus_exposition_matches_golden() {
    let r = Registry::new();
    r.counter("ocelot_test_jobs_total", "Jobs processed").add(3);
    r.gauge("ocelot_test_queue_depth", "Jobs waiting in the queue").set(2.5);
    let h = r.histogram("ocelot_test_lat_seconds", "Job latency");
    h.observe(1.0);
    h.observe(1.0);
    h.observe(3.0);

    // Bucket bounds are MIN_TRACKED * 2^(i/SUB_BUCKETS): 1.0 lands in
    // bucket 240 (upper 2^30 * 1e-9), 3.0 in bucket 252 (upper 2^31.5 * 1e-9).
    let expected = "\
# HELP ocelot_test_jobs_total Jobs processed
# TYPE ocelot_test_jobs_total counter
ocelot_test_jobs_total 3
# HELP ocelot_test_lat_seconds Job latency
# TYPE ocelot_test_lat_seconds histogram
ocelot_test_lat_seconds_bucket{le=\"1.073741824e0\"} 2
ocelot_test_lat_seconds_bucket{le=\"3.0370004999760503e0\"} 3
ocelot_test_lat_seconds_bucket{le=\"+Inf\"} 3
ocelot_test_lat_seconds_sum 5
ocelot_test_lat_seconds_count 3
# HELP ocelot_test_queue_depth Jobs waiting in the queue
# TYPE ocelot_test_queue_depth gauge
ocelot_test_queue_depth 2.5
";
    assert_eq!(prometheus_text(&r), expected);
}

#[test]
fn empty_registry_exposes_nothing() {
    assert_eq!(prometheus_text(&Registry::new()), "");
}
