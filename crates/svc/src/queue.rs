//! Bounded multi-tenant job queue with round-robin fairness.
//!
//! Each tenant gets a private FIFO sub-queue; admission cycles tenants in
//! round-robin order so a tenant submitting thousands of jobs cannot starve
//! one submitting a handful. Capacity bounds the *total* queued jobs across
//! tenants — the service applies backpressure by rejecting submissions once
//! full, which callers surface to the client.

use crate::job::{JobId, JobSpec};
use std::collections::VecDeque;

/// Why a submission was not queued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; try again after jobs drain.
    QueueFull,
    /// The service has begun shutting down and takes no new work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue full"),
            SubmitError::Closed => write!(f, "service closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// FIFO-per-tenant queue with a global capacity bound.
#[derive(Debug)]
pub struct TenantQueue {
    capacity: usize,
    /// Sub-queues in tenant first-seen order.
    tenants: Vec<(String, VecDeque<(JobId, JobSpec)>)>,
    /// Round-robin pointer into `tenants`.
    cursor: usize,
    len: usize,
    closed: bool,
}

impl TenantQueue {
    /// Creates an empty queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        TenantQueue { capacity, tenants: Vec::new(), cursor: 0, len: 0, closed: false }
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stops accepting new jobs (already-queued jobs still drain).
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// True once [`TenantQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Enqueues a job at the tail of its tenant's sub-queue.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Closed`] after
    /// shutdown began.
    pub fn push(&mut self, id: JobId, spec: JobSpec) -> Result<(), SubmitError> {
        if self.closed {
            return Err(SubmitError::Closed);
        }
        if self.len >= self.capacity {
            return Err(SubmitError::QueueFull);
        }
        match self.tenants.iter_mut().find(|(t, _)| *t == spec.tenant) {
            Some((_, q)) => q.push_back((id, spec)),
            None => {
                let tenant = spec.tenant.clone();
                let mut q = VecDeque::new();
                q.push_back((id, spec));
                self.tenants.push((tenant, q));
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Pops the next job: the head of the first non-empty sub-queue at or
    /// after the round-robin cursor, which then advances past that tenant.
    pub fn pop(&mut self) -> Option<(JobId, JobSpec)> {
        if self.len == 0 || self.tenants.is_empty() {
            return None;
        }
        let n = self.tenants.len();
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            if let Some(job) = self.tenants[idx].1.pop_front() {
                self.cursor = (idx + 1) % n;
                self.len -= 1;
                return Some(job);
            }
        }
        None
    }

    /// Queue depth per tenant, in tenant first-seen order.
    pub fn depth_by_tenant(&self) -> Vec<(String, usize)> {
        self.tenants.iter().map(|(t, q)| (t.clone(), q.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_datagen::Application;
    use ocelot_netsim::SiteId;

    fn spec(tenant: &str) -> JobSpec {
        JobSpec::compressed(tenant, Application::Miranda, 1e-3, SiteId::Anvil, SiteId::Cori)
    }

    #[test]
    fn fifo_within_a_tenant() {
        let mut q = TenantQueue::new(8);
        for i in 0..4 {
            q.push(JobId(i), spec("climate")).unwrap();
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(id, _)| id.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut q = TenantQueue::new(16);
        // Tenant "big" floods the queue before "small" submits two jobs.
        for i in 0..6 {
            q.push(JobId(i), spec("big")).unwrap();
        }
        q.push(JobId(100), spec("small")).unwrap();
        q.push(JobId(101), spec("small")).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(id, _)| id.0).collect();
        // "small"'s first job is served second, not seventh.
        let pos = order.iter().position(|&id| id == 100).unwrap();
        assert!(pos <= 1, "small tenant served at position {pos}: {order:?}");
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn capacity_bounds_total_not_per_tenant() {
        let mut q = TenantQueue::new(3);
        q.push(JobId(0), spec("a")).unwrap();
        q.push(JobId(1), spec("b")).unwrap();
        q.push(JobId(2), spec("c")).unwrap();
        assert_eq!(q.push(JobId(3), spec("d")), Err(SubmitError::QueueFull));
        q.pop().unwrap();
        q.push(JobId(3), spec("d")).unwrap();
    }

    #[test]
    fn closed_queue_rejects_but_drains() {
        let mut q = TenantQueue::new(4);
        q.push(JobId(0), spec("a")).unwrap();
        q.close();
        assert_eq!(q.push(JobId(1), spec("a")), Err(SubmitError::Closed));
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn depth_by_tenant_reports_subqueues() {
        let mut q = TenantQueue::new(8);
        q.push(JobId(0), spec("a")).unwrap();
        q.push(JobId(1), spec("a")).unwrap();
        q.push(JobId(2), spec("b")).unwrap();
        assert_eq!(q.depth_by_tenant(), vec![("a".to_string(), 2), ("b".to_string(), 1)]);
    }
}
