//! Retry budget and exponential backoff with deterministic jitter.
//!
//! The *service* owns retries (Globus semantics: the transfer service
//! re-offers failed files, the data channels themselves do not loop). Each
//! transfer attempt gets the whole remaining file set; between attempts the
//! service backs off exponentially with jitter so concurrent jobs failing
//! together do not retry in lock-step.

use serde::{Deserialize, Serialize};

/// Retry/backoff configuration for one service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total transfer attempts per job, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff_s: f64,
    /// Backoff growth per retry round.
    pub multiplier: f64,
    /// Ceiling on any single backoff, seconds.
    pub max_backoff_s: f64,
    /// Jitter fraction: each backoff is scaled by a deterministic factor in
    /// `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// Four attempts, 1 s base doubling to a 30 s cap, ±25 % jitter.
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_backoff_s: 1.0, multiplier: 2.0, max_backoff_s: 30.0, jitter: 0.25 }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..Default::default() }
    }

    /// Retry rounds available after the first attempt.
    pub fn retry_budget(&self) -> u32 {
        self.max_attempts.saturating_sub(1)
    }

    /// Backoff before retry round `round` (1-based), jittered
    /// deterministically by `seed` so reruns reproduce exactly.
    pub fn backoff_s(&self, round: u32, seed: u64) -> f64 {
        assert!(round >= 1, "retry rounds are 1-based");
        let exp = self.base_backoff_s * self.multiplier.powi(round as i32 - 1);
        let capped = exp.min(self.max_backoff_s);
        // Uniform in [-1, 1] from a SplitMix64 step over (seed, round).
        let mut z = seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        (capped * (1.0 + self.jitter * (2.0 * u - 1.0))).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy { jitter: 0.0, ..Default::default() };
        assert_eq!(p.backoff_s(1, 0), 1.0);
        assert_eq!(p.backoff_s(2, 0), 2.0);
        assert_eq!(p.backoff_s(3, 0), 4.0);
        // 2^9 = 512 would exceed the 30 s cap.
        assert_eq!(p.backoff_s(10, 0), 30.0);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::default();
        for round in 1..6 {
            for seed in [0u64, 7, 99] {
                let b = p.backoff_s(round, seed);
                let nominal = (p.base_backoff_s * p.multiplier.powi(round as i32 - 1)).min(p.max_backoff_s);
                assert!(b >= nominal * 0.75 - 1e-12 && b <= nominal * 1.25 + 1e-12, "{b} vs {nominal}");
                assert_eq!(b, p.backoff_s(round, seed));
            }
        }
        // Different seeds actually draw different jitter.
        assert_ne!(p.backoff_s(1, 1), p.backoff_s(1, 2));
    }

    #[test]
    fn none_policy_has_no_retry_budget() {
        assert_eq!(RetryPolicy::none().retry_budget(), 0);
        assert_eq!(RetryPolicy::default().retry_budget(), 3);
    }
}
