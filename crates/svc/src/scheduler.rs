//! The transfer service: worker pool, admission, retries, accounting.
//!
//! [`Service::start`] spawns a pool of OS worker threads that pop jobs from
//! the shared [`TenantQueue`] and drive each through
//! [`ocelot::orchestrator::Orchestrator::run_detailed`]. The WAN may be
//! faulty ([`ServiceConfig::faults`]); the *service* owns retries — every
//! attempt runs with the fault model's in-transfer retries disabled
//! (`max_retries: 0`), and files that fail are re-offered in later rounds
//! after exponential backoff ([`RetryPolicy`]), Globus-style: compression
//! is not redone and delivered files are not resent.
//!
//! Time is two-layered. Pipeline durations and backoffs are *simulated*
//! seconds (deterministic, journaled); the worker threads really sleep
//! `backoff × sleep_scale` wall-clock seconds, with `sleep_scale = 0`
//! making tests instantaneous.

use crate::analyze::{build_analysis, derive_hint, BottleneckSummary, SchedulerHint, ServiceAnalysis};
use crate::forensics::{slugify, FlightDump};
use crate::job::{JobId, JobReport, JobSpec, JobState};
use crate::journal::{AlertRecord, Event, Journal};
use crate::metrics::{throughput_bps, MetricsSnapshot, TenantStats};
use crate::queue::{SubmitError, TenantQueue};
use crate::retry::RetryPolicy;
use ocelot::orchestrator::{Orchestrator, PipelineOptions, PipelineOutcome, Strategy};
use ocelot::workload::Workload;
use ocelot_datagen::Application;
use ocelot_netsim::{simulate_transfer_with_faults, FaultModel, GridFtpConfig};
use ocelot_obs::critpath::{self, BottleneckReport};
use ocelot_obs::ledger::{EventKind, Ledger, LedgerEvent};
use ocelot_obs::metrics::{Counter, Gauge, Histogram};
use ocelot_obs::slo::{SloEngine, SloRule};
use ocelot_obs::Obs;
use ocelot_sz::LossyConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning for one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads processing jobs concurrently.
    pub workers: usize,
    /// Queue capacity across all tenants (backpressure bound).
    pub queue_capacity: usize,
    /// WAN fault injection; `max_retries` is ignored (the service owns the
    /// retry budget via `retry`).
    pub faults: FaultModel,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// GridFTP tuning for every transfer.
    pub gridftp: GridFtpConfig,
    /// Profiling scale for workload construction (smaller = faster).
    pub profile_scale: usize,
    /// Wall-clock seconds really slept per simulated backoff second
    /// (0 = don't sleep, used in tests; 1 = real time).
    pub sleep_scale: f64,
    /// Base seed; each job derives its own stream from this and its id.
    pub seed: u64,
    /// Observability handle shared with the orchestrator and exporters.
    /// `None` gives the service a private enabled handle (metrics always
    /// work); pass an explicit handle to share one registry with the CLI.
    pub obs: Option<Obs>,
    /// Declarative SLO rules, evaluated after every finished job on the
    /// cumulative simulated clock. Each alert snapshots the flight ring.
    pub slo: Vec<SloRule>,
    /// Directory flight dumps are written into (`None` keeps them
    /// in-memory only; see [`Service::flight_dumps`]).
    pub artifact_dir: Option<PathBuf>,
    /// Flight-ring capacity when the service builds its own obs handle.
    pub flight_capacity: usize,
    /// Chunk-parallel codec threads per file in every job's compression and
    /// decompression phases (the CLI's `--codec-threads` flag).
    pub codec_threads: usize,
    /// Bounded in-flight chunk window for streamed jobs (the CLI's
    /// `--stream-window` flag). `0` keeps the staged pipeline; `> 0` runs
    /// [`Strategy::Compressed`] jobs through the streamed chunk pipeline
    /// (compress → ship → decompress overlapped, healthy-link model).
    pub stream_window: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            faults: FaultModel::none(),
            retry: RetryPolicy::default(),
            gridftp: GridFtpConfig::default(),
            profile_scale: 8,
            sleep_scale: 0.0,
            seed: 0xC0FFEE,
            obs: None,
            slo: Vec::new(),
            artifact_dir: None,
            flight_capacity: ocelot_obs::flight::DEFAULT_CAPACITY,
            codec_threads: 1,
            stream_window: 0,
        }
    }
}

/// Cached registry handles for the service's counters: the journal and the
/// [`MetricsSnapshot`] both read the same registry, and increments happen
/// adjacent to the journal records they describe.
#[derive(Debug)]
struct SvcMetrics {
    jobs_submitted: Arc<Counter>,
    jobs_rejected: Arc<Counter>,
    jobs_done: Arc<Counter>,
    jobs_failed: Arc<Counter>,
    transfer_retries: Arc<Counter>,
    bytes_transferred: Arc<Counter>,
    bytes_saved: Arc<Counter>,
    wasted_bytes: Arc<Counter>,
    latency: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    recommended_workers: Arc<Gauge>,
}

impl SvcMetrics {
    fn new(obs: &Obs) -> Self {
        let reg = obs.registry().expect("service obs handle must be enabled");
        SvcMetrics {
            jobs_submitted: reg.counter("ocelot_svc_jobs_submitted_total", "Jobs accepted into the queue"),
            jobs_rejected: reg.counter("ocelot_svc_jobs_rejected_total", "Submissions refused (full or closed)"),
            jobs_done: reg.counter("ocelot_svc_jobs_done_total", "Jobs that delivered every file"),
            jobs_failed: reg.counter("ocelot_svc_jobs_failed_total", "Jobs that exhausted their retry budget"),
            transfer_retries: reg.counter("ocelot_svc_transfer_retries_total", "Failed transfer attempts re-offered"),
            bytes_transferred: reg.counter("ocelot_svc_bytes_transferred_total", "Payload bytes delivered"),
            bytes_saved: reg.counter("ocelot_svc_bytes_saved_total", "Raw bytes avoided by compression"),
            wasted_bytes: reg.counter("ocelot_svc_wasted_bytes_total", "Bytes moved by attempts that later failed"),
            latency: reg.histogram("ocelot_svc_latency_seconds", "Simulated end-to-end latency of finished jobs"),
            queue_depth: reg.gauge("ocelot_svc_queue_depth", "Jobs currently queued"),
            in_flight: reg.gauge("ocelot_svc_in_flight", "Jobs currently being processed"),
            recommended_workers: reg
                .gauge("ocelot_svc_recommended_workers", "Advisory pool size from critical-path analysis"),
        }
    }
}

/// Mutable state shared by submitters and workers under one lock, so
/// `drain` can observe "queue empty AND nothing in flight" atomically.
#[derive(Debug)]
struct Inner {
    queue: TenantQueue,
    in_flight: usize,
    per_tenant: HashMap<String, TenantStats>,
    reports: Vec<JobReport>,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signals workers that a job was queued or the queue closed.
    work_ready: Condvar,
    /// Signals `drain` that a job finished.
    job_finished: Condvar,
    journal: Journal,
    /// Workload construction is expensive (profiling really compresses
    /// data); share one instance per (app, error-bound) across jobs.
    workloads: Mutex<HashMap<(Application, u64), Arc<Workload>>>,
    orchestrator: Orchestrator,
    config: ServiceConfig,
    /// Always-enabled observability handle (the snapshot is built from its
    /// registry, so the service cannot run blind).
    obs: Obs,
    metrics: SvcMetrics,
    /// SLO engine, ticked on the cumulative simulated clock after every
    /// finished job.
    slo: Mutex<SloEngine>,
    /// Per-job critical-path reports, accumulated as jobs finish; feeds the
    /// advisory scheduler hint.
    job_reports: Mutex<Vec<BottleneckReport>>,
    /// Latest advisory hint derived from the accumulated reports.
    hint: Mutex<Option<SchedulerHint>>,
    /// Flight dumps snapped so far (also written to `artifact_dir`).
    dumps: Mutex<Vec<FlightDump>>,
    /// Names dump files `flight-<n>-<slug>.json`.
    dump_counter: AtomicU64,
    /// Worst PSNR delivered so far (drives the quality gauge lazily, so a
    /// PSNR-floor SLO stays skipped until the first job completes).
    worst_psnr: Mutex<f64>,
    /// Chunk-lifecycle ledger owned by this service (handed to the
    /// orchestrator explicitly, so parallel services never cross streams).
    ledger: Arc<Ledger>,
    /// Harvested ledger events, partitioned per job. Wall-only events with
    /// no job tag (codec workers, profiling) are discarded at harvest.
    chunk_events: Mutex<HashMap<u64, Vec<LedgerEvent>>>,
}

impl Shared {
    /// Journals a state transition and mirrors it into the flight ring.
    fn journal_state(&self, id: JobId, tenant: &str, t_s: f64, state: JobState) {
        self.obs.flight_state(Some(id.0), &format!("{state:?}"), t_s);
        self.journal.record(id, tenant, t_s, state);
    }
}

/// A running transfer service.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Service {
    /// Starts a service on the paper's three-site testbed.
    pub fn start(config: ServiceConfig) -> Self {
        Service::with_orchestrator(Orchestrator::paper(), config)
    }

    /// Starts a service on a custom topology.
    pub fn with_orchestrator(orchestrator: Orchestrator, config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let obs = match &config.obs {
            Some(h) if h.is_enabled() => h.clone(),
            _ => Obs::with_flight_capacity(config.flight_capacity),
        };
        let metrics = SvcMetrics::new(&obs);
        metrics.recommended_workers.set(config.workers as f64);
        let slo = Mutex::new(SloEngine::new(config.slo.clone()));
        let ledger = Ledger::with_obs(&obs);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: TenantQueue::new(config.queue_capacity),
                in_flight: 0,
                per_tenant: HashMap::new(),
                reports: Vec::new(),
            }),
            work_ready: Condvar::new(),
            job_finished: Condvar::new(),
            journal: Journal::new(),
            workloads: Mutex::new(HashMap::new()),
            orchestrator: orchestrator.with_obs(obs.clone()).with_ledger(ledger.clone()),
            config,
            obs,
            metrics,
            slo,
            job_reports: Mutex::new(Vec::new()),
            hint: Mutex::new(None),
            dumps: Mutex::new(Vec::new()),
            dump_counter: AtomicU64::new(0),
            worst_psnr: Mutex::new(f64::INFINITY),
            ledger,
            chunk_events: Mutex::new(HashMap::new()),
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Service { shared, workers, next_id: AtomicU64::new(0) }
    }

    /// Submits a job, returning its id.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] under backpressure, [`SubmitError::Closed`]
    /// after shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let tenant = spec.tenant.clone();
        {
            let mut inner = self.shared.inner.lock().expect("service poisoned");
            if let Err(e) = inner.queue.push(id, spec) {
                self.shared.metrics.jobs_rejected.inc();
                return Err(e);
            }
            self.shared.metrics.jobs_submitted.inc();
            self.shared.metrics.queue_depth.set(inner.queue.len() as f64);
            inner.per_tenant.entry(tenant.clone()).or_default().submitted += 1;
        }
        self.shared.journal_state(id, &tenant, 0.0, JobState::Queued);
        self.shared.work_ready.notify_one();
        Ok(id)
    }

    /// Blocks until every queued and in-flight job reaches a terminal
    /// state. New submissions remain possible afterwards.
    pub fn drain(&self) {
        let mut inner = self.shared.inner.lock().expect("service poisoned");
        while !inner.queue.is_empty() || inner.in_flight > 0 {
            inner = self.shared.job_finished.wait(inner).expect("service poisoned");
        }
    }

    /// Closes the queue, drains remaining work, and joins the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        {
            let mut inner = self.shared.inner.lock().expect("service poisoned");
            inner.queue.close();
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker panicked");
        }
        self.metrics()
    }

    /// Current aggregate metrics, read from the shared obs registry (the
    /// same counters the Prometheus/JSON exporters expose).
    pub fn metrics(&self) -> MetricsSnapshot {
        let inner = self.shared.inner.lock().expect("service poisoned");
        let m = &self.shared.metrics;
        let bytes_transferred = m.bytes_transferred.get();
        let sim_seconds = m.latency.sum();
        MetricsSnapshot {
            jobs_submitted: m.jobs_submitted.get(),
            jobs_rejected: m.jobs_rejected.get(),
            jobs_done: m.jobs_done.get(),
            jobs_failed: m.jobs_failed.get(),
            queue_depth: inner.queue.len(),
            in_flight: inner.in_flight,
            transfer_retries: m.transfer_retries.get(),
            bytes_transferred,
            bytes_saved: m.bytes_saved.get(),
            wasted_bytes: m.wasted_bytes.get(),
            sim_seconds,
            throughput_bps: throughput_bps(bytes_transferred, sim_seconds),
            latency_p50_s: m.latency.percentile(0.50),
            latency_p90_s: m.latency.percentile(0.90),
            latency_p95_s: m.latency.percentile(0.95),
            latency_p99_s: m.latency.percentile(0.99),
            per_tenant: inner.per_tenant.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// The service's observability handle (always enabled): use it to export
    /// Prometheus text, metrics JSON, or Chrome traces of processed jobs.
    pub fn obs(&self) -> Obs {
        self.shared.obs.clone()
    }

    /// A copy of the lifecycle journal.
    pub fn journal(&self) -> Vec<Event> {
        self.shared.journal.snapshot()
    }

    /// Final reports of finished jobs, in completion order.
    pub fn reports(&self) -> Vec<JobReport> {
        self.shared.inner.lock().expect("service poisoned").reports.clone()
    }

    /// Critical-path analysis of every processed job: per-job and
    /// per-tenant bottleneck reports plus the advisory scheduler hint and
    /// per-tenant chunk-retransmit totals from the chunk ledger.
    pub fn analyze(&self) -> ServiceAnalysis {
        harvest_ledger(&self.shared);
        let spans = self.shared.obs.recorder().map(|r| r.spans()).unwrap_or_default();
        let tenants: HashMap<u64, String> =
            self.shared.journal.snapshot().into_iter().map(|e| (e.job.0, e.tenant)).collect();
        let mut analysis = build_analysis(&spans, &tenants, self.shared.config.workers, self.shared.obs.registry());
        let store = self.shared.chunk_events.lock().expect("chunk events poisoned");
        for (job, events) in store.iter() {
            let retries = events.iter().filter(|e| e.event == EventKind::Retransmit).count() as u64;
            if retries == 0 {
                continue;
            }
            let tenant = tenants.get(job).cloned().unwrap_or_else(|| format!("job-{job}"));
            *analysis.chunk_retries.entry(tenant).or_insert(0) += retries;
        }
        analysis
    }

    /// Chunk-lifecycle events harvested for one job, ordered by ledger
    /// sequence. Streamed jobs trace every chunk; staged jobs trace at file
    /// granularity through the overlapped path only, so this may be empty.
    pub fn chunk_events(&self, job: JobId) -> Vec<LedgerEvent> {
        harvest_ledger(&self.shared);
        self.shared.chunk_events.lock().expect("chunk events poisoned").get(&job.0).cloned().unwrap_or_default()
    }

    /// Latest advisory scheduling hint (updated after every finished job;
    /// also mirrored into the `ocelot_svc_recommended_workers` gauge).
    pub fn hint(&self) -> Option<SchedulerHint> {
        self.shared.hint.lock().expect("hint poisoned").clone()
    }

    /// SLO alerts journaled so far.
    pub fn alerts(&self) -> Vec<AlertRecord> {
        self.shared.journal.alerts()
    }

    /// Flight dumps snapped so far (failures, retry exhaustion, SLO
    /// breaches, forced).
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        self.shared.dumps.lock().expect("dumps poisoned").clone()
    }

    /// Snapshots the flight ring right now (reason `forced` unless given),
    /// optionally scoped to one job. Used by `ocelot postmortem` when no
    /// failure-triggered dump exists.
    pub fn force_flight_dump(&self, reason: &str, job: Option<JobId>) -> FlightDump {
        let tenant = job.and_then(|j| self.shared.journal.events_for(j).first().map(|e| e.tenant.clone()));
        let t_s = self.shared.metrics.latency.sum();
        snap_dump(&self.shared, reason, job, tenant.as_deref(), t_s)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("service poisoned");
            inner.queue.close();
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut inner = shared.inner.lock().expect("service poisoned");
            loop {
                if let Some(job) = inner.queue.pop() {
                    inner.in_flight += 1;
                    shared.metrics.queue_depth.set(inner.queue.len() as f64);
                    shared.metrics.in_flight.set(inner.in_flight as f64);
                    break Some(job);
                }
                if inner.queue.is_closed() {
                    break None;
                }
                inner = shared.work_ready.wait(inner).expect("service poisoned");
            }
        };
        let Some((id, spec)) = job else { return };
        let report = process_job(shared, id, &spec);
        harvest_ledger(shared);
        persist_ledger(shared, id);
        let m = &shared.metrics;
        let mut inner = shared.inner.lock().expect("service poisoned");
        let tenant = inner.per_tenant.entry(spec.tenant.clone()).or_default();
        match report.state {
            JobState::Done => {
                tenant.done += 1;
                tenant.retries += u64::from(report.retries);
                m.jobs_done.inc();
            }
            JobState::Failed(_) => {
                tenant.failed += 1;
                tenant.retries += u64::from(report.retries);
                m.jobs_failed.inc();
            }
            ref other => unreachable!("non-terminal report state {other:?}"),
        }
        m.transfer_retries.add(u64::from(report.retries));
        m.bytes_transferred.add(report.bytes_transferred);
        m.bytes_saved.add(report.bytes_saved);
        m.wasted_bytes.add(report.wasted_bytes);
        // Exemplar: the latency bucket remembers this job, so a p99 outlier
        // in the export points at a concrete job id.
        m.latency.observe_exemplar(report.latency_s, id.0);
        inner.reports.push(report);
        drop(inner);
        // The hint refresh and SLO tick must land before this job stops
        // counting as in flight: `drain` returns once `in_flight` hits 0,
        // and callers expect a finished job's breach alert and flight dump
        // to be visible by then.
        refresh_hint(shared, id);
        tick_slo(shared);
        let mut inner = shared.inner.lock().expect("service poisoned");
        inner.in_flight -= 1;
        m.in_flight.set(inner.in_flight as f64);
        drop(inner);
        shared.job_finished.notify_all();
    }
}

/// Folds the finished job's critical-path report into the accumulated set
/// and refreshes the advisory hint (and its gauge) from the aggregate.
fn refresh_hint(shared: &Shared, id: JobId) {
    let Some(report) = shared.obs.recorder().and_then(|r| critpath::analyze(&r.for_job(id.0))) else {
        return;
    };
    let mut reports = shared.job_reports.lock().expect("job reports poisoned");
    reports.push(report);
    let Some(agg) = critpath::aggregate(reports.iter()) else { return };
    drop(reports);
    let hint = derive_hint(&agg, shared.config.workers, shared.obs.registry());
    shared.metrics.recommended_workers.set(hint.recommended_workers as f64);
    *shared.hint.lock().expect("hint poisoned") = Some(hint);
}

/// Ticks the SLO engine on the cumulative simulated clock. Every alert is
/// journaled with a flight dump snapped at breach time.
fn tick_slo(shared: &Shared) {
    let Some(registry) = shared.obs.registry() else { return };
    // Cumulative simulated seconds processed: monotone and deterministic,
    // unlike wall time under `sleep_scale = 0`.
    let now_s = shared.metrics.latency.sum();
    let alerts = shared.slo.lock().expect("slo poisoned").tick(registry, now_s);
    for alert in alerts {
        let reason = format!("slo:{}", alert.rule);
        let idx = shared.dump_counter.fetch_add(1, Ordering::Relaxed);
        let file = format!("flight-{idx}-{}.json", slugify(&reason));
        // Journal first so the dump's own alert list includes this breach.
        shared.journal.record_alert(&alert, Some(file.clone()));
        shared.obs.flight_state(None, &format!("alert:{}", alert.rule), alert.t_s);
        write_dump(shared, file, &reason, None, None, alert.t_s);
    }
}

/// Drains the service ledger and files each job-tagged event into the
/// per-job store. Events without a job tag (wall-only emissions from codec
/// threads during workload profiling) carry no chunk story the service can
/// place, so they are dropped here. Idempotent and cheap when quiet.
fn harvest_ledger(shared: &Shared) {
    let drained = shared.ledger.drain();
    if drained.is_empty() {
        return;
    }
    let mut store = shared.chunk_events.lock().expect("chunk events poisoned");
    for e in drained {
        if let Some(job) = e.job {
            store.entry(job).or_default().push(e);
        }
    }
}

/// Writes `ledger-<job>.json` next to the flight dumps once a job reaches a
/// terminal state, when it produced chunk events and an artifact directory
/// is configured. The export validates against `schemas/ledger.schema.json`.
fn persist_ledger(shared: &Shared, id: JobId) {
    let Some(dir) = &shared.config.artifact_dir else { return };
    let events = shared.chunk_events.lock().expect("chunk events poisoned").get(&id.0).cloned().unwrap_or_default();
    if events.is_empty() {
        return;
    }
    let file = format!("ledger-{}.json", id.0);
    if std::fs::create_dir_all(dir).is_ok() {
        if let Err(e) = std::fs::write(dir.join(&file), crate::forensics::ledger_json(id.0, &events)) {
            ocelot_obs::warn!("svc", "failed to write chunk ledger {file}: {e}");
        }
    }
}

/// Snapshots the flight ring into a named dump, stores it, and (when an
/// artifact directory is configured) writes it to disk.
fn snap_dump(shared: &Shared, reason: &str, job: Option<JobId>, tenant: Option<&str>, t_s: f64) -> FlightDump {
    let idx = shared.dump_counter.fetch_add(1, Ordering::Relaxed);
    let file = format!("flight-{idx}-{}.json", slugify(reason));
    write_dump(shared, file, reason, job, tenant, t_s)
}

fn write_dump(
    shared: &Shared,
    file: String,
    reason: &str,
    job: Option<JobId>,
    tenant: Option<&str>,
    t_s: f64,
) -> FlightDump {
    // Harvest first so a mid-job dump embeds the freshest chunk tail.
    harvest_ledger(shared);
    let ledger_events = job
        .map(|j| shared.chunk_events.lock().expect("chunk events poisoned").get(&j.0).cloned().unwrap_or_default())
        .unwrap_or_default();
    let snapshot = shared.obs.flight_snapshot().expect("service obs handle is always enabled");
    let attribution = job
        .and_then(|j| shared.obs.recorder().and_then(|r| critpath::analyze(&r.for_job(j.0))))
        .map(|r| BottleneckSummary::from(&r));
    let dump = FlightDump::from_snapshot(
        file.clone(),
        reason,
        job.map(|j| j.0),
        tenant.map(str::to_string),
        t_s,
        &snapshot,
        attribution,
        shared.journal.alerts(),
        shared.journal.snapshot(),
        &ledger_events,
    );
    if let Some(dir) = &shared.config.artifact_dir {
        if std::fs::create_dir_all(dir).is_ok() {
            if let Ok(json) = serde_json::to_string_pretty(&dump) {
                if let Err(e) = std::fs::write(dir.join(&file), json) {
                    ocelot_obs::warn!("svc", "failed to write flight dump {file}: {e}");
                }
            }
        }
    }
    shared.dumps.lock().expect("dumps poisoned").push(dump.clone());
    dump
}

/// Drives one job from admission to a terminal state, journaling every
/// transition. Never panics on job-level errors — they become `Failed`.
fn process_job(shared: &Shared, id: JobId, spec: &JobSpec) -> JobReport {
    let cfg = &shared.config;
    let obs = &shared.obs;
    // Wall-clock view of the worker's real processing time (profiling and
    // compression are real work; transfers and backoffs are simulated).
    let _wall = obs.wall_span("svc.process", Some(id.0), 0);
    shared.journal_state(id, &spec.tenant, 0.0, JobState::Admitted);

    let fail = |t_s: f64, reason: String| -> JobReport {
        shared.journal_state(id, &spec.tenant, t_s, JobState::Failed(reason.clone()));
        JobReport {
            job: id,
            tenant: spec.tenant.clone(),
            state: JobState::Failed(reason),
            latency_s: t_s,
            bytes_transferred: 0,
            bytes_saved: 0,
            retries: 0,
            wasted_bytes: 0,
        }
    };

    shared.journal_state(id, &spec.tenant, 0.0, JobState::Compressing);
    let workload = match cached_workload(shared, spec.app, spec.error_bound) {
        Ok(w) => w,
        Err(reason) => {
            let report = fail(0.0, reason);
            snap_dump(shared, "job_failed", Some(id), Some(&spec.tenant), 0.0);
            return report;
        }
    };

    // Each attempt gets one try per file; the retry loop below owns the
    // budget (Globus semantics: the service re-offers failed files).
    let job_seed = cfg.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let single_try = FaultModel { max_retries: 0, ..cfg.faults };
    let opts = PipelineOptions {
        gridftp: cfg.gridftp,
        faults: single_try,
        seed: job_seed,
        job: Some(id.0),
        codec_threads: cfg.codec_threads.max(1),
        stream_window: cfg.stream_window,
        ..PipelineOptions::default()
    };
    // With a stream window, plain compressed jobs run the streamed chunk
    // pipeline (healthy-link model, like the sentinel and overlapped paths);
    // everything else keeps the staged fault-aware path.
    let streamed = cfg.stream_window > 0 && matches!(spec.strategy, Strategy::Compressed);
    let outcome = if streamed {
        let breakdown = shared.orchestrator.run_streamed(&workload, spec.from, spec.to, &opts);
        PipelineOutcome {
            breakdown,
            transfer_retries: 0,
            failed_files: Vec::new(),
            wasted_bytes: 0,
            attempts: Vec::new(),
            transfer_sizes: Vec::new(),
        }
    } else {
        shared.orchestrator.run_detailed(&workload, spec.from, spec.to, spec.strategy, &opts)
    };

    // Streamed transfer windows already cover queueing and compression on
    // their critical path; the staged path accounts phases additively.
    let pre_transfer_s = if streamed {
        outcome.breakdown.queue_wait_s
    } else {
        outcome.breakdown.queue_wait_s + outcome.breakdown.compression_s + outcome.breakdown.grouping_s
    };
    shared.journal_state(id, &spec.tenant, pre_transfer_s, JobState::Transferring);

    let mut t_s = if streamed { outcome.breakdown.transfer_s } else { pre_transfer_s + outcome.breakdown.transfer_s };
    let mut retries = outcome.transfer_retries as u32;
    let mut bytes_transferred = outcome.breakdown.bytes_transferred;
    let mut wasted_bytes = outcome.wasted_bytes;
    let mut pending: Vec<u64> = outcome.failed_files.iter().map(|&i| outcome.transfer_sizes[i]).collect();

    let link = shared.orchestrator.topology().route(spec.from, spec.to).link;
    // (start_s, backoff_end_s, end_s) of every retry round, for the trace.
    let mut retry_windows: Vec<(f64, f64, f64)> = Vec::new();
    for round in 1..=cfg.retry.retry_budget() {
        if pending.is_empty() {
            break;
        }
        shared.journal_state(id, &spec.tenant, t_s, JobState::Retrying(round));
        let round_start = t_s;
        let backoff = cfg.retry.backoff_s(round, job_seed);
        if cfg.sleep_scale > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(backoff * cfg.sleep_scale));
        }
        t_s += backoff;
        let backoff_end = t_s;
        let rerun = simulate_transfer_with_faults(
            &pending,
            &link,
            &cfg.gridftp,
            &single_try,
            job_seed.wrapping_add(round as u64),
        );
        t_s += rerun.report.duration_s;
        retries += rerun.retries as u32;
        bytes_transferred += rerun.report.bytes_total;
        wasted_bytes += rerun.wasted_bytes;
        pending = rerun.failed_files.iter().map(|&i| pending[i]).collect();
        retry_windows.push((round_start, backoff_end, t_s));
    }

    let decompression_s = outcome.breakdown.decompression_s;
    t_s += decompression_s;

    // Job-level trace: the whole job on the service lane (the
    // orchestrator's phase tree occupies the primary/overlap lanes), with
    // one child span per retry round split into backoff and re-offer, plus
    // the post-retry decompression tail so the critical-path analyzer does
    // not attribute it to the bare envelope.
    let record_job_span = |end_s: f64| {
        use ocelot::lanes::SERVICE;
        let root = obs.sim_span("svc.job", Some(id.0), SERVICE, 0.0, end_s);
        for &(start, backoff_end, end) in &retry_windows {
            let round = obs.sim_child(root, "svc.retry", Some(id.0), SERVICE, start, end);
            obs.sim_child(round, "svc.retry.backoff", Some(id.0), SERVICE, start, backoff_end);
            obs.sim_child(round, "svc.retry.transfer", Some(id.0), SERVICE, backoff_end, end);
        }
        if decompression_s > 0.0 {
            obs.sim_child(root, "svc.decompress", Some(id.0), SERVICE, (end_s - decompression_s).max(0.0), end_s);
        }
    };

    if !pending.is_empty() {
        let reason = format!(
            "{} of {} files undelivered after {} attempts",
            pending.len(),
            outcome.transfer_sizes.len(),
            cfg.retry.max_attempts
        );
        record_job_span(t_s);
        let mut report = fail(t_s, reason);
        report.bytes_transferred = bytes_transferred;
        report.retries = retries;
        report.wasted_bytes = wasted_bytes;
        snap_dump(shared, "retry_exhausted", Some(id), Some(&spec.tenant), t_s);
        return report;
    }

    record_job_span(t_s);
    shared.journal_state(id, &spec.tenant, t_s, JobState::Done);
    // Delivered quality: the worst per-file PSNR so far drives a lazily
    // registered gauge, so a PSNR-floor SLO only judges completed work.
    {
        let mut worst = shared.worst_psnr.lock().expect("psnr poisoned");
        let job_worst = workload.min_psnr();
        if job_worst < *worst {
            *worst = job_worst;
        }
        if worst.is_finite() {
            obs.set_gauge("ocelot_svc_worst_psnr_db", "Worst per-file PSNR delivered so far", *worst);
        }
    }
    let raw_bytes = workload.total_bytes();
    JobReport {
        job: id,
        tenant: spec.tenant.clone(),
        state: JobState::Done,
        latency_s: t_s,
        bytes_transferred,
        bytes_saved: raw_bytes.saturating_sub(bytes_transferred),
        retries,
        wasted_bytes,
    }
}

/// Fetches or builds the shared workload for `(app, error_bound)`.
fn cached_workload(shared: &Shared, app: Application, error_bound: f64) -> Result<Arc<Workload>, String> {
    let key = (app, error_bound.to_bits());
    if let Some(w) = shared.workloads.lock().expect("workload cache poisoned").get(&key) {
        return Ok(w.clone());
    }
    // Build outside the lock: profiling really compresses data and can take
    // a while; racing builders waste a little work but never block others.
    let config = LossyConfig::sz3(error_bound);
    let built = match app {
        Application::Cesm => Workload::cesm(config, shared.config.profile_scale),
        Application::Rtm => Workload::rtm(config, shared.config.profile_scale),
        Application::Miranda => Workload::miranda(config, shared.config.profile_scale),
        other => return Err(format!("no transfer workload for application {other}")),
    };
    let workload = Arc::new(built.map_err(|e| format!("workload construction failed: {e}"))?);
    let mut cache = shared.workloads.lock().expect("workload cache poisoned");
    Ok(cache.entry(key).or_insert(workload).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_netsim::SiteId;

    fn quick_config() -> ServiceConfig {
        ServiceConfig { workers: 2, profile_scale: 8, ..Default::default() }
    }

    fn miranda_job(tenant: &str) -> JobSpec {
        JobSpec::compressed(tenant, Application::Miranda, 1e-3, SiteId::Anvil, SiteId::Cori)
    }

    #[test]
    fn healthy_job_completes_with_clean_lifecycle() {
        let svc = Service::start(quick_config());
        let id = svc.submit(miranda_job("climate")).unwrap();
        svc.drain();
        let states: Vec<JobState> = svc.shared.journal.events_for(id).into_iter().map(|e| e.state).collect();
        assert_eq!(
            states,
            vec![JobState::Queued, JobState::Admitted, JobState::Compressing, JobState::Transferring, JobState::Done]
        );
        let m = svc.metrics();
        assert_eq!(m.jobs_done, 1);
        assert_eq!(m.transfer_retries, 0);
        assert!(m.bytes_saved > 0, "compressed job must save bytes");
        assert!(m.latency_p50_s > 0.0);
    }

    #[test]
    fn workload_cache_is_shared_across_jobs() {
        let svc = Service::start(quick_config());
        for _ in 0..3 {
            svc.submit(miranda_job("climate")).unwrap();
        }
        svc.drain();
        assert_eq!(svc.shared.workloads.lock().unwrap().len(), 1);
        assert_eq!(svc.metrics().jobs_done, 3);
    }

    #[test]
    fn unsupported_app_fails_with_reason() {
        let svc = Service::start(quick_config());
        let id = svc.submit(JobSpec::compressed("t", Application::Hacc, 1e-3, SiteId::Anvil, SiteId::Cori)).unwrap();
        svc.drain();
        let last = svc.shared.journal.events_for(id).pop().unwrap();
        match last.state {
            JobState::Failed(reason) => assert!(reason.contains("workload"), "{reason}"),
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(svc.metrics().jobs_failed, 1);
    }

    #[test]
    fn backpressure_rejects_when_queue_is_full() {
        // One worker, capacity 2: flood faster than the worker drains.
        let cfg = ServiceConfig { workers: 1, queue_capacity: 2, ..Default::default() };
        let svc = Service::start(cfg);
        let mut rejected = 0;
        for _ in 0..20 {
            if svc.submit(miranda_job("flood")).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "capacity-2 queue must reject some of 20 rapid submissions");
        svc.drain();
        let m = svc.metrics();
        assert_eq!(m.jobs_rejected, rejected);
        assert_eq!(m.jobs_finished(), m.jobs_submitted);
    }

    #[test]
    fn streamed_jobs_finish_no_slower_than_staged() {
        let staged = Service::start(ServiceConfig { workers: 1, ..Default::default() });
        staged.submit(miranda_job("climate")).unwrap();
        let staged_m = staged.shutdown();
        let streamed =
            Service::start(ServiceConfig { workers: 1, stream_window: 8, codec_threads: 2, ..Default::default() });
        let id = streamed.submit(miranda_job("climate")).unwrap();
        streamed.drain();
        let states: Vec<JobState> = streamed.shared.journal.events_for(id).into_iter().map(|e| e.state).collect();
        assert!(states.contains(&JobState::Done), "streamed job must complete: {states:?}");
        let streamed_m = streamed.shutdown();
        assert_eq!(streamed_m.jobs_done, 1);
        assert!(
            streamed_m.latency_p50_s <= staged_m.latency_p50_s + 1e-6,
            "streamed {} vs staged {}",
            streamed_m.latency_p50_s,
            staged_m.latency_p50_s
        );
    }

    #[test]
    fn shutdown_drains_and_joins() {
        let svc = Service::start(quick_config());
        svc.submit(miranda_job("a")).unwrap();
        svc.submit(miranda_job("b")).unwrap();
        let m = svc.shutdown();
        assert_eq!(m.jobs_finished(), 2);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(m.in_flight, 0);
    }

    #[test]
    fn flaky_wan_triggers_service_retries_that_still_deliver() {
        let cfg = ServiceConfig {
            workers: 2,
            faults: FaultModel { per_attempt_failure_prob: 0.05, max_retries: 5, reconnect_s: 2.0 },
            ..Default::default()
        };
        let svc = Service::start(cfg);
        for i in 0..4 {
            svc.submit(JobSpec::compressed(format!("t{i}"), Application::Miranda, 1e-3, SiteId::Anvil, SiteId::Bebop))
                .unwrap();
        }
        svc.drain();
        let m = svc.metrics();
        // Miranda has 768 files; at 5 % per-attempt failure some fail the
        // first offer, and P(fail 4 straight) ≈ 6e-6 means all deliver.
        assert_eq!(m.jobs_done, 4, "metrics: {m:?}");
        assert!(m.transfer_retries > 0);
        assert!(m.wasted_bytes > 0);
        let journal = svc.journal();
        assert!(journal.iter().any(|e| matches!(e.state, JobState::Retrying(_))));
    }

    #[test]
    fn retry_exhaustion_snaps_a_flight_dump() {
        // Every attempt fails, so the job burns its 2-attempt budget and the
        // service snapshots the flight ring as a post-mortem.
        let cfg = ServiceConfig {
            workers: 1,
            faults: FaultModel { per_attempt_failure_prob: 1.0, max_retries: 1, reconnect_s: 1.0 },
            retry: RetryPolicy { max_attempts: 2, ..Default::default() },
            ..Default::default()
        };
        let svc = Service::start(cfg);
        let id = svc.submit(miranda_job("doomed")).unwrap();
        svc.drain();
        assert_eq!(svc.metrics().jobs_failed, 1);
        let dumps = svc.flight_dumps();
        assert_eq!(dumps.len(), 1, "one exhausted job → one dump");
        let dump = &dumps[0];
        assert_eq!(dump.reason, "retry_exhausted");
        assert_eq!(dump.job, Some(id.0));
        assert_eq!(dump.tenant.as_deref(), Some("doomed"));
        assert!(!dump.events.is_empty(), "ring must hold recent events");
        assert!(dump.journal.iter().any(|e| matches!(e.state, JobState::Failed(_))));
    }

    #[test]
    fn slo_breach_emits_alert_referencing_a_dump() {
        use ocelot_obs::slo::{Severity, SloKind, SloRule};
        // A 1 ns latency target breaches on the second tick: the first tick
        // only seeds the baseline sample, and windows wide enough to reach
        // it make every later windowed p99 exceed the target.
        let cfg = ServiceConfig {
            workers: 1,
            slo: vec![SloRule {
                name: "latency-p99".to_string(),
                severity: Severity::Critical,
                fast_window_s: 1e6,
                slow_window_s: 1e6,
                kind: SloKind::LatencyP99 { histogram: "ocelot_svc_latency_seconds".to_string(), max_s: 1e-9 },
            }],
            profile_scale: 8,
            ..Default::default()
        };
        let svc = Service::start(cfg);
        svc.submit(miranda_job("climate")).unwrap();
        svc.submit(miranda_job("climate")).unwrap();
        svc.drain();
        let alerts = svc.alerts();
        assert_eq!(alerts.len(), 1, "rising edge fires exactly once: {alerts:?}");
        assert_eq!(alerts[0].severity, "critical");
        let file = alerts[0].flight_dump.as_deref().expect("alert must reference its dump");
        let dumps = svc.flight_dumps();
        assert!(dumps.iter().any(|d| d.file == file), "journal alert points at a snapped dump");
        let dump = dumps.iter().find(|d| d.file == file).unwrap();
        assert!(dump.reason.starts_with("slo:"));
        assert!(dump.alerts.iter().any(|a| a.rule == "latency-p99"), "dump embeds the triggering alert");
    }

    #[test]
    fn backoff_pressure_raises_the_recommended_worker_hint() {
        // Every attempt fails and the backoff is enormous, so retry backoff
        // (classified as queue wait) dominates the critical path and the
        // advisory hint asks for a bigger pool.
        let cfg = ServiceConfig {
            workers: 1,
            faults: FaultModel { per_attempt_failure_prob: 1.0, max_retries: 1, reconnect_s: 1.0 },
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_s: 500.0,
                max_backoff_s: 2000.0,
                jitter: 0.0,
                ..Default::default()
            },
            profile_scale: 8,
            ..Default::default()
        };
        let svc = Service::start(cfg);
        svc.submit(miranda_job("burst")).unwrap();
        svc.drain();
        let hint = svc.hint().expect("finished jobs must produce a hint");
        assert_eq!(hint.dominant, "queue_wait", "hint: {hint:?}");
        assert_eq!(hint.recommended_workers, 2);
        let analysis = svc.analyze();
        assert_eq!(analysis.jobs.len(), 1);
        assert!(analysis.per_tenant.contains_key("burst"));
        assert!(analysis.overall.unwrap().stages["queue_wait"] >= 500.0);
    }

    #[test]
    fn streamed_jobs_populate_the_chunk_ledger() {
        use ocelot_obs::ledger::{check_causality, Timeline};
        let svc =
            Service::start(ServiceConfig { workers: 1, stream_window: 4, codec_threads: 2, ..Default::default() });
        let id = svc.submit(miranda_job("climate")).unwrap();
        svc.drain();
        let events = svc.chunk_events(id);
        assert!(!events.is_empty(), "streamed job must leave chunk events");
        let violations = check_causality(&events, id.0);
        assert!(violations.is_empty(), "causality holds: {violations:?}");
        let tl = Timeline::reconstruct(&events, id.0).expect("timeline reconstructs from harvested events");
        assert!(!tl.tracks.is_empty());
        assert!(tl.total_s > 0.0);
        assert_eq!(tl.total_retries(), 0, "healthy link: no retransmits");
        // The accessor is repeatable: harvesting is not destructive per job.
        assert_eq!(svc.chunk_events(id).len(), events.len());
    }

    #[test]
    fn flaky_streamed_wan_attributes_chunk_retries_to_the_tenant() {
        let cfg = ServiceConfig {
            workers: 1,
            stream_window: 2,
            codec_threads: 2,
            faults: FaultModel { per_attempt_failure_prob: 0.3, max_retries: 3, reconnect_s: 1.0 },
            ..Default::default()
        };
        let svc = Service::start(cfg);
        let id = svc.submit(miranda_job("flaky")).unwrap();
        svc.drain();
        let events = svc.chunk_events(id);
        let retransmits = events.iter().filter(|e| e.event == EventKind::Retransmit).count();
        assert!(retransmits > 0, "30% loss over many chunks must retransmit");
        assert!(
            events.iter().filter(|e| e.event == EventKind::Fault).all(|e| e.cause.is_some()),
            "every fault names its cause"
        );
        let analysis = svc.analyze();
        assert_eq!(analysis.chunk_retries.get("flaky").copied(), Some(retransmits as u64));
        // A job-scoped dump embeds the ledger tail for fault attribution.
        let dump = svc.force_flight_dump("postmortem", Some(id));
        assert!(!dump.ledger.is_empty(), "dump embeds the job's ledger tail");
        assert!(dump.ledger.len() <= crate::forensics::LEDGER_EMBED_EVENTS);
    }

    #[test]
    fn finished_jobs_leave_latency_exemplars() {
        let svc = Service::start(quick_config());
        let id = svc.submit(miranda_job("climate")).unwrap();
        svc.drain();
        let h = &svc.shared.metrics.latency;
        let tagged = (0..ocelot_obs::metrics::N_BUCKETS).filter_map(|i| h.exemplar(i)).collect::<Vec<_>>();
        assert_eq!(tagged.len(), 1, "one observation tags exactly one bucket");
        let (job, value) = tagged[0];
        assert_eq!(job, id.0);
        assert!(value > 0.0 && value.is_finite());
    }
}
