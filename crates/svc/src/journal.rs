//! Append-only lifecycle journal.
//!
//! Every job state transition is recorded as an [`Event`] with a global
//! sequence number (total order across workers) and the job's simulated
//! clock. SLO breaches land in the same journal as [`AlertRecord`]s drawing
//! from the same sequence space, so a post-mortem can interleave alerts
//! with the job transitions that caused them. The journal is the service's
//! source of truth for metrics and for test assertions about lifecycle
//! ordering.

use crate::job::{JobId, JobState};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Global append order (gap-free from 0 within one service).
    pub seq: u64,
    /// Job the event belongs to.
    pub job: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Simulated seconds since the job was admitted (0 for `Queued` and
    /// `Admitted`; includes pipeline phases and retry backoff afterwards).
    pub t_s: f64,
    /// The state entered.
    pub state: JobState,
}

/// One journaled SLO alert, sharing the journal's sequence space with job
/// transitions so the two interleave chronologically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRecord {
    /// Global append order (shared with [`Event`]).
    pub seq: u64,
    /// SLO rule that fired.
    pub rule: String,
    /// `"warning"` or `"critical"`.
    pub severity: String,
    /// Simulated seconds at evaluation time.
    pub t_s: f64,
    /// Observed value that breached.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Human-readable one-liner.
    pub message: String,
    /// File name of the flight dump snapped for this alert, if one was
    /// written.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub flight_dump: Option<String>,
}

/// Thread-safe append-only event log.
#[derive(Debug, Default)]
pub struct Journal {
    events: Mutex<Vec<Event>>,
    alerts: Mutex<Vec<AlertRecord>>,
    next_seq: AtomicU64,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one transition and returns its sequence number.
    pub fn record(&self, job: JobId, tenant: &str, t_s: f64, state: JobState) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = Event { seq, job, tenant: tenant.to_string(), t_s, state };
        self.events.lock().expect("journal poisoned").push(event);
        seq
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("journal poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of all events, sorted by sequence number.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events = self.events.lock().expect("journal poisoned").clone();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// All events for one job, in order.
    pub fn events_for(&self, job: JobId) -> Vec<Event> {
        let mut events: Vec<Event> =
            self.events.lock().expect("journal poisoned").iter().filter(|e| e.job == job).cloned().collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Appends one SLO alert (optionally referencing a flight-dump file) and
    /// returns its sequence number.
    pub fn record_alert(&self, alert: &ocelot_obs::slo::Alert, flight_dump: Option<String>) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let record = AlertRecord {
            seq,
            rule: alert.rule.clone(),
            severity: alert.severity.name().to_string(),
            t_s: alert.t_s,
            value: alert.value,
            threshold: alert.threshold,
            message: alert.message.clone(),
            flight_dump,
        };
        self.alerts.lock().expect("journal poisoned").push(record);
        seq
    }

    /// A point-in-time copy of all alerts, sorted by sequence number.
    pub fn alerts(&self) -> Vec<AlertRecord> {
        let mut alerts = self.alerts.lock().expect("journal poisoned").clone();
        alerts.sort_by_key(|a| a.seq);
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_get_gap_free_sequence_numbers() {
        let j = Journal::new();
        j.record(JobId(1), "a", 0.0, JobState::Queued);
        j.record(JobId(2), "b", 0.0, JobState::Queued);
        j.record(JobId(1), "a", 0.0, JobState::Admitted);
        let seqs: Vec<u64> = j.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn per_job_history_is_ordered() {
        let j = Journal::new();
        j.record(JobId(1), "a", 0.0, JobState::Queued);
        j.record(JobId(2), "b", 0.0, JobState::Queued);
        j.record(JobId(1), "a", 0.0, JobState::Admitted);
        j.record(JobId(1), "a", 12.5, JobState::Done);
        let states: Vec<JobState> = j.events_for(JobId(1)).into_iter().map(|e| e.state).collect();
        assert_eq!(states, vec![JobState::Queued, JobState::Admitted, JobState::Done]);
    }

    #[test]
    fn concurrent_appends_never_lose_events() {
        let j = std::sync::Arc::new(Journal::new());
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        j.record(JobId(w * 100 + i), "t", 0.0, JobState::Queued);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.len(), 200);
        let seqs: Vec<u64> = j.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn alerts_share_the_sequence_space_and_round_trip() {
        let j = Journal::new();
        j.record(JobId(1), "a", 0.0, JobState::Queued);
        let alert = ocelot_obs::slo::Alert {
            rule: "p99-latency".into(),
            severity: ocelot_obs::slo::Severity::Critical,
            t_s: 12.0,
            value: 42.0,
            threshold: 30.0,
            message: "p99 42s > 30s".into(),
        };
        let seq = j.record_alert(&alert, Some("flight-0-p99-latency.json".into()));
        assert_eq!(seq, 1, "alerts draw from the same sequence counter");
        j.record(JobId(1), "a", 13.0, JobState::Done);
        let alerts = j.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].severity, "critical");
        assert_eq!(alerts[0].flight_dump.as_deref(), Some("flight-0-p99-latency.json"));
        let s = serde_json::to_string(&alerts[0]).unwrap();
        let back: AlertRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(back, alerts[0]);
        // The dump reference is omitted from JSON when absent.
        let bare = AlertRecord { flight_dump: None, ..alerts[0].clone() };
        assert!(!serde_json::to_string(&bare).unwrap().contains("flight_dump"));
    }

    #[test]
    fn events_serialize_to_json() {
        let e = Event { seq: 3, job: JobId(9), tenant: "climate".into(), t_s: 4.5, state: JobState::Retrying(1) };
        let s = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
