//! Append-only lifecycle journal.
//!
//! Every job state transition is recorded as an [`Event`] with a global
//! sequence number (total order across workers) and the job's simulated
//! clock. The journal is the service's source of truth for metrics and for
//! test assertions about lifecycle ordering.

use crate::job::{JobId, JobState};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Global append order (gap-free from 0 within one service).
    pub seq: u64,
    /// Job the event belongs to.
    pub job: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Simulated seconds since the job was admitted (0 for `Queued` and
    /// `Admitted`; includes pipeline phases and retry backoff afterwards).
    pub t_s: f64,
    /// The state entered.
    pub state: JobState,
}

/// Thread-safe append-only event log.
#[derive(Debug, Default)]
pub struct Journal {
    events: Mutex<Vec<Event>>,
    next_seq: AtomicU64,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one transition and returns its sequence number.
    pub fn record(&self, job: JobId, tenant: &str, t_s: f64, state: JobState) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = Event { seq, job, tenant: tenant.to_string(), t_s, state };
        self.events.lock().expect("journal poisoned").push(event);
        seq
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("journal poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of all events, sorted by sequence number.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events = self.events.lock().expect("journal poisoned").clone();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// All events for one job, in order.
    pub fn events_for(&self, job: JobId) -> Vec<Event> {
        let mut events: Vec<Event> =
            self.events.lock().expect("journal poisoned").iter().filter(|e| e.job == job).cloned().collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_get_gap_free_sequence_numbers() {
        let j = Journal::new();
        j.record(JobId(1), "a", 0.0, JobState::Queued);
        j.record(JobId(2), "b", 0.0, JobState::Queued);
        j.record(JobId(1), "a", 0.0, JobState::Admitted);
        let seqs: Vec<u64> = j.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn per_job_history_is_ordered() {
        let j = Journal::new();
        j.record(JobId(1), "a", 0.0, JobState::Queued);
        j.record(JobId(2), "b", 0.0, JobState::Queued);
        j.record(JobId(1), "a", 0.0, JobState::Admitted);
        j.record(JobId(1), "a", 12.5, JobState::Done);
        let states: Vec<JobState> = j.events_for(JobId(1)).into_iter().map(|e| e.state).collect();
        assert_eq!(states, vec![JobState::Queued, JobState::Admitted, JobState::Done]);
    }

    #[test]
    fn concurrent_appends_never_lose_events() {
        let j = std::sync::Arc::new(Journal::new());
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        j.record(JobId(w * 100 + i), "t", 0.0, JobState::Queued);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.len(), 200);
        let seqs: Vec<u64> = j.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn events_serialize_to_json() {
        let e = Event { seq: 3, job: JobId(9), tenant: "climate".into(), t_s: 4.5, state: JobState::Retrying(1) };
        let s = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
