//! Service-level bottleneck analysis: per-job, per-tenant, and overall
//! critical-path attribution plus the advisory scheduler hint derived from
//! the dominant stage.
//!
//! The heavy lifting lives in [`ocelot_obs::critpath`]; this module groups
//! its reports by tenant, reshapes them into serde-friendly summaries for
//! the `ocelot analyze` CLI and the bottleneck schema, and turns "where did
//! the time go" into "what should the operator change".

use ocelot_obs::critpath::{self, BottleneckReport, Stage};
use ocelot_obs::metrics::{Metric, Registry};
use ocelot_obs::prof::{Kernel, KERNEL_METRIC_PREFIX};
use ocelot_obs::span::SpanRecord;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Serializable view of one [`BottleneckReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckSummary {
    /// Union of covered simulated time — the experienced latency.
    pub critical_path_s: f64,
    /// Serialized work (sum of exclusive span times); `>= critical_path_s`.
    pub total_s: f64,
    /// Simulated seconds hidden by overlapping work.
    pub overlap_savings_s: f64,
    /// Stage with the most attributed time (stable lowercase label).
    pub dominant: String,
    /// Seconds attributed to each stage, keyed by stage label.
    pub stages: BTreeMap<String, f64>,
}

impl From<&BottleneckReport> for BottleneckSummary {
    fn from(r: &BottleneckReport) -> Self {
        BottleneckSummary {
            critical_path_s: r.critical_path_s,
            total_s: r.total_s,
            overlap_savings_s: r.overlap_savings_s(),
            dominant: r.dominant.name().to_string(),
            stages: r.stages().map(|(s, v)| (s.name().to_string(), v)).collect(),
        }
    }
}

/// One job's attribution, tagged with its owner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAnalysis {
    /// Job id.
    pub job: u64,
    /// Owning tenant, when the journal knows it.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub tenant: Option<String>,
    /// Where the job's simulated time went.
    pub report: BottleneckSummary,
}

/// Advisory scheduling hint derived from the dominant stage. The service
/// exposes it (and mirrors `recommended_workers` into the
/// `ocelot_svc_recommended_workers` gauge) rather than resizing its own
/// pool mid-run — operators and tests read the signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerHint {
    /// Dominant stage label the hint reacts to.
    pub dominant: String,
    /// Worker-pool size the dominant stage suggests.
    pub recommended_workers: usize,
    /// Human-readable recommendation.
    pub advice: String,
}

/// The full `ocelot analyze` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceAnalysis {
    /// Per-job attribution, ascending job id.
    pub jobs: Vec<JobAnalysis>,
    /// Per-tenant aggregates (sums over the tenant's jobs).
    pub per_tenant: BTreeMap<String, BottleneckSummary>,
    /// Aggregate over every analyzed job.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub overall: Option<BottleneckSummary>,
    /// Advisory scheduler hint from the overall dominant stage.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub hint: Option<SchedulerHint>,
    /// Chunk retransmits per tenant, counted from the chunk ledger (empty
    /// when no streamed job saw a fault).
    #[serde(skip_serializing_if = "BTreeMap::is_empty", default)]
    pub chunk_retries: BTreeMap<String, u64>,
}

/// The kernel with the largest attributed wall time in the registry's
/// `ocelot_sz_kernel_*_seconds` histograms (from the continuous profiler),
/// with its share of the total kernel time. `None` when no kernel histogram
/// has recorded anything (profiling disabled or no compression run yet).
fn dominant_kernel(registry: &Registry) -> Option<(Kernel, f64)> {
    let mut total = 0.0;
    let mut best: Option<(Kernel, f64)> = None;
    for kernel in Kernel::ALL {
        let name = format!("{KERNEL_METRIC_PREFIX}{}_seconds", kernel.name());
        let Some(Metric::Histogram(h)) = registry.get(&name) else { continue };
        let sum = h.sum();
        total += sum;
        if sum > 0.0 && best.map(|(_, s)| sum > s).unwrap_or(true) {
            best = Some((kernel, sum));
        }
    }
    best.filter(|_| total > 0.0).map(|(k, s)| (k, s / total))
}

/// Kernel-specific remediation for a compression-dominated pipeline, from
/// the profiler's per-kernel attribution.
fn kernel_advice(kernel: Kernel, share: f64) -> String {
    let pct = share * 100.0;
    let what = match kernel {
        Kernel::HuffmanEncode => {
            "the per-job shared Huffman table already amortizes tree builds; \
             shrink the quantizer radius (smaller alphabet) or try the rle backend"
        }
        Kernel::Predict => {
            "the predictor sweep is already fused; loosen the error bound (fewer escapes) \
             or prefer lorenzo over interp/regression for wire-speed encodes"
        }
        Kernel::FrameCrc => "framing is already zero-copy with inline CRC; raise chunk_points to cut fewer frames",
        Kernel::Lz => "raise the LZ acceleration factor or skip LZ for low-entropy chunks",
        Kernel::Rle => "try the plain Huffman backend; RLE is not paying for itself here",
        _ => "profile the compression kernels further (`ocelot perf record --folded`)",
    };
    format!("compression dominates and {} leads its kernels ({pct:.0}% of kernel time); {what}", kernel.name())
}

/// Share of chunk transfers that had to be re-sent, from the streamed
/// orchestrator's `ocelot_chunk_retries_total` / `ocelot_chunk_transfers_total`
/// counters. `None` when no chunk has been transferred yet.
fn chunk_retry_share(registry: &Registry) -> Option<f64> {
    let read = |name: &str| match registry.get(name) {
        Some(Metric::Counter(c)) => c.get(),
        _ => 0,
    };
    let transfers = read("ocelot_chunk_transfers_total");
    if transfers == 0 {
        return None;
    }
    Some(read("ocelot_chunk_retries_total") as f64 / transfers as f64)
}

/// Retransmits start to dominate the wire story above this share of chunk
/// transfers; below it, generic transfer advice applies.
const RETRY_DOMINANT_SHARE: f64 = 0.25;

/// Derives the advisory hint from an aggregate report and the current pool
/// size. Queue/backoff wait is the one stage more concurrency directly
/// attacks, so it is the only stage that grows the pool. When compression
/// dominates and a registry with profiler kernel histograms is available,
/// the advice names the dominant kernel instead of the generic remedy;
/// when transfer dominates and the chunk ledger shows retransmits eating a
/// large share of the wire, the advice targets retries instead of bandwidth.
pub fn derive_hint(report: &BottleneckReport, workers: usize, registry: Option<&Registry>) -> SchedulerHint {
    let (recommended_workers, advice) = match report.dominant {
        Stage::QueueWait => {
            (workers.max(1) * 2, "queue/backoff wait dominates; raise concurrent workers so waits overlap".to_string())
        }
        Stage::Compress => {
            let advice =
                registry.and_then(dominant_kernel).map(|(kernel, share)| kernel_advice(kernel, share)).unwrap_or_else(
                    || "compression dominates; prefer the overlapped strategy or add source nodes".to_string(),
                );
            (workers, advice)
        }
        Stage::Group => (workers, "grouping dominates; raise the transfer group size".to_string()),
        Stage::Transfer => {
            let advice = match registry.and_then(chunk_retry_share) {
                Some(share) if share > RETRY_DOMINANT_SHARE => format!(
                    "chunk retries dominate the wire ({:.0}% of chunk transfers re-sent); \
                     enable resume or shrink chunk_points",
                    share * 100.0
                ),
                _ => "WAN transfer dominates; raise GridFTP parallelism or loosen error bounds".to_string(),
            };
            (workers, advice)
        }
        Stage::Stall => {
            (workers, "streaming back-pressure dominates; raise stream_window so chunks keep flowing".to_string())
        }
        Stage::Decompress => (workers, "decompression dominates; add destination nodes".to_string()),
        Stage::Other => {
            (workers, "no pipeline stage dominates; envelope overhead leads — profile the service layer".to_string())
        }
    };
    SchedulerHint { dominant: report.dominant.name().to_string(), recommended_workers, advice }
}

/// Builds the full analysis from recorded spans, the job→tenant map (from
/// the journal), the configured pool size, and (optionally) a metrics
/// registry whose profiler kernel histograms refine the hint.
pub fn build_analysis(
    spans: &[SpanRecord],
    tenants: &HashMap<u64, String>,
    workers: usize,
    registry: Option<&Registry>,
) -> ServiceAnalysis {
    let reports = critpath::analyze_jobs(spans);
    let jobs: Vec<JobAnalysis> = reports
        .iter()
        .map(|r| JobAnalysis {
            job: r.job.unwrap_or(0),
            tenant: r.job.and_then(|j| tenants.get(&j).cloned()),
            report: BottleneckSummary::from(r),
        })
        .collect();

    let mut by_tenant: BTreeMap<String, Vec<&BottleneckReport>> = BTreeMap::new();
    for r in &reports {
        let tenant = r.job.and_then(|j| tenants.get(&j).cloned()).unwrap_or_else(|| "(unknown)".to_string());
        by_tenant.entry(tenant).or_default().push(r);
    }
    let per_tenant: BTreeMap<String, BottleneckSummary> = by_tenant
        .into_iter()
        .filter_map(|(tenant, rs)| critpath::aggregate(rs).map(|agg| (tenant, BottleneckSummary::from(&agg))))
        .collect();

    let overall = critpath::aggregate(&reports);
    let hint = overall.as_ref().map(|o| derive_hint(o, workers, registry));
    ServiceAnalysis {
        jobs,
        per_tenant,
        overall: overall.as_ref().map(BottleneckSummary::from),
        hint,
        chunk_retries: BTreeMap::new(),
    }
}

/// Renders the analysis as a human-readable table (the CLI's default view;
/// `--json` gets the serde form instead).
pub fn render_analysis(analysis: &ServiceAnalysis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ =
        writeln!(out, "bottleneck analysis: {} job(s), {} tenant(s)", analysis.jobs.len(), analysis.per_tenant.len());
    for (tenant, s) in &analysis.per_tenant {
        let _ = writeln!(
            out,
            "  tenant {tenant}: critical path {:.3}s, dominant {} ({:.3}s), overlap saved {:.3}s",
            s.critical_path_s,
            s.dominant,
            s.stages.get(&s.dominant).copied().unwrap_or(0.0),
            s.overlap_savings_s
        );
    }
    if let Some(o) = &analysis.overall {
        let _ = writeln!(out, "  overall: critical path {:.3}s, serialized work {:.3}s", o.critical_path_s, o.total_s);
        for (stage, v) in &o.stages {
            if *v > 0.0 {
                let pct = if o.critical_path_s > 0.0 { 100.0 * v / o.critical_path_s } else { 0.0 };
                let _ = writeln!(out, "    {stage:<11} {v:>10.3}s ({pct:>5.1}%)");
            }
        }
    }
    if !analysis.chunk_retries.is_empty() {
        for (tenant, n) in &analysis.chunk_retries {
            let _ = writeln!(out, "  chunk retries: tenant {tenant} re-sent {n} chunk(s)");
        }
    }
    if let Some(h) = &analysis.hint {
        let _ = writeln!(out, "  hint: {} (recommended workers: {})", h.advice, h.recommended_workers);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_obs::span::Recorder;

    fn spans_for_two_tenants() -> (Vec<SpanRecord>, HashMap<u64, String>) {
        let r = Recorder::new();
        let a = r.sim_span("pipeline", Some(1), 0, 0.0, 10.0);
        r.sim_child(a, "pipeline.queue_wait", Some(1), 0, 0.0, 8.0);
        r.sim_child(a, "pipeline.transfer", Some(1), 0, 8.0, 10.0);
        let b = r.sim_span("pipeline", Some(2), 0, 0.0, 6.0);
        r.sim_child(b, "pipeline.transfer", Some(2), 0, 0.0, 6.0);
        let tenants = HashMap::from([(1, "climate".to_string()), (2, "seismic".to_string())]);
        (r.spans(), tenants)
    }

    #[test]
    fn analysis_groups_by_tenant_and_derives_a_hint() {
        let (spans, tenants) = spans_for_two_tenants();
        let analysis = build_analysis(&spans, &tenants, 3, None);
        assert_eq!(analysis.jobs.len(), 2);
        assert_eq!(analysis.jobs[0].tenant.as_deref(), Some("climate"));
        assert_eq!(analysis.per_tenant["climate"].dominant, "queue_wait");
        assert_eq!(analysis.per_tenant["seismic"].dominant, "transfer");
        let overall = analysis.overall.as_ref().unwrap();
        assert!((overall.critical_path_s - 16.0).abs() < 1e-9);
        // 8s queue wait vs 8s transfer: queue_wait wins ties in Stage::ALL
        // order, so the hint doubles the pool.
        let hint = analysis.hint.as_ref().unwrap();
        assert_eq!(hint.dominant, "queue_wait");
        assert_eq!(hint.recommended_workers, 6);
        assert!(hint.advice.contains("workers"));
    }

    #[test]
    fn transfer_dominant_keeps_the_pool_size() {
        let r = Recorder::new();
        let a = r.sim_span("pipeline", Some(1), 0, 0.0, 10.0);
        r.sim_child(a, "pipeline.transfer", Some(1), 0, 0.0, 10.0);
        let analysis = build_analysis(&r.spans(), &HashMap::new(), 4, None);
        let hint = analysis.hint.unwrap();
        assert_eq!(hint.dominant, "transfer");
        assert_eq!(hint.recommended_workers, 4);
        assert_eq!(analysis.per_tenant["(unknown)"].dominant, "transfer");
    }

    /// Spans whose dominant stage is transfer, for the retry-hint tests.
    fn transfer_dominant_spans() -> Vec<SpanRecord> {
        let r = Recorder::new();
        let a = r.sim_span("pipeline", Some(1), 0, 0.0, 10.0);
        r.sim_child(a, "pipeline.transfer", Some(1), 0, 0.0, 10.0);
        r.spans()
    }

    #[test]
    fn retransmit_dominant_transfer_advises_resume() {
        // 400 of 1000 chunk transfers re-sent: well past the 25% threshold,
        // so the hint blames retries, not raw bandwidth.
        let registry = Registry::new();
        registry.counter("ocelot_chunk_transfers_total", "c").add(1000);
        registry.counter("ocelot_chunk_retries_total", "c").add(400);
        let analysis = build_analysis(&transfer_dominant_spans(), &HashMap::new(), 4, Some(&registry));
        let hint = analysis.hint.unwrap();
        assert_eq!(hint.dominant, "transfer");
        assert_eq!(hint.recommended_workers, 4, "retries are not fixed by more workers");
        assert!(hint.advice.contains("chunk retries dominate"), "advice: {}", hint.advice);
        assert!(hint.advice.contains("40%"), "advice carries the share: {}", hint.advice);
        assert!(hint.advice.contains("resume"), "advice: {}", hint.advice);
    }

    #[test]
    fn modest_retry_share_keeps_the_generic_transfer_advice() {
        // 10% re-sent is background noise; and a registry with zero chunk
        // transfers (staged-only service) must not divide by zero.
        let registry = Registry::new();
        registry.counter("ocelot_chunk_transfers_total", "c").add(1000);
        registry.counter("ocelot_chunk_retries_total", "c").add(100);
        let analysis = build_analysis(&transfer_dominant_spans(), &HashMap::new(), 4, Some(&registry));
        assert!(analysis.hint.unwrap().advice.contains("GridFTP parallelism"));
        let empty = Registry::new();
        let analysis = build_analysis(&transfer_dominant_spans(), &HashMap::new(), 4, Some(&empty));
        assert!(analysis.hint.unwrap().advice.contains("GridFTP parallelism"));
    }

    #[test]
    fn stall_dominant_advises_a_wider_window() {
        let r = Recorder::new();
        let root = r.sim_span("pipeline.streamed", Some(1), 0, 0.0, 10.0);
        let t = r.sim_child(root, "pipeline.transfer", Some(1), 0, 0.0, 10.0);
        r.sim_child(t, "pipeline.transfer.stream_stall", Some(1), 0, 1.0, 9.0);
        let analysis = build_analysis(&r.spans(), &HashMap::new(), 4, None);
        let hint = analysis.hint.unwrap();
        assert_eq!(hint.dominant, "stall");
        assert_eq!(hint.recommended_workers, 4, "back-pressure is not fixed by more workers");
        assert!(hint.advice.contains("stream_window"));
    }

    /// Spans whose dominant stage is compression, for kernel-hint tests.
    fn compress_dominant_spans() -> Vec<SpanRecord> {
        let r = Recorder::new();
        let a = r.sim_span("pipeline", Some(1), 0, 0.0, 10.0);
        r.sim_child(a, "pipeline.compress", Some(1), 0, 0.0, 9.0);
        r.sim_child(a, "pipeline.transfer", Some(1), 0, 9.0, 10.0);
        r.spans()
    }

    #[test]
    fn compress_dominant_hint_names_the_leading_kernel() {
        let registry = Registry::new();
        // huffman_encode 3s vs predict 1s: the hint must single it out and
        // suggest the shared-table remedy.
        registry.histogram("ocelot_sz_kernel_huffman_encode_seconds", "k").observe(3.0);
        registry.histogram("ocelot_sz_kernel_predict_seconds", "k").observe(1.0);
        let analysis = build_analysis(&compress_dominant_spans(), &HashMap::new(), 4, Some(&registry));
        let hint = analysis.hint.unwrap();
        assert_eq!(hint.dominant, "compress");
        assert_eq!(hint.recommended_workers, 4);
        assert!(hint.advice.contains("huffman_encode"), "advice: {}", hint.advice);
        assert!(hint.advice.contains("75%"), "advice carries the share: {}", hint.advice);
        assert!(hint.advice.contains("Huffman table"), "advice: {}", hint.advice);
    }

    #[test]
    fn compress_dominant_hint_falls_back_without_kernel_data() {
        // No registry at all, and a registry with empty kernel histograms,
        // both fall back to the generic compression advice.
        let analysis = build_analysis(&compress_dominant_spans(), &HashMap::new(), 4, None);
        assert!(analysis.hint.unwrap().advice.contains("overlapped strategy"));
        let registry = Registry::new();
        registry.histogram("ocelot_sz_kernel_predict_seconds", "k");
        let analysis = build_analysis(&compress_dominant_spans(), &HashMap::new(), 4, Some(&registry));
        assert!(analysis.hint.unwrap().advice.contains("overlapped strategy"));
    }

    #[test]
    fn kernel_hint_only_applies_when_compression_dominates() {
        // Transfer-dominated pipeline: kernel histograms present, but the
        // hint must stay about the WAN, not the codec.
        let registry = Registry::new();
        registry.histogram("ocelot_sz_kernel_huffman_encode_seconds", "k").observe(3.0);
        let r = Recorder::new();
        let a = r.sim_span("pipeline", Some(1), 0, 0.0, 10.0);
        r.sim_child(a, "pipeline.transfer", Some(1), 0, 0.0, 10.0);
        let analysis = build_analysis(&r.spans(), &HashMap::new(), 4, Some(&registry));
        let hint = analysis.hint.unwrap();
        assert_eq!(hint.dominant, "transfer");
        assert!(!hint.advice.contains("huffman"), "advice: {}", hint.advice);
    }

    #[test]
    fn analysis_serializes_and_renders() {
        let (spans, tenants) = spans_for_two_tenants();
        let analysis = build_analysis(&spans, &tenants, 2, None);
        let js = serde_json::to_string_pretty(&analysis).unwrap();
        let back: ServiceAnalysis = serde_json::from_str(&js).unwrap();
        assert_eq!(back, analysis);
        let text = render_analysis(&analysis);
        assert!(text.contains("tenant climate"));
        assert!(text.contains("hint:"));
    }

    #[test]
    fn empty_spans_yield_an_empty_analysis() {
        let analysis = build_analysis(&[], &HashMap::new(), 2, None);
        assert!(analysis.jobs.is_empty());
        assert!(analysis.overall.is_none());
        assert!(analysis.hint.is_none());
    }
}
