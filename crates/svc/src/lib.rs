//! # ocelot-svc — the Ocelot transfer *service*
//!
//! The core crates model one pipeline at a time; real deployments run a
//! long-lived service that many science projects share. This crate adds
//! that layer: a multi-tenant job queue with round-robin fairness and
//! bounded backpressure, a concurrent worker pool driving
//! [`ocelot::orchestrator::Orchestrator`] pipelines, service-owned retries
//! with exponential backoff over a faulty WAN
//! ([`ocelot_netsim::FaultModel`]), an append-only lifecycle journal, and
//! aggregate metrics that serialize to JSON.
//!
//! Phase-2 observability rides on the same service: [`analyze`] turns
//! recorded spans into per-job/per-tenant bottleneck reports and an
//! advisory scheduler hint, [`forensics`] snapshots the obs flight ring
//! into self-contained post-mortem dumps on failures and SLO breaches, and
//! the journal interleaves [`journal::AlertRecord`]s with job transitions.
//!
//! ```
//! use ocelot_svc::{JobSpec, Service, ServiceConfig};
//! use ocelot_datagen::Application;
//! use ocelot_netsim::SiteId;
//!
//! let svc = Service::start(ServiceConfig::default());
//! let id = svc
//!     .submit(JobSpec::compressed("climate", Application::Miranda, 1e-3, SiteId::Anvil, SiteId::Cori))
//!     .unwrap();
//! svc.drain();
//! let metrics = svc.metrics();
//! assert_eq!(metrics.jobs_done, 1);
//! println!("{id}: {}", serde_json::to_string(&metrics).unwrap());
//! ```

pub mod analyze;
pub mod forensics;
pub mod job;
pub mod journal;
pub mod metrics;
pub mod queue;
pub mod retry;
pub mod scheduler;
pub mod schema;

pub use analyze::{BottleneckSummary, JobAnalysis, SchedulerHint, ServiceAnalysis};
pub use forensics::{ledger_json, render_postmortem, DumpEvent, FlightDump, LedgerEventRecord};
pub use job::{JobId, JobReport, JobSpec, JobState};
pub use journal::{AlertRecord, Event, Journal};
pub use metrics::{MetricsSnapshot, TenantStats};
pub use queue::{SubmitError, TenantQueue};
pub use retry::RetryPolicy;
pub use scheduler::{Service, ServiceConfig};
