//! Minimal JSON-Schema validator for the checked-in export schemas.
//!
//! The observability exporters (`ocelot metrics --json`, `ocelot trace`)
//! hand-emit JSON; `schemas/*.schema.json` pin their shape and CI validates
//! every export against them. Only the subset of JSON Schema those files
//! use is implemented: `type` (string or array of strings), `required`,
//! `properties`, `items`, `minItems`, `minimum`, and `enum`. Unknown
//! keywords are ignored, matching JSON Schema's open-world semantics.

use serde_json::Value;

/// Validates `value` against `schema`, returning every violation as a
/// human-readable message with a JSON-pointer-style path. Empty means valid.
pub fn validate(schema: &Value, value: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    check(schema, value, "$", &mut errors);
    errors
}

fn check(schema: &Value, value: &Value, path: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            Value::String(s) => vec![s.as_str()],
            Value::Array(items) => items.iter().filter_map(Value::as_str).collect(),
            _ => Vec::new(),
        };
        if !allowed.is_empty() && !allowed.iter().any(|t| type_matches(t, value)) {
            errors.push(format!("{path}: expected type {}, got {}", allowed.join("|"), value.kind()));
            return; // structural keywords below assume the right type
        }
    }
    if let Some(Value::Array(options)) = schema.get("enum") {
        if !options.iter().any(|o| o == value) {
            errors.push(format!("{path}: {value} is not one of the allowed values"));
        }
    }
    if let Some(min) = schema.get("minimum").and_then(Value::as_f64) {
        if let Some(v) = value.as_f64() {
            if v < min {
                errors.push(format!("{path}: {v} is below the minimum {min}"));
            }
        }
    }
    if let Some(Value::Array(required)) = schema.get("required") {
        if let Some(entries) = value.as_object() {
            for key in required.iter().filter_map(Value::as_str) {
                if !entries.iter().any(|(k, _)| k == key) {
                    errors.push(format!("{path}: missing required property '{key}'"));
                }
            }
        }
    }
    if let Some(props) = schema.get("properties").and_then(Value::as_object) {
        if let Some(entries) = value.as_object() {
            for (key, sub) in props {
                if let Some((_, v)) = entries.iter().find(|(k, _)| k == key) {
                    check(sub, v, &format!("{path}.{key}"), errors);
                }
            }
        }
    }
    if let Some(items) = value.as_array() {
        if let Some(min) = schema.get("minItems").and_then(Value::as_u64) {
            if (items.len() as u64) < min {
                errors.push(format!("{path}: has {} item(s), schema requires at least {min}", items.len()));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                check(item_schema, item, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn type_matches(ty: &str, value: &Value) -> bool {
    match ty {
        "null" => matches!(value, Value::Null),
        "boolean" => matches!(value, Value::Bool(_)),
        "integer" => matches!(value, Value::UInt(_) | Value::Int(_)),
        "number" => matches!(value, Value::UInt(_) | Value::Int(_) | Value::Float(_)),
        "string" => matches!(value, Value::String(_)),
        "array" => matches!(value, Value::Array(_)),
        "object" => matches!(value, Value::Object(_)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::from_str(s).unwrap()
    }

    #[test]
    fn validates_types_required_and_enums() {
        let schema = parse(
            r#"{"type":"object","required":["a","b"],"properties":{
                "a":{"type":"string"},
                "b":{"enum":["x","y"]},
                "c":{"type":["number","string"]}}}"#,
        );
        assert!(validate(&schema, &parse(r#"{"a":"hi","b":"x","c":1.5}"#)).is_empty());
        assert!(validate(&schema, &parse(r#"{"a":"hi","b":"y","c":"s"}"#)).is_empty());

        let errs = validate(&schema, &parse(r#"{"a":3,"b":"z"}"#));
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].contains("$.a") && errs[0].contains("string"));
        assert!(errs[1].contains("$.b"));

        let errs = validate(&schema, &parse(r#"{"a":"hi"}"#));
        assert!(errs.iter().any(|e| e.contains("missing required property 'b'")), "{errs:?}");
    }

    #[test]
    fn validates_arrays_items_and_min_items() {
        let schema = parse(
            r#"{"type":"array","minItems":2,"items":{"type":"object","required":["n"],
                "properties":{"n":{"type":"integer"}}}}"#,
        );
        assert!(validate(&schema, &parse(r#"[{"n":1},{"n":2}]"#)).is_empty());
        let errs = validate(&schema, &parse(r#"[{"n":1.5}]"#));
        assert!(errs.iter().any(|e| e.contains("at least 2")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("$[0].n")), "{errs:?}");
    }

    #[test]
    fn validates_minimum() {
        let schema = parse(
            r#"{"type":"object","properties":{"cores":{"type":"integer","minimum":1},"r":{"type":"number","minimum":0}}}"#,
        );
        assert!(validate(&schema, &parse(r#"{"cores":4,"r":0.0}"#)).is_empty());
        assert!(validate(&schema, &parse(r#"{"cores":1,"r":1.5}"#)).is_empty());
        let errs = validate(&schema, &parse(r#"{"cores":0,"r":-0.1}"#));
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].contains("$.cores") && errs[0].contains("below the minimum"));
        assert!(errs[1].contains("$.r"));
        // Non-numeric values are the `type` keyword's problem, not `minimum`'s.
        let errs = validate(&parse(r#"{"minimum":3}"#), &parse(r#""str""#));
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn checked_in_stream_trajectory_matches_perf_schema() {
        // The migrated BENCH_stream.json must stay a valid perf trajectory:
        // schema-clean and deserializable into `ocelot::perf::Trajectory`.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let schema: Value =
            serde_json::from_str(&std::fs::read_to_string(format!("{root}/schemas/perf.schema.json")).unwrap())
                .unwrap();
        let text = std::fs::read_to_string(format!("{root}/crates/bench/BENCH_stream.json")).unwrap();
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(validate(&schema, &doc), Vec::<String>::new());
        let traj: ocelot::perf::Trajectory = serde_json::from_str(&text).unwrap();
        assert_eq!(traj.bench, "stream_overlap");
        assert!(!traj.records.is_empty());
        let first = &traj.records[0];
        assert!(first.env.cores >= 1);
        assert!(first.scenarios.iter().any(|s| s.scenario.starts_with("staged_")));
        assert!(!first.meta.is_null(), "migrated record keeps its margins in meta");
    }

    #[test]
    fn checked_in_schemas_parse_and_accept_real_exports() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas");
        let metrics_schema: Value =
            serde_json::from_str(&std::fs::read_to_string(format!("{root}/metrics.schema.json")).unwrap()).unwrap();
        let trace_schema: Value =
            serde_json::from_str(&std::fs::read_to_string(format!("{root}/trace.schema.json")).unwrap()).unwrap();

        let obs = ocelot_obs::Obs::enabled();
        obs.inc("ocelot_test_jobs_total", "jobs");
        obs.observe("ocelot_test_lat_seconds", "latency", 0.5);
        let id = obs.sim_span("pipeline", Some(0), 0, 0.0, 2.0);
        obs.sim_child(id, "pipeline.transfer", Some(0), 0, 0.0, 2.0);

        let metrics: Value = serde_json::from_str(&ocelot_obs::export::metrics_json(obs.registry().unwrap())).unwrap();
        assert_eq!(validate(&metrics_schema, &metrics), Vec::<String>::new());

        let trace: Value =
            serde_json::from_str(&ocelot_obs::export::chrome_trace(&obs.recorder().unwrap().spans())).unwrap();
        assert_eq!(validate(&trace_schema, &trace), Vec::<String>::new());

        // The schemas are not vacuous: an empty export must fail minItems.
        let empty: Value = serde_json::from_str(r#"{"metrics":[]}"#).unwrap();
        assert!(!validate(&metrics_schema, &empty).is_empty());
        let empty: Value = serde_json::from_str(r#"{"displayTimeUnit":"ms","traceEvents":[]}"#).unwrap();
        assert!(!validate(&trace_schema, &empty).is_empty());
    }
}
