//! `ocelot` — command-line front end to the transfer framework.
//!
//! ```text
//! ocelot gen       --app cesm --field TROP_Z --scale 16 -o field.f32
//! ocelot compress  field.f32 --dims 112x225 --eb 1e-3 -o field.ocz
//! ocelot compress  snapshot.ncl -o snapshot.ocz            # nclite containers
//! ocelot decompress field.ocz -o restored.f32
//! ocelot inspect   field.ocz
//! ocelot sweep     field.f32 --dims 112x225                # eb → ratio/PSNR table
//! ocelot simulate  --app miranda --from anvil --to cori --strategy op --groups 64
//! ocelot plan      --app miranda --from anvil --to cori
//! ```
//!
//! Archives produced from nclite containers are group files whose first
//! member is a JSON manifest of variable names, so they are fully
//! self-describing.

use ocelot::loader::NcliteFile;
use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::perf;
use ocelot::planner::TransferPlanner;
use ocelot::session::{open_archive, TransferSession};
use ocelot::workload::Workload;
use ocelot_datagen::{Application, FieldSpec};
use ocelot_netsim::{FaultModel, SiteId};
use ocelot_obs::slo::{Severity, SloKind, SloRule};
use ocelot_obs::{info, warn};
use ocelot_svc::{FlightDump, JobId, JobSpec, JobState, RetryPolicy, Service, ServiceConfig};
use ocelot_sz::config::{LosslessBackend, PredictorKind};
use ocelot_sz::format as sz_format;
use ocelot_sz::{compress, decompress, metrics, Dataset, ErrorBound, LossyConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliError = Box<dyn std::error::Error>;

fn run(args: &[String]) -> Result<(), CliError> {
    // One process-wide observability handle: every crate's instrumentation
    // (sz stage timings, orchestrator phase spans, service counters) lands
    // in a single registry/recorder that `metrics` and `trace` export.
    let obs = ocelot_obs::Obs::enabled();
    ocelot_obs::install_global(&obs);
    // Chunk-lifecycle ledger beside it: crates without an explicit handle
    // (sz sealed/encoded, faas invokes) emit wall-scope events here; the
    // service hands its own ledger to the orchestrator for job-scoped ones.
    ocelot_obs::ledger::install_global(&ocelot_obs::ledger::Ledger::with_obs(&obs));
    // Continuous profiler alongside it: kernel probes in the sz hot path
    // drain per-kernel histograms into the same registry (measured overhead
    // < 2 %, exported as ocelot_obs_prof_overhead_ratio).
    ocelot_obs::prof::install_global(&ocelot_obs::prof::Profiler::with_obs(obs));
    let Some(command) = args.first() else {
        usage();
        return Ok(());
    };
    let (positional, flags) = parse_flags(&args[1..]);
    match command.as_str() {
        "gen" => cmd_gen(&flags),
        "compress" => cmd_compress(&positional, &flags),
        "decompress" => cmd_decompress(&positional, &flags),
        "inspect" => cmd_inspect(&positional, &flags),
        "sweep" => cmd_sweep(&positional, &flags),
        "verify" => cmd_verify(&positional, &flags),
        "simulate" => cmd_simulate(&flags),
        "plan" => cmd_plan(&flags),
        "serve" => cmd_serve(&flags),
        "submit" => cmd_submit(&flags),
        "metrics" => cmd_metrics(&flags),
        "trace" => cmd_trace(&positional, &flags),
        "analyze" => cmd_analyze(&flags),
        "perf" => cmd_perf(&positional, &flags),
        "postmortem" => cmd_postmortem(&positional, &flags),
        "timeline" => cmd_timeline(&positional, &flags),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try `ocelot help`)").into()),
    }
}

fn usage() {
    eprintln!(
        "ocelot — error-bounded lossy compression for wide-area data transfer\n\
         \n\
         commands:\n\
         \x20 gen        --app A --field F [--scale N] [--seed S] -o FILE     generate synthetic data\n\
         \x20 compress   FILE [--dims DxHxW] [--eb E] [--abs] [--predictor P] [--backend B] [--codec-threads N] [--stream-window W] -o OUT\n\
         \x20 decompress FILE [--codec-threads N] -o OUT\n\
         \x20 inspect    FILE [--json] [-o OUT]                                container + chunk-table metadata\n\
         \x20 sweep      FILE [--dims DxHxW] [--ebs E1,E2,...]                 measure ratio/PSNR per bound\n\
         \x20 verify     ORIGINAL RESTORED [--dims DxHxW] [--eb E] [--min-psnr P]  acceptance check\n\
         \x20 simulate   --app A --from SITE --to SITE [--strategy np|cp|op] [--groups N]\n\
         \x20 plan       --app A --from SITE --to SITE                         tuned transfer plan\n\
         \x20 submit     --app A --from SITE --to SITE [--eb E] [--strategy S] [--tenant T] [--fail P]\n\
         \x20 serve      --jobs N --tenants T1,T2,... [--apps A1,A2] [--workers W] [--codec-threads N] [--stream-window W] [--fail P] [--seed S]\n\
         \x20 metrics    [serve flags] [--json] [-o FILE]       run a batch, export Prometheus text or JSON\n\
         \x20 trace      [JOB] [serve flags] [-o FILE]          run a batch, export Chrome trace_event JSON\n\
         \x20 analyze    [serve flags] [--json] [-o FILE]       run a batch, report critical-path bottlenecks\n\
         \x20 perf       record|diff|gate [--file TRAJ] [--baseline TRAJ] [--threshold R] [--hot S1,S2] [--scale N] [--reps N] [--label L] [--folded FILE] [--json]\n\
         \x20 postmortem JOB [serve flags] [--json] | --file DUMP [--json]   pretty-print a flight-recorder dump\n\
         \x20 timeline   JOB [serve flags] [--json | --chunk N] [-o FILE]    per-chunk transfer Gantt from the ledger\n\
         \n\
         sites: anvil, cori, bebop; apps: cesm, miranda, rtm, nyx, isabel, qmcpack, hacc\n\
         (submit/serve run the multi-tenant transfer service; transfer workloads: cesm, miranda, rtm)\n\
         (service SLOs: --slo-p99 SECS, --slo-error-rate RATIO, --slo-psnr DB; --artifacts DIR saves flight dumps)\n\
         (set OCELOT_LOG=debug|info|warn|error|off to control progress chatter on stderr)"
    );
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") && args[i + 1] != "-o" {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else if a == "-o" {
            if i + 1 >= args.len() {
                flags.insert("out".into(), String::new());
                i += 1;
            } else {
                flags.insert("out".into(), args[i + 1].clone());
                i += 2;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn parse_dims(s: &str) -> Result<Vec<usize>, CliError> {
    let dims: Result<Vec<usize>, _> = s.split(['x', 'X', ',']).map(str::parse).collect();
    let dims = dims.map_err(|_| format!("cannot parse dims '{s}' (expected e.g. 449x449x235)"))?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(format!("invalid dims '{s}'").into());
    }
    Ok(dims)
}

fn parse_app(s: &str) -> Result<Application, CliError> {
    Application::ALL
        .into_iter()
        .find(|a| a.name() == s.to_lowercase())
        .ok_or_else(|| format!("unknown application '{s}'").into())
}

fn parse_site(s: &str) -> Result<SiteId, CliError> {
    SiteId::ALL
        .into_iter()
        .find(|site| site.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown site '{s}' (anvil|cori|bebop)").into())
}

/// The `--codec-threads` flag: chunk-parallel threads inside each file's
/// compression/decompression (default 1, i.e. serial codec).
fn parse_codec_threads(flags: &HashMap<String, String>) -> Result<usize, CliError> {
    let threads: usize = flags.get("codec-threads").map(|s| s.parse()).transpose()?.unwrap_or(1);
    if threads == 0 {
        return Err("--codec-threads must be >= 1".into());
    }
    Ok(threads)
}

/// The `--stream-window` flag: bounded in-flight chunk window for the
/// streamed compress→transfer→decompress pipeline (default 0 = staged).
fn parse_stream_window(flags: &HashMap<String, String>) -> Result<usize, CliError> {
    Ok(flags.get("stream-window").map(|s| s.parse()).transpose()?.unwrap_or(0))
}

fn parse_config(flags: &HashMap<String, String>) -> Result<LossyConfig, CliError> {
    let eb: f64 = flags.get("eb").map(|s| s.parse()).transpose()?.unwrap_or(1e-3);
    let mut cfg = LossyConfig::sz3(eb);
    if flags.contains_key("abs") {
        cfg = cfg.with_error_bound(ErrorBound::Abs(eb));
    }
    if let Some(p) = flags.get("predictor") {
        let predictor =
            PredictorKind::ALL.into_iter().find(|k| k.name() == p).ok_or_else(|| format!("unknown predictor '{p}'"))?;
        cfg = cfg.with_predictor(predictor);
    }
    if let Some(b) = flags.get("backend") {
        let backend = [LosslessBackend::Huffman, LosslessBackend::HuffmanLz, LosslessBackend::RleHuffman]
            .into_iter()
            .find(|k| k.name() == b)
            .ok_or_else(|| format!("unknown backend '{b}'"))?;
        cfg = cfg.with_backend(backend);
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Loads a dataset from a raw f32 file (needs `--dims`) or an nclite
/// container (returns all variables).
fn load_input(path: &str, flags: &HashMap<String, String>) -> Result<Vec<(String, Dataset<f32>)>, CliError> {
    let bytes = std::fs::read(path)?;
    if bytes.starts_with(b"NCL1") {
        let container = NcliteFile::from_bytes(&bytes)?;
        return Ok(container.iter().map(|(n, d)| (n.to_string(), d.clone())).collect());
    }
    let dims =
        flags.get("dims").ok_or("raw input requires --dims (e.g. --dims 449x449x235)").map(|s| parse_dims(s))??;
    Ok(vec![("data".to_string(), Dataset::from_le_bytes(dims, &bytes)?)])
}

fn out_flag(flags: &HashMap<String, String>) -> Result<&str, CliError> {
    flags.get("out").map(String::as_str).filter(|s| !s.is_empty()).ok_or_else(|| "missing -o OUT".into())
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let app = parse_app(flags.get("app").ok_or("missing --app")?)?;
    let field = flags.get("field").map(String::as_str).unwrap_or_else(|| app.fields()[0]);
    let scale: usize = flags.get("scale").map(|s| s.parse()).transpose()?.unwrap_or(16);
    let seed: u64 = flags.get("seed").map(|s| s.parse()).transpose()?.unwrap_or(0);
    let out = out_flag(flags)?;
    let data = FieldSpec::new(app, field).with_scale(scale).with_seed(seed).generate();
    if out.ends_with(".ncl") {
        let mut container = NcliteFile::new();
        container.insert(field, data.clone());
        container.save(out)?;
    } else {
        std::fs::write(out, data.to_le_bytes())?;
    }
    println!("wrote {} ({:?}, {:.2} MB) to {out}", field, data.dims(), data.nbytes() as f64 / 1e6);
    if !out.ends_with(".ncl") {
        println!(
            "decompress/inspect with --dims {}",
            data.dims().iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x")
        );
    }
    Ok(())
}

fn cmd_compress(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    let input = positional.first().ok_or("missing input file")?;
    let out = out_flag(flags)?;
    let cfg = parse_config(flags)?;
    let variables = load_input(input, flags)?;
    let threads: usize = flags.get("threads").map(|s| s.parse()).transpose()?.unwrap_or(4);
    let window = parse_stream_window(flags)?;
    let session =
        TransferSession::new(threads, cfg).with_codec_threads(parse_codec_threads(flags)?).with_stream_window(window);
    // With a stream window the chunks flow through the bounded pipeline and
    // are decode-verified on arrival; the archive bytes are identical.
    let set = if window > 0 {
        session.build_archives_streamed(&variables, 1)?
    } else {
        session.build_archives(&variables, 1)?
    };
    std::fs::write(out, &set.archives()[0])?;
    println!(
        "wrote {out}: {} variable(s), {:.2} MB -> {:.2} MB (overall {:.1}x){}",
        variables.len(),
        set.raw_bytes() as f64 / 1e6,
        set.compressed_bytes() as f64 / 1e6,
        set.overall_ratio(),
        if window > 0 { format!(" [streamed, window {window}]") } else { String::new() }
    );
    Ok(())
}

fn cmd_decompress(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    let input = positional.first().ok_or("missing input file")?;
    let out = out_flag(flags)?;
    let threads: usize = flags.get("threads").map(|s| s.parse()).transpose()?.unwrap_or(4);
    // config is embedded per blob
    let session = TransferSession::new(threads, LossyConfig::sz3(1e-3)).with_codec_threads(parse_codec_threads(flags)?);
    let restored = session.restore_archives(std::slice::from_ref(&std::fs::read(input)?))?;
    if out.ends_with(".ncl") || restored.len() > 1 {
        let mut container = NcliteFile::new();
        for (name, data) in restored {
            container.insert(name, data);
        }
        container.save(out)?;
        println!("wrote {out}: {} variable(s)", container.len());
    } else {
        let (_, data) = &restored[0];
        std::fs::write(out, data.to_le_bytes())?;
        println!("wrote {out}: {:?} ({:.2} MB)", data.dims(), data.nbytes() as f64 / 1e6);
    }
    Ok(())
}

fn cmd_inspect(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    let input = positional.first().ok_or("missing input file")?;
    let members = open_archive(&std::fs::read(input)?)?;
    if flags.contains_key("json") {
        let vars: Vec<serde_json::Value> =
            members.iter().map(|(name, blob)| inspect_variable_json(name, blob)).collect::<Result<_, _>>()?;
        let dump = serde_json::Value::Object(vec![
            ("file".to_string(), serde_json::Value::String(input.clone())),
            ("variables".to_string(), serde_json::Value::Array(vars)),
        ]);
        let text = serde_json::to_string_pretty(&dump)?;
        validate_export(&text, "inspect.schema.json")?;
        return write_or_print(flags, &text);
    }
    println!("{input}: {} variable(s)", members.len());
    for (name, blob) in &members {
        let h = blob.header()?;
        println!(
            "  {name}: {} {:?}, abs_eb {:.3e}, predictor {}, backend {}, {:.2} MB compressed",
            h.dtype,
            h.dims,
            h.abs_eb,
            h.predictor,
            h.backend,
            blob.len() as f64 / 1e6
        );
        if let Some((table, shared_bytes)) = blob_chunk_table(blob)? {
            let shared = table.entries.iter().filter(|e| e.table_mode == sz_format::TABLE_MODE_SHARED).count();
            println!(
                "    {} chunk(s) of {} row(s); {} shared-table, {} local-table ({} B shared table)",
                table.entries.len(),
                table.chunk_rows,
                shared,
                table.entries.len() - shared,
                shared_bytes,
            );
        }
    }
    Ok(())
}

/// The version-3/4 chunk table of a blob and the byte size of its shared
/// Huffman table section (0 on version 3, which has no such section);
/// `None` for legacy monolithic (version-2) blobs.
fn blob_chunk_table(
    blob: &ocelot_sz::format::CompressedBlob,
) -> Result<Option<(sz_format::ChunkTable, usize)>, CliError> {
    let (header, mut sections) = blob.open()?;
    if header.version == sz_format::VERSION_V1 {
        return Ok(None);
    }
    let table = sz_format::ChunkTable::decode(sections.next_section()?)?;
    let shared_bytes = if header.version >= sz_format::VERSION { sections.next_section()?.len() } else { 0 };
    Ok(Some((table, shared_bytes)))
}

/// One variable's container metadata (header + chunk table with the
/// version-4 table-mode tag) for `inspect --json`, shaped to
/// `schemas/inspect.schema.json`.
fn inspect_variable_json(name: &str, blob: &ocelot_sz::format::CompressedBlob) -> Result<serde_json::Value, CliError> {
    use serde_json::Value;
    let h = blob.header()?;
    let mut fields = vec![
        ("name".to_string(), Value::String(name.to_string())),
        ("version".to_string(), Value::UInt(h.version as u64)),
        ("dtype".to_string(), Value::String(h.dtype.to_string())),
        ("dims".to_string(), Value::Array(h.dims.iter().map(|&d| Value::UInt(d as u64)).collect())),
        ("abs_eb".to_string(), Value::Float(h.abs_eb)),
        ("predictor".to_string(), Value::String(h.predictor.to_string())),
        ("backend".to_string(), Value::String(h.backend.to_string())),
        ("compressed_bytes".to_string(), Value::UInt(blob.len() as u64)),
    ];
    if let Some((table, shared_bytes)) = blob_chunk_table(blob)? {
        fields.push(("chunk_rows".to_string(), Value::UInt(table.chunk_rows as u64)));
        fields.push(("shared_table_bytes".to_string(), Value::UInt(shared_bytes as u64)));
        let chunks = table
            .entries
            .iter()
            .map(|e| {
                let mode = if e.table_mode == sz_format::TABLE_MODE_SHARED { "shared" } else { "local" };
                Value::Object(vec![
                    ("len".to_string(), Value::UInt(e.len as u64)),
                    ("crc".to_string(), Value::UInt(e.crc as u64)),
                    ("points".to_string(), Value::UInt(e.points)),
                    ("zero_bins".to_string(), Value::UInt(e.zero_bins)),
                    ("unpredictable".to_string(), Value::UInt(e.unpredictable)),
                    ("table_mode".to_string(), Value::String(mode.to_string())),
                ])
            })
            .collect();
        fields.push(("chunks".to_string(), Value::Array(chunks)));
    }
    Ok(serde_json::Value::Object(fields))
}

fn cmd_sweep(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    let input = positional.first().ok_or("missing input file")?;
    let ebs: Vec<f64> = match flags.get("ebs") {
        Some(list) => list.split(',').map(|s| s.parse()).collect::<Result<_, _>>()?,
        None => vec![1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
    };
    let variables = load_input(input, flags)?;
    println!("{:<16} {:>9} {:>9} {:>10} {:>10}", "variable/eb", "ratio", "PSNR", "max err", "bytes");
    for (name, data) in &variables {
        for &eb in &ebs {
            let cfg = LossyConfig::sz3(eb);
            let outcome = compress(data, &cfg)?;
            let restored = decompress::<f32>(&outcome.blob)?;
            let q = metrics::compare(data, &restored)?;
            println!(
                "{:<16} {:>8.1}x {:>8.1}dB {:>10.2e} {:>10}",
                format!("{name}@{eb:.0e}"),
                outcome.ratio,
                q.psnr,
                q.max_abs_error,
                outcome.blob.len()
            );
        }
    }
    Ok(())
}

fn cmd_verify(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    use ocelot::verify::{verify, AcceptancePolicy};
    let (orig_path, rest_path) = match positional {
        [a, b, ..] => (a, b),
        _ => return Err("verify needs ORIGINAL and RESTORED files".into()),
    };
    let orig = load_input(orig_path, flags)?;
    let rest = load_input(rest_path, flags)?;
    if orig.len() != rest.len() {
        return Err(format!("variable counts differ: {} vs {}", orig.len(), rest.len()).into());
    }
    let policy = AcceptancePolicy {
        max_abs_error: flags.get("eb").map(|s| s.parse()).transpose()?,
        min_psnr: flags.get("min-psnr").map(|s| s.parse()).transpose()?.or(Some(50.0)),
        min_correlation: flags.get("min-corr").map(|s| s.parse()).transpose()?,
    };
    let mut all_ok = true;
    for ((name, a), (_, b)) in orig.iter().zip(&rest) {
        let v = verify(a, b, &policy)?;
        println!(
            "{name}: PSNR {:.2} dB, max err {:.3e}, corr {:.6} -> {}",
            v.psnr,
            v.max_abs_error,
            v.correlation,
            if v.accepted { "ACCEPTED" } else { "REJECTED" }
        );
        for violation in &v.violations {
            println!("    {violation}");
        }
        all_ok &= v.accepted;
    }
    if !all_ok {
        return Err("verification failed".into());
    }
    Ok(())
}

fn simulate_common(flags: &HashMap<String, String>) -> Result<(Workload, SiteId, SiteId), CliError> {
    let app = parse_app(flags.get("app").ok_or("missing --app")?)?;
    let from = parse_site(flags.get("from").ok_or("missing --from")?)?;
    let to = parse_site(flags.get("to").ok_or("missing --to")?)?;
    let scale: usize = flags.get("profile-scale").map(|s| s.parse()).transpose()?.unwrap_or(12);
    info!("ocelot", "profiling {app} workload (real compression on scaled synthetic fields)...");
    let workload = Workload::paper_default(app, scale)?;
    Ok((workload, from, to))
}

fn parse_strategy(flags: &HashMap<String, String>) -> Result<Strategy, CliError> {
    match flags.get("strategy").map(String::as_str).unwrap_or("cp") {
        "np" => Ok(Strategy::Direct),
        "cp" => Ok(Strategy::Compressed),
        "op" => {
            let groups: usize = flags.get("groups").map(|s| s.parse()).transpose()?.unwrap_or(64);
            Ok(Strategy::grouped_by_count(groups))
        }
        other => Err(format!("unknown strategy '{other}' (np|cp|op)").into()),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let (workload, from, to) = simulate_common(flags)?;
    let strategy = parse_strategy(flags)?;
    let orch = Orchestrator::paper();
    let b = orch.run(&workload, from, to, strategy, &PipelineOptions::default());
    println!("{from}->{to}: {} files, {:.1} GB on the wire", b.files_transferred, b.bytes_transferred as f64 / 1e9);
    println!(
        "compress {:.1}s + group {:.1}s + transfer {:.1}s + decompress {:.1}s = total {:.1}s ({:.2} GB/s effective)",
        b.compression_s,
        b.grouping_s,
        b.transfer_s,
        b.decompression_s,
        b.total_s(),
        b.effective_speed_bps() / 1e9
    );
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let (workload, from, to) = simulate_common(flags)?;
    let planner = TransferPlanner::paper();
    let base = PipelineOptions::default();
    let plan = planner.plan(&workload, from, to, &base);
    let np = Orchestrator::paper().run(&workload, from, to, Strategy::Direct, &base);
    println!("plan for {from}->{to}:");
    match plan.strategy {
        Strategy::CompressedGrouped { group_count: Some(g), .. } => {
            println!("  strategy: compress + group into {g} files")
        }
        Strategy::Compressed => println!("  strategy: compress, no grouping"),
        _ => println!("  strategy: {:?}", plan.strategy),
    }
    println!("  decompress cores/node: {}", plan.decompress_cores_per_node);
    println!(
        "  expected total {:.1}s vs direct {:.1}s ({:.0}% reduction)",
        plan.expected.total_s(),
        np.transfer_s,
        plan.expected.reduction_vs(np.transfer_s) * 100.0
    );
    Ok(())
}

/// Service config from the shared `--workers/--capacity/--fail/--retries/--seed` flags.
fn parse_service_config(flags: &HashMap<String, String>) -> Result<ServiceConfig, CliError> {
    let mut cfg = ServiceConfig::default();
    if let Some(w) = flags.get("workers") {
        cfg.workers = w.parse()?;
    }
    if let Some(c) = flags.get("capacity") {
        cfg.queue_capacity = c.parse()?;
    }
    if let Some(p) = flags.get("fail") {
        let p: f64 = p.parse()?;
        if !(0.0..1.0).contains(&p) {
            return Err(format!("--fail must be in [0, 1), got {p}").into());
        }
        cfg.faults = FaultModel::flaky(p);
    }
    if let Some(n) = flags.get("retries") {
        cfg.retry = RetryPolicy { max_attempts: 1 + n.parse::<u32>()?, ..RetryPolicy::default() };
    }
    if let Some(s) = flags.get("seed") {
        cfg.seed = s.parse()?;
    }
    if let Some(s) = flags.get("profile-scale") {
        cfg.profile_scale = s.parse()?;
    }
    cfg.codec_threads = parse_codec_threads(flags)?;
    cfg.stream_window = parse_stream_window(flags)?;
    // SLO rules evaluated on the simulated clock after every finished job.
    // Breaches land typed alerts in the journal and snap flight dumps.
    if let Some(s) = flags.get("slo-p99") {
        cfg.slo.push(SloRule {
            name: "latency-p99".to_string(),
            severity: Severity::Critical,
            fast_window_s: 300.0,
            slow_window_s: 1500.0,
            kind: SloKind::LatencyP99 { histogram: "ocelot_svc_latency_seconds".to_string(), max_s: s.parse()? },
        });
    }
    if let Some(r) = flags.get("slo-error-rate") {
        cfg.slo.push(SloRule {
            name: "job-error-rate".to_string(),
            severity: Severity::Critical,
            fast_window_s: 300.0,
            slow_window_s: 1500.0,
            kind: SloKind::ErrorRateBurn {
                error_counter: "ocelot_svc_jobs_failed_total".to_string(),
                total_counter: "ocelot_svc_jobs_submitted_total".to_string(),
                target_ratio: r.parse()?,
                burn_factor: 1.0,
            },
        });
    }
    if let Some(db) = flags.get("slo-psnr") {
        cfg.slo.push(SloRule {
            name: "psnr-floor".to_string(),
            severity: Severity::Warning,
            fast_window_s: 300.0,
            slow_window_s: 1500.0,
            kind: SloKind::GaugeFloor { gauge: "ocelot_svc_worst_psnr_db".to_string(), min: db.parse()? },
        });
    }
    if let Some(dir) = flags.get("artifacts") {
        cfg.artifact_dir = Some(std::path::PathBuf::from(dir));
    }
    // Share the process-wide handle so service spans/counters land in the
    // same registry that `metrics` and `trace` export.
    cfg.obs = Some(ocelot_obs::global());
    Ok(cfg)
}

fn print_service_summary(svc: &Service) -> Result<(), CliError> {
    let metrics = svc.metrics();
    for report in svc.reports() {
        let verdict = match &report.state {
            JobState::Done => "done".to_string(),
            JobState::Failed(reason) => format!("FAILED ({reason})"),
            other => format!("{other:?}"),
        };
        println!(
            "  {} [{}] {verdict}: {:.1}s simulated, {:.2} GB moved, {} retries",
            report.job,
            report.tenant,
            report.latency_s,
            report.bytes_transferred as f64 / 1e9,
            report.retries
        );
    }
    println!("{}", serde_json::to_string_pretty(&metrics)?);
    Ok(())
}

fn cmd_submit(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let app = parse_app(flags.get("app").ok_or("missing --app")?)?;
    let from = parse_site(flags.get("from").ok_or("missing --from")?)?;
    let to = parse_site(flags.get("to").ok_or("missing --to")?)?;
    let eb: f64 = flags.get("eb").map(|s| s.parse()).transpose()?.unwrap_or(1e-3);
    let tenant = flags.get("tenant").map(String::as_str).unwrap_or("default");
    let spec = JobSpec { tenant: tenant.to_string(), app, error_bound: eb, strategy: parse_strategy(flags)?, from, to };
    let svc = Service::start(parse_service_config(flags)?);
    let id = svc.submit(spec)?;
    info!("ocelot", "submitted {id} for tenant '{tenant}', draining...");
    svc.drain();
    for event in svc.journal() {
        println!("  t={:>8.1}s  {:?}", event.t_s, event.state);
    }
    print_service_summary(&svc)
}

/// Submits and drains a `serve`-style batch of jobs; shared by `serve`,
/// `metrics`, and `trace`.
fn run_service_batch(flags: &HashMap<String, String>, default_jobs: usize) -> Result<Service, CliError> {
    let jobs: usize = flags.get("jobs").map(|s| s.parse()).transpose()?.unwrap_or(default_jobs);
    let tenants: Vec<&str> = flags
        .get("tenants")
        .map(String::as_str)
        .unwrap_or("climate,seismic,cosmology")
        .split(',')
        .filter(|t| !t.is_empty())
        .collect();
    let apps: Vec<Application> = match flags.get("apps") {
        Some(list) => list.split(',').map(parse_app).collect::<Result<_, _>>()?,
        None => vec![Application::Miranda, Application::Rtm],
    };
    let from = flags.get("from").map(|s| parse_site(s)).transpose()?.unwrap_or(SiteId::Anvil);
    let to = flags.get("to").map(|s| parse_site(s)).transpose()?.unwrap_or(SiteId::Cori);
    let eb: f64 = flags.get("eb").map(|s| s.parse()).transpose()?.unwrap_or(1e-3);
    if tenants.is_empty() || apps.is_empty() {
        return Err("need at least one tenant and one app".into());
    }
    let cfg = parse_service_config(flags)?;
    info!(
        "ocelot",
        "serving {jobs} jobs from {} tenant(s) on {} worker(s), fault p={:.2}...",
        tenants.len(),
        cfg.workers,
        cfg.faults.per_attempt_failure_prob
    );
    let svc = Service::start(cfg);
    let mut accepted = 0usize;
    for i in 0..jobs {
        let spec = JobSpec {
            tenant: tenants[i % tenants.len()].to_string(),
            app: apps[i % apps.len()],
            error_bound: eb,
            strategy: Strategy::Compressed,
            from,
            to,
        };
        match svc.submit(spec) {
            Ok(_) => accepted += 1,
            Err(e) => warn!("ocelot", "job {i} rejected: {e}"),
        }
    }
    info!("ocelot", "accepted {accepted}/{jobs}, draining...");
    svc.drain();
    Ok(svc)
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let svc = run_service_batch(flags, 12)?;
    print_service_summary(&svc)
}

/// Writes `text` to `-o FILE` when given, else to stdout.
fn write_or_print(flags: &HashMap<String, String>, text: &str) -> Result<(), CliError> {
    match flags.get("out").map(String::as_str).filter(|s| !s.is_empty()) {
        Some(path) => {
            std::fs::write(path, text)?;
            info!("ocelot", "wrote {path} ({} bytes)", text.len());
        }
        None => println!("{text}"),
    }
    Ok(())
}

fn cmd_metrics(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let svc = run_service_batch(flags, 6)?;
    let obs = svc.obs();
    let registry = obs.registry().expect("service observability handle is always enabled");
    let text = if flags.contains_key("json") {
        ocelot_obs::export::metrics_json(registry)
    } else {
        ocelot_obs::export::prometheus_text(registry)
    };
    write_or_print(flags, &text)
}

fn cmd_trace(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    let job: Option<u64> = positional
        .first()
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| format!("trace takes an optional numeric JOB id, got '{}'", positional.first().unwrap()))?;
    let default_jobs = job.map(|j| j as usize + 1).unwrap_or(4);
    let svc = run_service_batch(flags, default_jobs)?;
    let obs = svc.obs();
    let recorder = obs.recorder().expect("service observability handle is always enabled");
    for violation in recorder.validate(2) {
        warn!("ocelot", "span violation: {violation}");
    }
    let spans = match job {
        Some(j) => recorder.for_job(j),
        None => recorder.spans(),
    };
    if spans.is_empty() {
        return Err(match job {
            Some(j) => format!("no spans recorded for job {j} (ran {default_jobs} job(s))").into(),
            None => "no spans recorded".to_string().into(),
        });
    }
    write_or_print(flags, &ocelot_obs::export::chrome_trace(&spans))
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let svc = run_service_batch(flags, 12)?;
    let analysis = svc.analyze();
    if analysis.jobs.is_empty() {
        return Err("no spans recorded — nothing to analyze".into());
    }
    let text = if flags.contains_key("json") {
        serde_json::to_string_pretty(&analysis)?
    } else {
        let mut out = ocelot_svc::analyze::render_analysis(&analysis);
        for alert in svc.alerts() {
            out.push_str(&format!("  ALERT [{}] {}: {}\n", alert.severity, alert.rule, alert.message));
        }
        out
    };
    write_or_print(flags, &text)
}

/// Default trajectory file `perf record` appends to and `perf diff|gate`
/// read from.
const PERF_TRAJECTORY: &str = "results/perf/kernels.json";
/// Default checked-in baseline `perf gate` compares against.
const PERF_BASELINE: &str = "results/perf/baseline.json";

fn cmd_perf(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    match positional.first().map(String::as_str) {
        Some("record") => cmd_perf_record(flags),
        Some("diff") => cmd_perf_diff(flags),
        Some("gate") => cmd_perf_gate(flags),
        other => Err(format!("perf needs a subcommand record|diff|gate, got {other:?}").into()),
    }
}

/// Validates a serialized export against `schemas/<schema_file>` (skipped
/// when the schema file is absent — installed binaries run outside the
/// repo).
fn validate_export(json: &str, schema_file: &str) -> Result<(), CliError> {
    let schema_path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas")).join(schema_file);
    let Ok(schema_text) = std::fs::read_to_string(&schema_path) else {
        return Ok(());
    };
    let schema: serde_json::Value = serde_json::from_str(&schema_text)?;
    let value: serde_json::Value = serde_json::from_str(json)?;
    let errors = ocelot_svc::schema::validate(&schema, &value);
    if !errors.is_empty() {
        return Err(format!("export violates schemas/{schema_file}: {}", errors.join("; ")).into());
    }
    Ok(())
}

/// Validates a serialized trajectory against `schemas/perf.schema.json`.
fn validate_perf_export(trajectory_json: &str) -> Result<(), CliError> {
    validate_export(trajectory_json, "perf.schema.json")
}

fn cmd_perf_record(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let path = flags.get("file").map(String::as_str).unwrap_or(PERF_TRAJECTORY);
    let label = flags.get("label").map(String::as_str).unwrap_or("local");
    let scale: usize = flags.get("scale").map(|s| s.parse()).transpose()?.unwrap_or(1);
    let reps: usize = flags.get("reps").map(|s| s.parse()).transpose()?.unwrap_or(5);
    info!("ocelot", "running kernel micro-scenarios (scale {scale}, {reps} rep(s))...");
    let record = perf::run_builtin_scenarios(label, scale, reps);
    for s in &record.scenarios {
        println!(
            "  {:<28} median {:>9.4}s  mad {:>8.5}s  {:>7.1} MB/s",
            s.scenario,
            s.median_s,
            s.mad_s,
            s.bytes_per_sec() / 1e6
        );
    }
    println!("  profiler overhead ratio: {:.5}", record.overhead_ratio);
    let traj = perf::append_record(std::path::Path::new(path), "kernels", record)?;
    let written = std::fs::read_to_string(path)?;
    validate_perf_export(&written)?;
    println!("appended record #{} to {path}", traj.records.len());
    if let Some(folded_path) = flags.get("folded") {
        let prof = ocelot_obs::prof::global().ok_or("no profiler installed")?;
        std::fs::write(folded_path, prof.folded())?;
        info!("ocelot", "wrote folded flamegraph stacks to {folded_path}");
    }
    Ok(())
}

/// The two records a diff/gate compares: explicit `--baseline` trajectory's
/// latest vs `--file`'s latest, or the last two records of `--file`.
fn perf_diff_pair(
    flags: &HashMap<String, String>,
    default_baseline: Option<&str>,
) -> Result<(ocelot::perf::PerfRecord, ocelot::perf::PerfRecord), CliError> {
    let path = flags.get("file").map(String::as_str).unwrap_or(PERF_TRAJECTORY);
    let traj = perf::load_trajectory(std::path::Path::new(path), "kernels")?;
    let new = traj.latest().cloned().ok_or_else(|| format!("{path} holds no records — run `ocelot perf record`"))?;
    let baseline_flag = flags.get("baseline").map(String::as_str).or(default_baseline);
    let old = match baseline_flag {
        Some(bpath) => perf::load_trajectory(std::path::Path::new(bpath), "kernels")?
            .latest()
            .cloned()
            .ok_or_else(|| format!("baseline {bpath} holds no records"))?,
        None => {
            if traj.records.len() < 2 {
                return Err(
                    format!("{path} holds {} record(s); diff needs two (or --baseline)", traj.records.len()).into()
                );
            }
            traj.records[traj.records.len() - 2].clone()
        }
    };
    Ok((old, new))
}

fn render_diff(report: &ocelot::perf::DiffReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<28} {:>10} {:>10} {:>8} {:>10}  verdict", "scenario", "old", "new", "delta", "threshold");
    for s in &report.scenarios {
        let verdict = if s.regressed {
            "REGRESSED"
        } else if s.improved {
            "improved"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "{:<28} {:>9.4}s {:>9.4}s {:>+7.1}% {:>+9.1}%  {verdict}",
            s.scenario,
            s.old_median_s,
            s.new_median_s,
            s.delta_ratio * 100.0,
            s.threshold_ratio * 100.0,
        );
    }
    for name in &report.missing {
        let _ = writeln!(out, "{name:<28} present in only one record");
    }
    if let Some(reason) = &report.env_mismatch {
        let _ = writeln!(out, "warning: {reason} — timings are not comparable");
    }
    out
}

fn cmd_perf_diff(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let threshold: f64 = flags.get("threshold").map(|s| s.parse()).transpose()?.unwrap_or(perf::DEFAULT_GATE_THRESHOLD);
    let (old, new) = perf_diff_pair(flags, None)?;
    let report = perf::diff_records(&old, &new, threshold);
    let text = if flags.contains_key("json") { serde_json::to_string_pretty(&report)? } else { render_diff(&report) };
    write_or_print(flags, &text)
}

fn cmd_perf_gate(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let threshold: f64 = flags.get("threshold").map(|s| s.parse()).transpose()?.unwrap_or(perf::DEFAULT_GATE_THRESHOLD);
    let hot_paths: Vec<String> = flags
        .get("hot")
        .map(|list| list.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect())
        .unwrap_or_default();
    let (old, new) = perf_diff_pair(flags, Some(PERF_BASELINE))?;
    match perf::gate(&old, &new, threshold, &hot_paths) {
        perf::GateOutcome::Pass(report) => {
            print!("{}", render_diff(&report));
            println!("perf gate: PASS");
            Ok(())
        }
        perf::GateOutcome::Skip(reason) => {
            println!("perf gate: SKIPPED — {reason}");
            Ok(())
        }
        perf::GateOutcome::Fail(report) => {
            print!("{}", render_diff(&report));
            Err(format!("perf gate: FAIL — regressed hot path(s): {}", report.regressions().join(", ")).into())
        }
    }
}

fn cmd_postmortem(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    // `--file DUMP` replays a saved artifact without running anything.
    if let Some(path) = flags.get("file") {
        let dump: FlightDump = serde_json::from_str(&std::fs::read_to_string(path)?)?;
        if flags.contains_key("json") {
            return write_or_print(flags, &serde_json::to_string_pretty(&dump)?);
        }
        print!("{}", ocelot_svc::render_postmortem(&dump));
        return Ok(());
    }
    let job: u64 = positional
        .first()
        .ok_or("postmortem needs a JOB id (or --file DUMP)")?
        .parse()
        .map_err(|_| format!("postmortem takes a numeric JOB id, got '{}'", positional.first().unwrap()))?;
    let svc = run_service_batch(flags, job as usize + 1)?;
    // Prefer a dump the service already snapped for this job (failure, retry
    // exhaustion, SLO breach); otherwise force one from the live ring. Both
    // embed the job's chunk-ledger tail when the streamed path traced it.
    let dump = svc
        .flight_dumps()
        .into_iter()
        .find(|d| d.job == Some(job))
        .unwrap_or_else(|| svc.force_flight_dump("postmortem", Some(JobId(job))));
    if flags.contains_key("json") {
        return write_or_print(flags, &serde_json::to_string_pretty(&dump)?);
    }
    let text = ocelot_svc::render_postmortem(&dump);
    match flags.get("out").map(String::as_str).filter(|s| !s.is_empty()) {
        Some(path) => {
            std::fs::write(path, &text)?;
            info!("ocelot", "wrote {path} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Validates a ledger export against `schemas/ledger.schema.json` (skipped
/// when the schema file is absent — installed binaries run outside the repo).
fn validate_ledger_export(ledger_json: &str) -> Result<(), CliError> {
    let schema_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas/ledger.schema.json");
    let Ok(schema_text) = std::fs::read_to_string(schema_path) else {
        return Ok(());
    };
    let schema: serde_json::Value = serde_json::from_str(&schema_text)?;
    let value: serde_json::Value = serde_json::from_str(ledger_json)?;
    let errors = ocelot_svc::schema::validate(&schema, &value);
    if !errors.is_empty() {
        return Err(format!("ledger export violates schemas/ledger.schema.json: {}", errors.join("; ")).into());
    }
    Ok(())
}

fn cmd_timeline(positional: &[String], flags: &HashMap<String, String>) -> Result<(), CliError> {
    use ocelot_obs::ledger::{render_chunk_detail, render_timeline, Timeline};
    let job: u64 = positional
        .first()
        .ok_or("timeline needs a JOB id")?
        .parse()
        .map_err(|_| format!("timeline takes a numeric JOB id, got '{}'", positional.first().unwrap()))?;
    // Chunk events only exist on the streamed path; default the window on
    // rather than render an empty chart.
    let mut flags = flags.clone();
    flags.entry("stream-window".to_string()).or_insert_with(|| "4".to_string());
    let svc = run_service_batch(&flags, job as usize + 1)?;
    let events = svc.chunk_events(JobId(job));
    if events.is_empty() {
        return Err(format!("no chunk events recorded for job {job} (needs --stream-window > 0)").into());
    }
    if flags.contains_key("json") {
        let text = ocelot_svc::ledger_json(job, &events);
        validate_ledger_export(&text)?;
        return write_or_print(&flags, &text);
    }
    let tl = Timeline::reconstruct(&events, job)
        .ok_or_else(|| format!("ledger for job {job} has no transfer envelope — cannot reconstruct"))?;
    let text = match flags.get("chunk") {
        Some(c) => {
            let index: usize = c.parse().map_err(|_| format!("--chunk takes a track index, got '{c}'"))?;
            render_chunk_detail(&events, &tl, index)
                .ok_or_else(|| format!("job {job} has no chunk track {index} (tracks: 0..{})", tl.tracks.len()))?
        }
        None => render_timeline(&tl),
    };
    write_or_print(&flags, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_positionals_parse() {
        let (pos, flags) = parse_flags(&strs(&["input.f32", "--eb", "1e-3", "-o", "out.ocz", "--abs"]));
        assert_eq!(pos, vec!["input.f32"]);
        assert_eq!(flags.get("eb").map(String::as_str), Some("1e-3"));
        assert_eq!(flags.get("out").map(String::as_str), Some("out.ocz"));
        assert_eq!(flags.get("abs").map(String::as_str), Some("true"));
    }

    #[test]
    fn dims_parse_and_reject() {
        assert_eq!(parse_dims("449x449x235").unwrap(), vec![449, 449, 235]);
        assert_eq!(parse_dims("128").unwrap(), vec![128]);
        assert_eq!(parse_dims("4,5").unwrap(), vec![4, 5]);
        assert!(parse_dims("4x0").is_err());
        assert!(parse_dims("").is_err());
        assert!(parse_dims("axb").is_err());
    }

    #[test]
    fn apps_and_sites_parse() {
        assert_eq!(parse_app("miranda").unwrap(), Application::Miranda);
        assert_eq!(parse_app("CESM").unwrap(), Application::Cesm);
        assert!(parse_app("fortran").is_err());
        assert_eq!(parse_site("anvil").unwrap(), SiteId::Anvil);
        assert_eq!(parse_site("CORI").unwrap(), SiteId::Cori);
        assert!(parse_site("summit").is_err());
    }

    #[test]
    fn config_parses_predictor_and_backend() {
        let mut flags = HashMap::new();
        flags.insert("eb".to_string(), "1e-4".to_string());
        flags.insert("predictor".to_string(), "lorenzo2".to_string());
        flags.insert("backend".to_string(), "rle+huffman".to_string());
        let cfg = parse_config(&flags).unwrap();
        assert_eq!(cfg.predictor, PredictorKind::Lorenzo2);
        assert_eq!(cfg.backend, LosslessBackend::RleHuffman);
        flags.insert("predictor".to_string(), "psychic".to_string());
        assert!(parse_config(&flags).is_err());
    }

    #[test]
    fn stream_window_flag_parses_with_staged_default() {
        let mut flags = HashMap::new();
        assert_eq!(parse_stream_window(&flags).unwrap(), 0);
        flags.insert("stream-window".to_string(), "8".to_string());
        assert_eq!(parse_stream_window(&flags).unwrap(), 8);
        assert_eq!(parse_service_config(&flags).unwrap().stream_window, 8);
        flags.insert("stream-window".to_string(), "many".to_string());
        assert!(parse_stream_window(&flags).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&strs(&["help"])).is_ok());
    }
}
