//! Flight-dump forensics: self-contained post-mortem artifacts.
//!
//! When a job fails, a retry budget is exhausted, or an SLO breaches, the
//! service snapshots the obs flight ring together with the journal, the
//! alert log, and the failing job's critical-path attribution into one
//! [`FlightDump`]. The dump is written as JSON next to the journal artifacts
//! (validated by `schemas/flightdump.schema.json`) and pretty-printed by
//! `ocelot postmortem`.
//!
//! [`render_postmortem`] is deliberately deterministic for a fixed seed and
//! a single worker: wall-clock timings are summarized as counts, never
//! printed, so golden tests can pin the exact text.

use crate::analyze::BottleneckSummary;
use crate::journal::{AlertRecord, Event};
use ocelot_obs::flight::{FlightEvent, FlightKind, FlightSnapshot};
use ocelot_obs::ledger::{EventKind, LedgerEvent};
use ocelot_obs::span::Clock;
use serde::{Deserialize, Serialize};

/// Current dump format version.
pub const DUMP_VERSION: u32 = 1;

/// Chunk-ledger events a [`FlightDump`] embeds (the failed job's tail).
pub const LEDGER_EMBED_EVENTS: usize = 32;

/// Serde mirror of [`ocelot_obs::ledger::LedgerEvent`] (`obs` is
/// deliberately zero-dep, so serialization lives here). `event` is the
/// stable snake_case kind label; optional fields are omitted when absent,
/// matching `schemas/ledger.schema.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEventRecord {
    /// Globally ordered sequence number.
    pub seq: u64,
    /// Sequence of the prior event for the same chunk, if any.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub parent: Option<u64>,
    /// Span id of the job's root sim span, if known.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub span: Option<u64>,
    /// Job the event belongs to.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub job: Option<u64>,
    /// File index within the job's workload.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub file: Option<u32>,
    /// Chunk index within the file.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub chunk: Option<u32>,
    /// Snake_case event kind ([`EventKind::name`]).
    pub event: String,
    /// Fault description / stall reason, when there is one.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub cause: Option<String>,
    /// Simulated seconds, job-relative; absent for wall-only events.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub t_sim: Option<f64>,
    /// Microseconds since ledger construction (wall clock).
    pub t_wall_us: u64,
    /// Bytes the event concerns.
    pub bytes: u64,
    /// Transfer attempt number (1-based; 0 when not transfer-related).
    pub attempt: u32,
}

impl From<&LedgerEvent> for LedgerEventRecord {
    fn from(e: &LedgerEvent) -> Self {
        LedgerEventRecord {
            seq: e.seq,
            parent: e.parent,
            span: e.span,
            job: e.job,
            file: e.file,
            chunk: e.chunk,
            event: e.event.name().to_string(),
            cause: e.cause.clone(),
            t_sim: e.t_sim,
            t_wall_us: e.t_wall_us,
            bytes: e.bytes,
            attempt: e.attempt,
        }
    }
}

impl LedgerEventRecord {
    /// The parsed event kind, when the label is known.
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::parse(&self.event)
    }
}

/// Serializes one job's drained ledger as the artifact the service writes
/// next to its flight dumps (`ledger-<job>.json`), shaped to validate
/// against `schemas/ledger.schema.json`.
pub fn ledger_json(job: u64, events: &[LedgerEvent]) -> String {
    #[derive(Serialize)]
    struct Export {
        version: u32,
        job: u64,
        events: Vec<LedgerEventRecord>,
    }
    let export = Export {
        version: ocelot_obs::ledger::LEDGER_VERSION,
        job,
        events: events.iter().map(LedgerEventRecord::from).collect(),
    };
    serde_json::to_string_pretty(&export).expect("ledger export serializes")
}

/// One flight-ring event, flattened for JSON (`kind` discriminates which of
/// the optional fields are present).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DumpEvent {
    /// Global record order.
    pub seq: u64,
    /// Microseconds since the ring's epoch (wall clock; excluded from the
    /// deterministic rendering).
    pub wall_us: u64,
    /// Job the event belongs to, when known.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub job: Option<u64>,
    /// `log` | `span_open` | `span_close` | `counter` | `state`.
    pub kind: String,
    /// Log severity label (`log` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub level: Option<String>,
    /// Log target (`log` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub target: Option<String>,
    /// Log message (`log` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub message: Option<String>,
    /// Span or counter name.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub name: Option<String>,
    /// `wall` | `sim` (`span_close` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub clock: Option<String>,
    /// Display lane (span events only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub lane: Option<u32>,
    /// Span start, µs on `clock` (`span_close` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub start_us: Option<u64>,
    /// Span end, µs on `clock` (`span_close` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub end_us: Option<u64>,
    /// Counter delta (`counter` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub delta: Option<u64>,
    /// State label (`state` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub label: Option<String>,
    /// Simulated seconds (`state` only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub t_s: Option<f64>,
}

impl From<&FlightEvent> for DumpEvent {
    fn from(e: &FlightEvent) -> Self {
        let mut out = DumpEvent {
            seq: e.seq,
            wall_us: e.wall_us,
            job: e.job,
            kind: String::new(),
            level: None,
            target: None,
            message: None,
            name: None,
            clock: None,
            lane: None,
            start_us: None,
            end_us: None,
            delta: None,
            label: None,
            t_s: None,
        };
        match &e.kind {
            FlightKind::Log { level, target, message } => {
                out.kind = "log".into();
                out.level = Some(format!("{level:?}").to_ascii_lowercase());
                out.target = Some(target.clone());
                out.message = Some(message.clone());
            }
            FlightKind::SpanOpen { name, lane } => {
                out.kind = "span_open".into();
                out.name = Some(name.clone());
                out.lane = Some(*lane);
            }
            FlightKind::SpanClose { name, clock, lane, start_us, end_us } => {
                out.kind = "span_close".into();
                out.name = Some(name.clone());
                out.clock = Some(match clock {
                    Clock::Wall => "wall".into(),
                    Clock::Sim => "sim".into(),
                });
                out.lane = Some(*lane);
                out.start_us = Some(*start_us);
                out.end_us = Some(*end_us);
            }
            FlightKind::Counter { name, delta } => {
                out.kind = "counter".into();
                out.name = Some(name.clone());
                out.delta = Some(*delta);
            }
            FlightKind::State { label, t_s } => {
                out.kind = "state".into();
                out.label = Some(label.clone());
                out.t_s = Some(*t_s);
            }
        }
        out
    }
}

/// A self-contained post-mortem artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Dump format version ([`DUMP_VERSION`]).
    pub version: u32,
    /// File name the dump was (or would be) written under.
    pub file: String,
    /// Why the snapshot was taken: `job_failed`, `retry_exhausted`,
    /// `slo:<rule>`, or `forced`.
    pub reason: String,
    /// Job the dump is about, when the trigger was job-scoped.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub job: Option<u64>,
    /// The job's tenant, when known.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub tenant: Option<String>,
    /// Simulated seconds at snapshot time (the trigger's clock).
    pub t_s: f64,
    /// Flight-ring events lost to snapshot contention (cumulative).
    pub dropped: u64,
    /// Flight-ring capacity.
    pub capacity: usize,
    /// The ring contents, oldest first.
    pub events: Vec<DumpEvent>,
    /// Critical-path attribution of the triggering job, when computable.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub attribution: Option<BottleneckSummary>,
    /// Journal alerts recorded so far (each may reference another dump).
    pub alerts: Vec<AlertRecord>,
    /// Full lifecycle journal at snapshot time.
    pub journal: Vec<Event>,
    /// Tail of the failed job's chunk ledger (last [`LEDGER_EMBED_EVENTS`]),
    /// empty for staged jobs and service-scoped dumps.
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub ledger: Vec<LedgerEventRecord>,
}

impl FlightDump {
    /// Assembles a dump from a ring snapshot plus service context.
    #[allow(clippy::too_many_arguments)]
    pub fn from_snapshot(
        file: String,
        reason: &str,
        job: Option<u64>,
        tenant: Option<String>,
        t_s: f64,
        snapshot: &FlightSnapshot,
        attribution: Option<BottleneckSummary>,
        alerts: Vec<AlertRecord>,
        journal: Vec<Event>,
        ledger: &[LedgerEvent],
    ) -> Self {
        let skip = ledger.len().saturating_sub(LEDGER_EMBED_EVENTS);
        FlightDump {
            version: DUMP_VERSION,
            file,
            reason: reason.to_string(),
            job,
            tenant,
            t_s,
            dropped: snapshot.dropped,
            capacity: snapshot.capacity,
            events: snapshot.events.iter().map(DumpEvent::from).collect(),
            attribution,
            alerts,
            journal,
            ledger: ledger[skip..].iter().map(LedgerEventRecord::from).collect(),
        }
    }
}

/// Lowercases a reason/rule into a file-name slug.
pub fn slugify(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' }).collect()
}

/// Pretty-prints a dump for `ocelot postmortem`. Deterministic for a fixed
/// seed and one worker: wall-clock spans appear as counts only, and every
/// printed number is on the simulated clock.
pub fn render_postmortem(dump: &FlightDump) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let who = match (dump.job, &dump.tenant) {
        (Some(j), Some(t)) => format!("job {j} (tenant {t})"),
        (Some(j), None) => format!("job {j}"),
        _ => "service".to_string(),
    };
    let _ = writeln!(out, "== post-mortem: {who} ==");
    let _ = writeln!(out, "reason: {}", dump.reason);
    let _ = writeln!(out, "sim clock: {:.3} s", dump.t_s);
    let _ = writeln!(
        out,
        "flight ring: {} event(s) captured, {} dropped (capacity {})",
        dump.events.len(),
        dump.dropped,
        dump.capacity
    );

    let _ = writeln!(out, "\njournal:");
    for e in &dump.journal {
        let _ = writeln!(out, "  [{:>3}] {} tenant={} t={:.3}s {:?}", e.seq, e.job, e.tenant, e.t_s, e.state);
    }

    if !dump.alerts.is_empty() {
        let _ = writeln!(out, "\nalerts:");
        for a in &dump.alerts {
            let _ = writeln!(
                out,
                "  [{:>3}] {} {} t={:.3}s value={:.3} threshold={:.3} — {}",
                a.seq, a.severity, a.rule, a.t_s, a.value, a.threshold, a.message
            );
        }
    }

    if let Some(attr) = &dump.attribution {
        let _ = writeln!(out, "\nattribution:");
        let _ = writeln!(
            out,
            "  critical path {:.3} s, serialized work {:.3} s (overlap saved {:.3} s)",
            attr.critical_path_s, attr.total_s, attr.overlap_savings_s
        );
        let _ = writeln!(out, "  dominant stage: {}", attr.dominant);
        for (stage, v) in &attr.stages {
            if *v > 0.0 {
                let pct = if attr.critical_path_s > 0.0 { 100.0 * v / attr.critical_path_s } else { 0.0 };
                let _ = writeln!(out, "    {stage:<11} {v:>10.3} s ({pct:>5.1}%)");
            }
        }
    }

    let mut wall_opens = 0u64;
    let mut wall_closes = 0u64;
    let mut lines: Vec<String> = Vec::new();
    for e in &dump.events {
        match e.kind.as_str() {
            "log" => lines.push(format!(
                "  log   [{}] {}: {}",
                e.level.as_deref().unwrap_or("?"),
                e.target.as_deref().unwrap_or("?"),
                e.message.as_deref().unwrap_or("")
            )),
            "span_open" => wall_opens += 1,
            "span_close" if e.clock.as_deref() == Some("wall") => wall_closes += 1,
            "span_close" => {
                let (start, end) = (e.start_us.unwrap_or(0), e.end_us.unwrap_or(0));
                lines.push(format!(
                    "  span  {} lane={} [{:.3}s → {:.3}s]{}",
                    e.name.as_deref().unwrap_or("?"),
                    e.lane.unwrap_or(0),
                    start as f64 / 1e6,
                    end as f64 / 1e6,
                    e.job.map(|j| format!(" job={j}")).unwrap_or_default()
                ));
            }
            "counter" => lines.push(format!("  count {} +{}", e.name.as_deref().unwrap_or("?"), e.delta.unwrap_or(0))),
            "state" => lines.push(format!(
                "  state {}{} t={:.3}s",
                e.label.as_deref().unwrap_or("?"),
                e.job.map(|j| format!(" job={j}")).unwrap_or_default(),
                e.t_s.unwrap_or(0.0)
            )),
            _ => {}
        }
    }
    let _ = writeln!(
        out,
        "\nrecent events (wall timings omitted; {wall_opens} wall open(s), {wall_closes} wall close(s)):"
    );
    for line in lines {
        let _ = writeln!(out, "{line}");
    }

    if !dump.ledger.is_empty() {
        // Seq numbers and wall stamps vary run-to-run (codec threads emit
        // wall-only events during profiling), so print only the simulated
        // story: kind, chunk coordinates, sim time, attempt, cause.
        let _ = writeln!(out, "\nchunk ledger (last {} event(s)):", dump.ledger.len());
        for e in &dump.ledger {
            let mut line = format!("  {:<13}", e.event);
            match (e.file, e.chunk) {
                (Some(f), Some(c)) => line.push_str(&format!(" f{f}c{c}")),
                (Some(f), None) => line.push_str(&format!(" f{f}")),
                _ => {}
            }
            if let Some(t) = e.t_sim {
                line.push_str(&format!(" t={t:.3}s"));
            }
            if e.attempt > 0 {
                line.push_str(&format!(" attempt={}", e.attempt));
            }
            if let Some(cause) = &e.cause {
                line.push_str(&format!(" — {cause}"));
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobState};
    use ocelot_obs::flight::FlightRecorder;
    use ocelot_obs::log::Level;

    fn sample_dump() -> FlightDump {
        let fr = FlightRecorder::new(16);
        fr.record(Some(3), FlightKind::State { label: "Admitted".into(), t_s: 0.0 });
        fr.record(None, FlightKind::Counter { name: "ocelot_svc_jobs_done_total".into(), delta: 1 });
        fr.record(
            Some(3),
            FlightKind::SpanClose {
                name: "pipeline.transfer".into(),
                clock: Clock::Sim,
                lane: 0,
                start_us: 500_000,
                end_us: 2_000_000,
            },
        );
        fr.record(None, FlightKind::Log { level: Level::Warn, target: "svc".into(), message: "retrying".into() });
        let journal =
            vec![Event { seq: 0, job: JobId(3), tenant: "climate".into(), t_s: 0.0, state: JobState::Queued }];
        FlightDump::from_snapshot(
            "flight-0-retry-exhausted.json".into(),
            "retry_exhausted",
            Some(3),
            Some("climate".into()),
            12.5,
            &fr.snapshot(),
            None,
            Vec::new(),
            journal,
            &[],
        )
    }

    #[test]
    fn dump_round_trips_through_json() {
        let dump = sample_dump();
        let js = serde_json::to_string_pretty(&dump).unwrap();
        let back: FlightDump = serde_json::from_str(&js).unwrap();
        assert_eq!(back, dump);
        // Flattened events only carry the fields their kind uses.
        assert!(!js.contains("\"delta\": 0"), "absent fields must be omitted, got:\n{js}");
    }

    #[test]
    fn render_is_wall_clock_free() {
        let dump = sample_dump();
        let text = render_postmortem(&dump);
        assert!(text.contains("== post-mortem: job 3 (tenant climate) =="));
        assert!(text.contains("reason: retry_exhausted"));
        assert!(text.contains("state Admitted job=3 t=0.000s"));
        assert!(text.contains("span  pipeline.transfer lane=0 [0.500s → 2.000s] job=3"));
        assert!(text.contains("count ocelot_svc_jobs_done_total +1"));
        assert!(text.contains("log   [warn] svc: retrying"));
        assert!(!text.contains("wall_us"), "wall timings must not leak into the rendering");
    }

    #[test]
    fn dump_embeds_only_the_ledger_tail() {
        use ocelot_obs::ledger::{Draft, Ledger};
        let ledger = Ledger::detached();
        for i in 0..(LEDGER_EMBED_EVENTS as u32 + 5) {
            let mut d = Draft::chunk(7, 0, i);
            d.t_sim = Some(f64::from(i));
            ledger.append(EventKind::Released, d);
        }
        let events = ledger.drain();
        let fr = FlightRecorder::new(4);
        let dump = FlightDump::from_snapshot(
            "flight-1-job-failed.json".into(),
            "job_failed",
            Some(7),
            None,
            1.0,
            &fr.snapshot(),
            None,
            Vec::new(),
            Vec::new(),
            &events,
        );
        assert_eq!(dump.ledger.len(), LEDGER_EMBED_EVENTS);
        // The tail is kept, i.e. the oldest 5 events are trimmed.
        assert_eq!(dump.ledger[0].chunk, Some(5));
        let text = render_postmortem(&dump);
        assert!(text.contains("chunk ledger (last 32 event(s)):"), "got:\n{text}");
        assert!(text.contains("released      f0c5 t=5.000s"), "got:\n{text}");
        // Round-trips, and a dump without ledger events omits the key.
        let back: FlightDump = serde_json::from_str(&serde_json::to_string(&dump).unwrap()).unwrap();
        assert_eq!(back, dump);
        assert!(!serde_json::to_string(&sample_dump()).unwrap().contains("\"ledger\""));
    }

    #[test]
    fn ledger_json_matches_schema_shape() {
        use ocelot_obs::ledger::{Draft, Ledger};
        let ledger = Ledger::detached();
        let mut d = Draft::chunk(2, 1, 3);
        d.cause = Some("loss p=0.20".into());
        d.attempt = 2;
        ledger.append(EventKind::Retransmit, d);
        let js = ledger_json(2, &ledger.drain());
        let v: serde_json::Value = serde_json::from_str(&js).unwrap();
        assert_eq!(v.get("version").and_then(serde_json::Value::as_u64), Some(1));
        assert_eq!(v.get("job").and_then(serde_json::Value::as_u64), Some(2));
        let first = &v.get("events").and_then(serde_json::Value::as_array).unwrap()[0];
        assert_eq!(first.get("event").and_then(serde_json::Value::as_str), Some("retransmit"));
        assert_eq!(first.get("cause").and_then(serde_json::Value::as_str), Some("loss p=0.20"));
        assert_eq!(first.get("attempt").and_then(serde_json::Value::as_u64), Some(2));
        assert!(first.get("t_sim").is_none(), "absent optionals must be omitted");
    }

    #[test]
    fn slugify_flattens_rule_names() {
        assert_eq!(slugify("slo:p99-latency"), "slo-p99-latency");
        assert_eq!(slugify("Retry Exhausted"), "retry-exhausted");
    }
}
