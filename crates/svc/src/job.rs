//! Job descriptions and lifecycle states.
//!
//! A *job* asks the service to move one application dataset between two
//! sites with a given strategy and error bound. Jobs belong to *tenants*
//! (science projects sharing the transfer service) and progress through a
//! linear lifecycle: `Queued → Admitted → Compressing → Transferring
//! [→ Retrying(n)]* → Done | Failed`.

use ocelot::orchestrator::Strategy;
use ocelot_datagen::Application;
use ocelot_netsim::SiteId;
use serde::{Deserialize, Serialize};

/// Service-assigned job identifier (monotonically increasing per service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What one job asks the service to do.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Tenant (project) the job belongs to; drives queue fairness.
    pub tenant: String,
    /// Application dataset to move (must have a paper transfer workload:
    /// CESM, RTM, or Miranda).
    pub app: Application,
    /// Relative error bound for the lossy compressor.
    pub error_bound: f64,
    /// Transfer strategy (NP / CP / OP).
    pub strategy: Strategy,
    /// Source site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
}

impl JobSpec {
    /// A compressed (CP) transfer job with the given tenant and route.
    pub fn compressed(tenant: impl Into<String>, app: Application, error_bound: f64, from: SiteId, to: SiteId) -> Self {
        JobSpec { tenant: tenant.into(), app, error_bound, strategy: Strategy::Compressed, from, to }
    }
}

/// Lifecycle state of a job, journaled at every transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted into the tenant queue.
    Queued,
    /// Popped from the queue by a worker.
    Admitted,
    /// Building the workload / compressing on source nodes.
    Compressing,
    /// Crossing the WAN.
    Transferring,
    /// Re-offering files that failed; payload is the retry round (1-based).
    Retrying(u32),
    /// Every file delivered.
    Done,
    /// Gave up; payload is a human-readable reason.
    Failed(String),
}

impl JobState {
    /// True for `Done` and `Failed` — no further transitions happen.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed(_))
    }
}

/// Final accounting for one finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The job this report describes.
    pub job: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Terminal state (`Done` or `Failed`).
    pub state: JobState,
    /// Simulated seconds from admission to the terminal state, including
    /// retry backoff.
    pub latency_s: f64,
    /// Payload bytes delivered across the WAN.
    pub bytes_transferred: u64,
    /// Raw bytes minus transferred bytes (0 for uncompressed transfers).
    pub bytes_saved: u64,
    /// Failed transfer attempts across all files and retry rounds.
    pub retries: u32,
    /// Bytes moved by attempts that later failed.
    pub wasted_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed("x".into()).is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Retrying(3).is_terminal());
    }

    #[test]
    fn job_state_serializes_with_payloads() {
        let s = serde_json::to_string(&JobState::Retrying(2)).unwrap();
        let back: JobState = serde_json::from_str(&s).unwrap();
        assert_eq!(back, JobState::Retrying(2));
        let s = serde_json::to_string(&JobState::Done).unwrap();
        assert_eq!(serde_json::from_str::<JobState>(&s).unwrap(), JobState::Done);
    }

    #[test]
    fn job_id_displays() {
        assert_eq!(JobId(7).to_string(), "job-7");
    }
}
