//! Aggregate service metrics.
//!
//! A [`MetricsSnapshot`] is computed on demand from the service's counters
//! and completed-job latencies; it serializes to JSON for scraping or
//! offline analysis.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-tenant job accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that delivered every file.
    pub done: u64,
    /// Jobs that exhausted their retry budget.
    pub failed: u64,
    /// Failed transfer attempts across the tenant's jobs.
    pub retries: u64,
}

/// Point-in-time aggregate view of a service.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Jobs accepted into the queue since start.
    pub jobs_submitted: u64,
    /// Submissions refused (queue full or service closed).
    pub jobs_rejected: u64,
    /// Jobs finished with every file delivered.
    pub jobs_done: u64,
    /// Jobs finished with undelivered files.
    pub jobs_failed: u64,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Jobs currently being processed by workers.
    pub in_flight: usize,
    /// Failed transfer attempts across all jobs (service-level retries).
    pub transfer_retries: u64,
    /// Payload bytes delivered across the WAN.
    pub bytes_transferred: u64,
    /// Raw bytes minus delivered bytes for compressed jobs.
    pub bytes_saved: u64,
    /// Bytes moved by attempts that later failed.
    pub wasted_bytes: u64,
    /// Summed simulated job seconds (latency of every finished job).
    pub sim_seconds: f64,
    /// Delivered bytes per summed simulated second (0 when no simulated
    /// time has accumulated).
    pub throughput_bps: f64,
    /// Median finished-job latency, simulated seconds.
    pub latency_p50_s: f64,
    /// 90th-percentile finished-job latency, simulated seconds.
    pub latency_p90_s: f64,
    /// 95th-percentile finished-job latency, simulated seconds.
    pub latency_p95_s: f64,
    /// 99th-percentile finished-job latency, simulated seconds.
    pub latency_p99_s: f64,
    /// Per-tenant accounting, keyed by tenant name.
    pub per_tenant: BTreeMap<String, TenantStats>,
}

impl MetricsSnapshot {
    /// Jobs in a terminal state.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_done + self.jobs_failed
    }
}

/// Delivered bytes per simulated second, guarded against empty or
/// zero-duration job sets (returns 0 instead of `inf`/`NaN`).
pub fn throughput_bps(bytes_transferred: u64, sim_seconds: f64) -> f64 {
    if sim_seconds > 0.0 && sim_seconds.is_finite() {
        bytes_transferred as f64 / sim_seconds
    } else {
        0.0
    }
}

/// Nearest-rank percentile of an unsorted latency sample; 0 when empty.
pub fn percentile_s(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_s(&s, 0.5), 50.0);
        assert_eq!(percentile_s(&s, 0.95), 95.0);
        assert_eq!(percentile_s(&s, 1.0), 100.0);
        assert_eq!(percentile_s(&[], 0.5), 0.0);
        assert_eq!(percentile_s(&[3.0], 0.95), 3.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut per_tenant = BTreeMap::new();
        per_tenant.insert("climate".to_string(), TenantStats { submitted: 5, done: 4, failed: 1, retries: 7 });
        per_tenant.insert("seismic".to_string(), TenantStats { submitted: 2, done: 2, failed: 0, retries: 0 });
        let m = MetricsSnapshot {
            jobs_submitted: 7,
            jobs_rejected: 1,
            jobs_done: 6,
            jobs_failed: 1,
            queue_depth: 0,
            in_flight: 0,
            transfer_retries: 7,
            bytes_transferred: 123_456,
            bytes_saved: 900_000,
            wasted_bytes: 4_321,
            sim_seconds: 55.5,
            throughput_bps: 123_456.0 / 55.5,
            latency_p50_s: 7.5,
            latency_p90_s: 11.0,
            latency_p95_s: 12.0,
            latency_p99_s: 14.5,
            per_tenant,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.jobs_finished(), 7);
    }

    #[test]
    fn throughput_is_guarded_against_zero_sim_seconds() {
        // A job set that accumulated no simulated time (or none at all) must
        // report zero throughput, not inf/NaN.
        assert_eq!(throughput_bps(123_456, 0.0), 0.0);
        assert_eq!(throughput_bps(0, 0.0), 0.0);
        assert_eq!(throughput_bps(100, f64::NAN), 0.0);
        assert_eq!(throughput_bps(100, f64::INFINITY), 0.0);
        assert!((throughput_bps(100, 4.0) - 25.0).abs() < 1e-12);
    }
}
