//! Benchmarks for the service-layer hot paths that run per job rather than
//! per byte: queue admission under many tenants, journal appends, and a
//! full submit→drain cycle over a cached workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocelot_datagen::Application;
use ocelot_netsim::SiteId;
use ocelot_svc::{JobId, JobSpec, JobState, Journal, Service, ServiceConfig, TenantQueue};

fn spec(tenant: &str) -> JobSpec {
    JobSpec::compressed(tenant, Application::Miranda, 1e-3, SiteId::Anvil, SiteId::Cori)
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc_queue");
    for tenants in [1usize, 8, 64] {
        g.throughput(Throughput::Elements(1024));
        g.bench_with_input(BenchmarkId::new("push_pop_1024", tenants), &tenants, |b, &tenants| {
            b.iter(|| {
                let mut q = TenantQueue::new(1024);
                for i in 0..1024u64 {
                    q.push(JobId(i), spec(&format!("t{}", i % tenants as u64))).unwrap();
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            })
        });
    }
    g.finish();
}

fn bench_journal(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc_journal");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("record_4096", |b| {
        b.iter(|| {
            let j = Journal::new();
            for i in 0..4096u64 {
                j.record(JobId(i), "tenant", i as f64, JobState::Queued);
            }
            j.len()
        })
    });
    g.finish();
}

fn bench_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("svc_end_to_end");
    g.sample_size(10);
    g.bench_function("submit_drain_8_jobs", |b| {
        // One service across iterations: the workload cache stays warm, so
        // this measures scheduling + simulation, not profiling.
        let svc = Service::start(ServiceConfig { workers: 4, queue_capacity: 64, ..Default::default() });
        b.iter(|| {
            for i in 0..8 {
                svc.submit(spec(&format!("t{}", i % 3))).unwrap();
            }
            svc.drain();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_queue, bench_journal, bench_service);
criterion_main!(benches);
