//! Golden test pinning the `ocelot postmortem` text rendering.
//!
//! A deterministic faulty-WAN job (fixed seed, one worker, every attempt
//! failing) exhausts its retry budget and snaps a flight dump; the rendered
//! post-mortem must match the checked-in golden byte for byte. The render
//! prints wall-clock spans as counts only and every number on the simulated
//! clock, so the text is stable across machines.
//!
//! This test deliberately does NOT install a global obs handle: the service
//! uses its own, and the sz/netsim/log instrumentation that reports through
//! the (inert) global stays out of the flight ring, keeping the event
//! stream identical run to run.
//!
//! Regenerate with: UPDATE_GOLDEN=1 cargo test -p ocelot-svc --test postmortem_golden

use ocelot_datagen::Application;
use ocelot_netsim::{FaultModel, SiteId};
use ocelot_svc::{JobId, JobSpec, RetryPolicy, Service, ServiceConfig};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/postmortem.txt");
const GOLDEN_STREAMED: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/postmortem_streamed.txt");

#[test]
fn postmortem_rendering_matches_golden() {
    let cfg = ServiceConfig {
        workers: 1,
        faults: FaultModel { per_attempt_failure_prob: 1.0, max_retries: 1, reconnect_s: 1.0 },
        retry: RetryPolicy { max_attempts: 2, base_backoff_s: 4.0, multiplier: 2.0, max_backoff_s: 30.0, jitter: 0.0 },
        profile_scale: 8,
        seed: 1234,
        ..Default::default()
    };
    let svc = Service::start(cfg);
    svc.submit(JobSpec::compressed("climate", Application::Miranda, 1e-3, SiteId::Anvil, SiteId::Cori)).unwrap();
    svc.drain();

    let dumps = svc.flight_dumps();
    assert_eq!(dumps.len(), 1, "the doomed job must snap exactly one dump");
    assert_eq!(dumps[0].reason, "retry_exhausted");
    let rendered = ocelot_svc::render_postmortem(&dumps[0]);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file missing — run with UPDATE_GOLDEN=1 to create");
    assert_eq!(rendered, golden, "postmortem rendering drifted; run with UPDATE_GOLDEN=1 if intentional");
}

/// A healthy streamed job (stream_window > 0): the post-mortem must label
/// back-pressure stall time distinctly from transfer in the attribution
/// table, and the event ring shows the streamed span tree.
#[test]
fn streamed_postmortem_rendering_matches_golden() {
    let cfg = ServiceConfig {
        workers: 1,
        codec_threads: 4,
        stream_window: 1,
        profile_scale: 8,
        seed: 1234,
        ..Default::default()
    };
    let svc = Service::start(cfg);
    svc.submit(JobSpec::compressed("seismic", Application::Rtm, 1e-3, SiteId::Anvil, SiteId::Bebop)).unwrap();
    svc.drain();

    let dump = svc.force_flight_dump("postmortem", Some(JobId(0)));
    let rendered = ocelot_svc::render_postmortem(&dump);
    assert!(rendered.contains("stall"), "streamed job must attribute stall time:\n{rendered}");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_STREAMED, &rendered).expect("write golden");
        return;
    }
    let golden =
        std::fs::read_to_string(GOLDEN_STREAMED).expect("golden file missing — run with UPDATE_GOLDEN=1 to create");
    assert_eq!(rendered, golden, "streamed postmortem drifted; run with UPDATE_GOLDEN=1 if intentional");
}
