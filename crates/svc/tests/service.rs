//! Integration test from the subsystem's acceptance criteria: a burst of
//! concurrent jobs from several tenants over a flaky WAN must all reach a
//! terminal state, with service-level retries recorded, round-robin
//! fairness visible in the admission order, and metrics that reconcile and
//! round-trip through JSON.

use ocelot_datagen::Application;
use ocelot_netsim::{FaultModel, SiteId};
use ocelot_obs::slo::{Severity, SloKind, SloRule};
use ocelot_svc::{JobSpec, JobState, MetricsSnapshot, RetryPolicy, Service, ServiceConfig};
use std::collections::HashMap;

#[test]
fn flaky_multi_tenant_burst_drains_cleanly() {
    let tenants = ["climate", "seismic", "cosmology"];
    let n_jobs = 21usize;
    let cfg = ServiceConfig {
        workers: 4,
        queue_capacity: n_jobs,
        faults: FaultModel::flaky(0.1),
        profile_scale: 8,
        seed: 42,
        ..Default::default()
    };
    let workers = cfg.workers;
    let svc = Service::start(cfg);

    // Tenant-blocked submission order (all of one tenant, then the next):
    // the worst case for fairness, which round-robin admission must undo.
    let mut ids = Vec::new();
    for (t_idx, tenant) in tenants.iter().enumerate() {
        for j in 0..n_jobs / tenants.len() {
            let app = if (t_idx + j) % 2 == 0 { Application::Miranda } else { Application::Rtm };
            let spec = JobSpec::compressed(*tenant, app, 1e-3, SiteId::Anvil, SiteId::Bebop);
            ids.push(svc.submit(spec).expect("queue sized for the burst"));
        }
    }
    assert_eq!(ids.len(), n_jobs);

    svc.drain();
    let journal = svc.journal();
    let metrics = svc.metrics();

    // Every job reached exactly one terminal state.
    for &id in &ids {
        let events: Vec<JobState> = journal.iter().filter(|e| e.job == id).map(|e| e.state.clone()).collect();
        assert_eq!(events.first(), Some(&JobState::Queued), "{id}: {events:?}");
        let terminal = events.iter().filter(|s| s.is_terminal()).count();
        assert_eq!(terminal, 1, "{id} terminal states: {events:?}");
        assert!(events.last().expect("nonempty").is_terminal(), "{id}: {events:?}");
    }
    assert_eq!(metrics.jobs_done + metrics.jobs_failed, metrics.jobs_submitted);
    assert_eq!(metrics.jobs_submitted, n_jobs as u64);
    assert_eq!(metrics.queue_depth, 0);
    assert_eq!(metrics.in_flight, 0);

    // A 10 % per-attempt failure rate over hundreds of files cannot leave
    // the journal without retries.
    assert!(metrics.transfer_retries > 0, "metrics: {metrics:?}");
    assert!(journal.iter().any(|e| matches!(e.state, JobState::Retrying(_))));
    assert!(metrics.wasted_bytes > 0);
    assert!(metrics.bytes_saved > 0, "compressed jobs must save bytes");

    // No tenant starves: despite the blocked submission order, every
    // tenant's first admission happens within the first round of
    // round-robin service (bounded by the workers that raced ahead before
    // the later tenants had queued anything).
    let admissions: Vec<&str> =
        journal.iter().filter(|e| e.state == JobState::Admitted).map(|e| e.tenant.as_str()).collect();
    assert_eq!(admissions.len(), n_jobs);
    for tenant in tenants {
        let first = admissions.iter().position(|&t| t == tenant).expect("tenant admitted");
        assert!(
            first < tenants.len() + 2 * workers,
            "tenant {tenant} first admitted at position {first} of {admissions:?}"
        );
    }
    // ... and every tenant's jobs all finished.
    let mut finished: HashMap<&str, u64> = HashMap::new();
    for (tenant, stats) in &metrics.per_tenant {
        finished.insert(tenant.as_str(), stats.done + stats.failed);
        assert_eq!(stats.done + stats.failed, stats.submitted, "tenant {tenant}: {stats:?}");
    }
    for tenant in tenants {
        assert_eq!(finished.get(tenant), Some(&(n_jobs as u64 / tenants.len() as u64)));
    }

    // The snapshot serializes to JSON and round-trips losslessly.
    let json = serde_json::to_string(&metrics).expect("serialize");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, metrics);
    assert!(back.latency_p95_s >= back.latency_p50_s);
    assert!(back.throughput_bps > 0.0);
}

#[test]
fn flaky_burst_attribution_blames_the_injected_fault_profile() {
    // Same 21-job / 3-tenant burst, but with an aggressive fault profile
    // whose service-level retries sit behind a long exponential backoff.
    // Backoff is classified as queue wait by the critical-path analyzer, so
    // the injected faults must surface as a queue_wait-dominant bottleneck
    // for every tenant — and the advisory hint must ask for more workers.
    let tenants = ["climate", "seismic", "cosmology"];
    let n_jobs = 21usize;
    let workers = 4usize;
    let cfg = ServiceConfig {
        workers,
        queue_capacity: n_jobs,
        faults: FaultModel::flaky(0.25),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_s: 150.0,
            multiplier: 2.0,
            max_backoff_s: 600.0,
            jitter: 0.0,
        },
        profile_scale: 8,
        seed: 42,
        // An unreachable latency target: the windowed p99 breaches as soon
        // as the engine has a baseline sample to diff against.
        slo: vec![SloRule {
            name: "latency-p99".to_string(),
            severity: Severity::Critical,
            fast_window_s: 1e6,
            slow_window_s: 1e6,
            kind: SloKind::LatencyP99 { histogram: "ocelot_svc_latency_seconds".to_string(), max_s: 1e-9 },
        }],
        ..Default::default()
    };
    let svc = Service::start(cfg);
    for (t_idx, tenant) in tenants.iter().enumerate() {
        for j in 0..n_jobs / tenants.len() {
            let app = if (t_idx + j) % 2 == 0 { Application::Miranda } else { Application::Rtm };
            svc.submit(JobSpec::compressed(*tenant, app, 1e-3, SiteId::Anvil, SiteId::Bebop)).expect("queue sized");
        }
    }
    svc.drain();

    let analysis = svc.analyze();
    assert_eq!(analysis.jobs.len(), n_jobs, "every job must be attributed");
    assert_eq!(analysis.per_tenant.len(), tenants.len());
    for tenant in tenants {
        let report = &analysis.per_tenant[tenant];
        assert_eq!(
            report.dominant, "queue_wait",
            "tenant {tenant}: injected backoff-heavy faults must dominate, got {report:?}"
        );
        assert!(report.stages["queue_wait"] >= 150.0, "tenant {tenant}: {report:?}");
        assert!(report.total_s >= report.critical_path_s);
    }
    let hint = svc.hint().expect("hint after finished jobs");
    assert_eq!(hint.dominant, "queue_wait");
    assert_eq!(hint.recommended_workers, 2 * workers);

    // The unreachable SLO fired, and its journal record references a
    // schema-valid flight dump.
    let alerts = svc.alerts();
    assert!(!alerts.is_empty(), "unreachable latency SLO must fire");
    let dumps = svc.flight_dumps();
    let schema_text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas/flightdump.schema.json"))
            .expect("read flight dump schema");
    let schema: serde_json::Value = serde_json::from_str(&schema_text).expect("parse schema");
    for alert in &alerts {
        let file = alert.flight_dump.as_deref().expect("SLO alert references its dump");
        let dump = dumps.iter().find(|d| d.file == file).expect("referenced dump was snapped");
        let js = serde_json::to_string(dump).expect("serialize dump");
        let doc: serde_json::Value = serde_json::from_str(&js).expect("dump is JSON");
        let violations = ocelot_svc::schema::validate(&schema, &doc);
        assert!(violations.is_empty(), "dump {file} violates schema: {violations:?}");
    }
}

#[test]
fn healthy_burst_has_no_retries_and_deterministic_latencies() {
    let run = || {
        let cfg = ServiceConfig { workers: 3, profile_scale: 8, seed: 7, ..Default::default() };
        let svc = Service::start(cfg);
        for i in 0..6 {
            svc.submit(JobSpec::compressed(
                format!("t{}", i % 2),
                Application::Miranda,
                1e-3,
                SiteId::Anvil,
                SiteId::Cori,
            ))
            .unwrap();
        }
        svc.drain();
        let mut latencies: Vec<(u64, String)> =
            svc.reports().into_iter().map(|r| (r.job.0, format!("{:.6}", r.latency_s))).collect();
        latencies.sort();
        (svc.metrics(), latencies)
    };
    let (m1, l1) = run();
    let (m2, l2) = run();
    assert_eq!(m1.jobs_done, 6);
    assert_eq!(m1.transfer_retries, 0);
    assert_eq!(m1.wasted_bytes, 0);
    // Simulated latencies are derived from seeds, not wall clock: two runs
    // agree exactly even though worker interleaving differs.
    assert_eq!(l1, l2);
    assert_eq!(m1.latency_p50_s, m2.latency_p50_s);
}
