//! Acceptance tests for the observability layer: traced phase spans must
//! reconcile with the pipeline's reported `TimeBreakdown`, exports must
//! carry the per-stage histograms, and empty job sets must produce finite
//! zeroed metrics.

use ocelot::orchestrator::{Orchestrator, PipelineOptions, Strategy};
use ocelot::workload::Workload;
use ocelot_datagen::Application;
use ocelot_netsim::SiteId;
use ocelot_obs::Obs;
use ocelot_svc::{JobSpec, Service, ServiceConfig};

/// The headline acceptance criterion: for a traced job, the per-phase span
/// durations in the Chrome trace sum to the pipeline's `TimeBreakdown`
/// total within 1%.
#[test]
fn traced_phase_spans_sum_to_breakdown_within_one_percent() {
    let obs = Obs::enabled();
    let orch = Orchestrator::paper().with_obs(obs.clone());
    let workload = Workload::paper_default(Application::Miranda, 4).expect("workload");
    let opts = PipelineOptions { job: Some(42), ..PipelineOptions::default() };
    let outcome = orch.run_detailed(&workload, SiteId::Anvil, SiteId::Cori, Strategy::Compressed, &opts);

    let spans = obs.recorder().unwrap().for_job(42);
    let root = spans
        .iter()
        .find(|s| s.name == "pipeline" && s.parent.is_none())
        .expect("root pipeline span for the traced job");
    let phase_sum: f64 = spans.iter().filter(|s| s.parent == Some(root.id)).map(|s| s.duration_s()).sum();
    let total = outcome.breakdown.total_s();
    assert!(total > 0.0, "pipeline must take simulated time");
    let rel_err = (phase_sum - total).abs() / total;
    assert!(rel_err <= 0.01, "phase spans sum to {phase_sum}, breakdown total {total} (rel err {rel_err})");

    // The root span itself also matches the total.
    let root_err = (root.duration_s() - total).abs() / total;
    assert!(root_err <= 0.01, "root span {} vs total {total}", root.duration_s());

    // And the tree is structurally valid (2 µs slack for rounding).
    assert!(obs.recorder().unwrap().validate(2).is_empty());
}

/// Exports from a real service run contain populated per-stage histograms
/// for compress, queue wait, transfer, and decompress — in both Prometheus
/// text and JSON form.
#[test]
fn exports_contain_per_stage_histograms() {
    // Share one handle between the service and the process global, the way
    // the CLI does: sz's wall-clock instrumentation reads the global handle,
    // so profiling-time compression lands in the same registry.
    let shared = Obs::enabled();
    ocelot_obs::install_global(&shared);
    let cfg = ServiceConfig { profile_scale: 4, obs: Some(shared), ..ServiceConfig::default() };
    let svc = Service::start(cfg);
    svc.submit(JobSpec::compressed("climate", Application::Miranda, 1e-3, SiteId::Anvil, SiteId::Cori)).unwrap();
    svc.drain();

    let obs = svc.obs();
    let registry = obs.registry().unwrap();
    let prom = ocelot_obs::export::prometheus_text(registry);
    let json = ocelot_obs::export::metrics_json(registry);
    for stage in [
        "ocelot_core_compression_seconds",
        "ocelot_core_queue_wait_seconds",
        "ocelot_core_transfer_seconds",
        "ocelot_core_decompression_seconds",
        "ocelot_sz_compress_seconds",
        "ocelot_svc_latency_seconds",
    ] {
        assert!(prom.contains(&format!("# TYPE {stage} histogram")), "{stage} missing from Prometheus text");
        assert!(prom.contains(&format!("{stage}_count")), "{stage}_count missing from Prometheus text");
        assert!(json.contains(&format!("\"name\":\"{stage}\"")), "{stage} missing from metrics JSON");
    }

    // The traced job also yields a non-empty Chrome trace.
    let trace = ocelot_obs::export::chrome_trace(&obs.recorder().unwrap().spans());
    assert!(trace.contains("\"ph\":\"X\""), "trace has no duration events");
}

/// A service that has processed nothing reports finite zeros: no NaN/inf
/// throughput, zeroed percentiles, empty per-tenant map.
#[test]
fn empty_job_set_metrics_are_finite_zeros() {
    let svc = Service::start(ServiceConfig::default());
    let m = svc.metrics();
    assert_eq!(m.jobs_submitted, 0);
    assert_eq!(m.jobs_finished(), 0);
    assert_eq!(m.sim_seconds, 0.0);
    assert_eq!(m.throughput_bps, 0.0);
    assert!(m.throughput_bps.is_finite());
    assert_eq!(m.latency_p50_s, 0.0);
    assert_eq!(m.latency_p90_s, 0.0);
    assert_eq!(m.latency_p95_s, 0.0);
    assert_eq!(m.latency_p99_s, 0.0);
    assert!(m.per_tenant.is_empty());
    // The snapshot serializes cleanly even with nothing recorded.
    let json = serde_json::to_string(&m).unwrap();
    assert!(json.contains("\"throughput_bps\":0"));
    svc.drain();
}
