//! Golden tests pinning the `ocelot timeline` Gantt rendering.
//!
//! A deterministic streamed job (fixed seed, one worker) populates the
//! chunk-lifecycle ledger; the rendered timeline must match the checked-in
//! golden byte for byte. The render uses simulated times only (no wall
//! stamps, no raw sequence numbers), so the text is stable across machines
//! and reruns. The flaky variant injects WAN faults and must name the
//! retransmitted chunks and their causes.
//!
//! Regenerate with: UPDATE_GOLDEN=1 cargo test -p ocelot-svc --test timeline_golden

use ocelot_datagen::Application;
use ocelot_netsim::{FaultModel, SiteId};
use ocelot_obs::ledger::{check_causality, render_timeline, Timeline};
use ocelot_svc::{JobId, JobSpec, Service, ServiceConfig};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/timeline.txt");
const GOLDEN_FLAKY: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/timeline_flaky.txt");

fn run_streamed(faults: FaultModel) -> (Vec<ocelot_obs::ledger::LedgerEvent>, Timeline) {
    let cfg = ServiceConfig {
        workers: 1,
        codec_threads: 2,
        stream_window: 4,
        profile_scale: 8,
        seed: 1234,
        faults,
        ..Default::default()
    };
    let svc = Service::start(cfg);
    svc.submit(JobSpec::compressed("climate", Application::Miranda, 1e-3, SiteId::Anvil, SiteId::Cori)).unwrap();
    svc.drain();
    let events = svc.chunk_events(JobId(0));
    assert!(!events.is_empty(), "streamed job must populate the chunk ledger");
    assert_eq!(check_causality(&events, 0), Vec::<String>::new());
    let tl = Timeline::reconstruct(&events, 0).expect("timeline reconstructs");
    (events, tl)
}

fn check_golden(rendered: &str, path: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file missing — run with UPDATE_GOLDEN=1 to create");
    assert_eq!(rendered, golden, "timeline rendering drifted; run with UPDATE_GOLDEN=1 if intentional");
}

#[test]
fn timeline_rendering_matches_golden() {
    let (events, tl) = run_streamed(FaultModel::none());
    assert_eq!(tl.total_retries(), 0, "healthy link must not retransmit");
    let rendered = render_timeline(&tl);
    // Reconstruction and rendering are pure functions of the drained
    // events: a second replay must be byte-identical.
    let again = render_timeline(&Timeline::reconstruct(&events, 0).unwrap());
    assert_eq!(rendered, again, "render_timeline is not deterministic over the same ledger");
    check_golden(&rendered, GOLDEN);
}

#[test]
fn flaky_timeline_names_retransmitted_chunks_and_causes() {
    let faults = FaultModel { per_attempt_failure_prob: 0.002, max_retries: 3, reconnect_s: 1.0 };
    let (_, tl) = run_streamed(faults);
    assert!(tl.total_retries() > 0, "seeded flaky link must retransmit at least one chunk");
    let rendered = render_timeline(&tl);
    // Fault attribution must survive rendering: the retransmit glyph and
    // the injected fault model's cause string both appear, and every
    // retransmitted chunk keeps its row even when clean chunks are elided.
    assert!(rendered.contains('!'), "no retransmit glyph in:\n{rendered}");
    assert!(rendered.contains("wan fault (p=0.00"), "fault cause missing from:\n{rendered}");
    let retried = tl.tracks.iter().filter(|t| !t.retransmits.is_empty()).count();
    let rows_with_bang = rendered.lines().filter(|l| l.contains("attempt(s):")).count();
    assert_eq!(rows_with_bang, retried, "every retransmitted chunk must keep its Gantt row");
    check_golden(&rendered, GOLDEN_FLAKY);
}
